"""Failure detectors: suspicion levels from heartbeats and staleness.

Two independent evidence streams feed one verdict per server:

* **probe heartbeats** — the supervisor periodically issues the vendor
  status admin command (``XSSD_QUERY_STATUS``) to every chain member.  A
  live device answers within microseconds; a powered-off device never
  completes the command, so a missed deadline is a missed heartbeat.
  Consecutive misses escalate ALIVE -> SUSPECT -> DEAD.
* **link staleness** — the same shadow-counter lag the transport's
  staleness monitor watches (Section 7.1): a peer whose shadow counter
  lags its upstream's credit while no counter update has arrived for a
  while is SUSPECT even when its probes still answer (the replication
  path, not the device, is sick).  Link evidence alone never reaches
  DEAD: a stalled link is healed by resync, not eviction.

The split matters in a chain: every hop upstream of a dead replica looks
stalled (acknowledgements relay leftward), so shadow lag cannot localize
the failure — the probe heartbeat can.
"""

import enum


class SuspicionLevel(enum.IntEnum):
    ALIVE = 0
    SUSPECT = 1
    DEAD = 2


class HeartbeatDetector:
    """Suspicion state of one server, fed by the supervisor's probes."""

    def __init__(self, site, suspect_misses=1, dead_misses=3):
        if not 0 < suspect_misses <= dead_misses:
            raise ValueError("need 0 < suspect_misses <= dead_misses")
        self.site = site
        self.suspect_misses = suspect_misses
        self.dead_misses = dead_misses
        self.consecutive_misses = 0
        self.probes_sent = 0
        self.probes_missed = 0
        self.link_stalled = False
        self.last_level = SuspicionLevel.ALIVE

    def record_probe(self, answered):
        """Account one heartbeat round; returns the new suspicion level."""
        self.probes_sent += 1
        if answered:
            self.consecutive_misses = 0
        else:
            self.consecutive_misses += 1
            self.probes_missed += 1
        return self.level()

    def note_link(self, stalled):
        """Record the replication-link staleness verdict for this server."""
        self.link_stalled = bool(stalled)

    def reset(self):
        """Forget all suspicion (a rejoined replica starts clean)."""
        self.consecutive_misses = 0
        self.link_stalled = False
        self.last_level = SuspicionLevel.ALIVE

    def level(self):
        if self.consecutive_misses >= self.dead_misses:
            return SuspicionLevel.DEAD
        if self.consecutive_misses >= self.suspect_misses or self.link_stalled:
            return SuspicionLevel.SUSPECT
        return SuspicionLevel.ALIVE


def link_stalled(upstream_device, peer_name, now, quiet_after_ns):
    """Is the mirror link ``upstream -> peer_name`` stalled?

    Stalled means the upstream holds bytes the peer has not acknowledged
    (shadow lag) while neither the shadow counter advanced nor a counter
    update arrived for ``quiet_after_ns`` — i.e. the staleness monitor's
    evidence, evaluated for one link from the management plane.  The
    evidence is self-clearing: a successful resync advances the shadow,
    which resets the quiet clock.
    """
    transport = upstream_device.transport
    shadow = transport.shadow_counters.get(peer_name)
    if shadow is None:
        return False
    if shadow.value >= upstream_device.cmb.credit.value:
        return False
    heard = max(shadow.last_advanced_at,
                transport.update_arrival_ns.get(peer_name, 0.0))
    return (now - heard) > quiet_after_ns
