"""Admission control: bounded outstanding bytes with explicit rejection.

The base flow-control protocol (Fig. 8) is advisory — a host that keeps
claiming stream ranges faster than destage retires them just grows the
device's intake backlog without bound.  :class:`AdmissionController`
sits in front of :meth:`XssdLogFile.x_pwrite` and turns that unbounded
queueing into an explicit :class:`~repro.health.errors.DeviceBusy`
*before* any stream bytes are claimed, so a rejected write leaves no gap
in the log.

Two checks, both cheap:

* **global saturation** — bytes claimed but not yet persisted
  (``stream_claimed - credit``) must stay under the configured ceiling;
* **per-writer fair share** — with several registered writers, no single
  writer may hold more than its share of the ceiling in active calls, so
  a greedy writer is throttled before it can crowd out the others
  (layered on the multiwriter per-lane counters, which track the same
  notion per lane).  Shares are *weighted*: every lane defaults to
  weight 1.0 (uniform shares, the original behavior), and the SLO
  controller may deprioritize a lane by lowering its weight — a bounded,
  reversible actuation that changes only future admission decisions.

Both the ceiling and the lane weights are runtime actuators
(:meth:`set_ceiling`, :meth:`set_lane_weight`): they take effect on the
*next* ``admit`` call and never touch bytes already claimed — shrinking
the ceiling below the current outstanding level sheds new work, it does
not abandon admitted work.
"""

from repro.health.errors import DeviceBusy


class AdmissionController:
    """Admission decisions for every writer sharing one device."""

    def __init__(self, device, max_outstanding_bytes=None, fair_share=True,
                 name=None):
        self.device = device
        self.engine = device.engine
        if max_outstanding_bytes is None:
            max_outstanding_bytes = 2 * device.config.cmb_queue_bytes
        if max_outstanding_bytes <= 0:
            raise ValueError("outstanding ceiling must be positive")
        self.max_outstanding_bytes = max_outstanding_bytes
        self.baseline_max_outstanding_bytes = max_outstanding_bytes
        self.fair_share = fair_share
        self.name = name or f"{device.name}.admission"
        self._inflight = {}  # writer id -> bytes in active pwrite calls
        self.lane_weights = {}  # writer id -> fair-share weight (default 1.0)
        self.admitted_chunks = 0
        self.admitted_bytes = 0
        self.rejections = 0
        self.rejected_bytes = 0
        self.rejections_by_writer = {}
        self.rejections_by_reason = {}

    # -- accounting ---------------------------------------------------------------

    def register_writer(self, writer_id):
        self._inflight.setdefault(writer_id, 0)
        self.lane_weights.setdefault(writer_id, 1.0)

    def unregister_writer(self, writer_id):
        """Drop a writer's fair-share lane (e.g. a shard migrated away).

        A departed writer must not keep shrinking the survivors' fair
        shares — ``admit`` divides the ceiling by the number of
        registered lanes.  Unknown writers are ignored so teardown paths
        can call this unconditionally.
        """
        self._inflight.pop(writer_id, None)
        self.lane_weights.pop(writer_id, None)

    # -- runtime actuators (the SLO controller's knobs) ----------------------------

    def set_ceiling(self, nbytes):
        """Move the outstanding-bytes ceiling; returns ``(old, new)``.

        Affects only future ``admit`` decisions — bytes already admitted
        stay admitted, so no acknowledged or in-flight durability work is
        ever shed retroactively.
        """
        nbytes = int(nbytes)
        if nbytes <= 0:
            raise ValueError("outstanding ceiling must be positive")
        old = self.max_outstanding_bytes
        self.max_outstanding_bytes = nbytes
        return old, nbytes

    def set_lane_weight(self, writer_id, weight):
        """Set one lane's fair-share weight; returns ``(old, new)``.

        Weights scale the lane's slice of the ceiling relative to the
        other registered lanes; 1.0 is the uniform default.  A weight
        must stay positive — a zero weight would starve the lane's
        guaranteed single in-flight call, which ``admit`` still honors.
        """
        weight = float(weight)
        if weight <= 0:
            raise ValueError("lane weight must be positive")
        self.register_writer(writer_id)
        old = self.lane_weights.get(writer_id, 1.0)
        self.lane_weights[writer_id] = weight
        return old, weight

    def lane_share(self, writer_id):
        """The lane's current byte share of the ceiling under its weight."""
        self.register_writer(writer_id)
        total = sum(self.lane_weights.get(w, 1.0) for w in self._inflight)
        if total <= 0:
            return self.max_outstanding_bytes
        weight = self.lane_weights.get(writer_id, 1.0)
        return int(self.max_outstanding_bytes * weight / total)

    def outstanding_bytes(self):
        """Bytes claimed from the stream but not yet locally persistent."""
        return max(
            0, self.device.stream_claimed - self.device.cmb.credit.value
        )

    def pressure(self):
        """Saturation in [0, ...]: 1.0 means the ceiling is fully used.

        The supervisor's brownout logic reads this; the CMB's own intake
        backlog is folded in so pressure rises even when the claimants
        bypass admission (e.g. mirror traffic on a secondary).
        """
        ratio = self.outstanding_bytes() / self.max_outstanding_bytes
        cmb = self.device.cmb
        if cmb.intake_bound_bytes:
            ratio = max(ratio, cmb.intake_backlog_bytes
                        / cmb.intake_bound_bytes)
        return ratio

    # -- the decision -------------------------------------------------------------

    def admit(self, writer_id, nbytes):
        """Admit ``nbytes`` for ``writer_id`` or raise :class:`DeviceBusy`.

        Synchronous (no simulation time passes): the check happens before
        the write claims any stream range.
        """
        if nbytes <= 0:
            raise ValueError("admission needs a positive byte count")
        self.register_writer(writer_id)
        outstanding = self.outstanding_bytes()
        if outstanding + nbytes > self.max_outstanding_bytes:
            self._reject(writer_id, nbytes, "device-saturated",
                         outstanding=outstanding)
        if self.fair_share and len(self._inflight) > 1:
            share = self.lane_share(writer_id)
            held = self._inflight[writer_id]
            # A writer always gets at least one call in flight; beyond
            # that it must stay inside its share of the ceiling.
            if held > 0 and held + nbytes > share:
                self._reject(writer_id, nbytes, "fair-throttle", held=held,
                             share=share)
        self._inflight[writer_id] += nbytes
        self.admitted_chunks += 1
        self.admitted_bytes += nbytes
        return nbytes

    def release(self, writer_id, nbytes):
        """A pwrite call finished issuing; free its fair-share slot."""
        held = self._inflight.get(writer_id, 0)
        self._inflight[writer_id] = max(0, held - nbytes)

    def _reject(self, writer_id, nbytes, reason, **detail):
        self.rejections += 1
        self.rejected_bytes += nbytes
        self.rejections_by_writer[writer_id] = (
            self.rejections_by_writer.get(writer_id, 0) + 1
        )
        self.rejections_by_reason[reason] = (
            self.rejections_by_reason.get(reason, 0) + 1
        )
        tracer = self.engine.tracer
        if tracer.enabled:
            tracer.instant(self.name, "device-busy", writer=str(writer_id),
                           reason=reason, nbytes=nbytes, **detail)
        raise DeviceBusy(
            f"{self.name}: {writer_id} rejected ({reason}) for {nbytes} "
            f"bytes: {detail}",
            writer_id=writer_id, reason=reason,
            retry_after_ns=self.device.config.transport_update_period_ns * 4,
        )
