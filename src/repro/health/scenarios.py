"""End-to-end self-healing scenarios: the closed loop under fire.

Two seeded, fully deterministic runs back ``python -m repro.bench
health`` and the convergence tests:

* :func:`run_failover_scenario` — a chain replica is power-failed
  mid-stream with the injector's own healing *disabled*
  (``auto_reconfigure=False``): every recovery step must come from the
  :class:`~repro.health.supervisor.ChainSupervisor`.  The
  :func:`~repro.faults.oracles.check_failover_convergence` oracle holds
  the supervisor to bounded detection, eviction and resync windows, and
  the replica-prefix oracle holds the healed chain to content fidelity.

* :func:`run_overload_scenario` — several writers hammer an
  admission-controlled primary past its destage bandwidth.  Overload
  must surface as typed :class:`~repro.health.errors.DeviceBusy`
  rejections and a brownout policy downgrade — never as an unbounded
  CMB backlog or a deadlocked writer — and the policy must be restored
  once the load drops.
"""

from repro.cluster.topology import replicated_pair
from repro.faults.injector import ChaosInjector
from repro.faults.oracles import (
    StreamRecorder,
    check_bounded_backlog,
    check_failover_convergence,
    check_replica_prefix,
    check_visible_counter_bound,
)
from repro.faults.plan import FaultKind, FaultPlan
from repro.health.admission import AdmissionController
from repro.health.errors import DeviceBusy
from repro.health.supervisor import ChainSupervisor
from repro.host.api import XssdLogFile
from repro.sim import Engine
from repro.sim.rng import derive


def build_supervised_chain(engine, seed, secondaries=2, **supervisor_kw):
    """A replicated chain plus a started supervisor and stream recorders.

    Shared by the failover scenario, the check layer's supervised
    schedules and the tests; the chaos config factory keeps the device
    fault models and transport jitter on the same seed streams as the
    plain chaos runs.
    """
    from repro.faults.scenario import chaos_config_factory
    from repro.cluster.topology import replicated_chain

    cluster = replicated_chain(engine, chaos_config_factory(seed),
                               secondaries=secondaries)
    recorders = {
        name: StreamRecorder(server.device, name=name)
        for name, server in cluster.servers.items()
    }
    supervisor = ChainSupervisor(engine, cluster, **supervisor_kw)
    supervisor.start()
    return cluster, supervisor, recorders


def run_failover_scenario(seed=0, secondaries=2, victim="secondary-1",
                          kill_at_ns=600_000.0, transactions=24,
                          duration_ns=12_000_000.0, poll_ns=100_000.0,
                          dead_misses=3, reboot_delay_ns=400_000.0):
    """Kill a chain replica; the supervisor alone must heal everything.

    Returns a JSON-able dict: the supervisor's event timeline, the
    measured detection / eviction / rejoin windows, per-oracle violation
    lists and an ``ok`` flag.  No manual ``reconfigure_around`` /
    ``rejoin`` / ``resync`` call appears anywhere in this function — if
    the run converges, the control plane did it.
    """
    engine = Engine()
    cluster, supervisor, recorders = build_supervised_chain(
        engine, seed, secondaries=secondaries, poll_ns=poll_ns,
        dead_misses=dead_misses, reboot_delay_ns=reboot_delay_ns,
    )
    database = cluster.primary.with_database(
        group_commit_bytes=384, group_commit_timeout_ns=5_000.0,
    )
    database.create_table("kv")

    committed = []

    def committer():
        for index in range(transactions):
            txn = database.begin()
            txn.write("kv", f"k{index % 4}", f"v{index}")
            yield txn.commit()
            committed.append(index)
            yield engine.timeout(50_000.0)

    done = engine.process(committer(), name="health-committer")

    plan = FaultPlan().add(kill_at_ns, victim, FaultKind.REPLICA_CRASH)
    injector = ChaosInjector(engine, cluster, plan, auto_reconfigure=False)
    injector.start()
    engine.run(until=duration_ns)
    supervisor.stop()

    # Bounds: one supervisor round is the poll period plus the probe
    # timeout (the loop waits out the probes before judging them).
    # Detection must land within (dead_misses + 1) rounds of the kill;
    # the full kill -> rejoin+resync loop within that plus the reboot
    # delay and two more rounds of slack.
    round_ns = poll_ns + supervisor.probe_timeout_ns
    detect_within_ns = (dead_misses + 1) * round_ns
    resync_within_ns = detect_within_ns + reboot_delay_ns + 2 * round_ns
    oracles = {
        "failover-convergence": check_failover_convergence(
            supervisor.events, victim, kill_at_ns,
            detect_within_ns=detect_within_ns,
            resync_within_ns=resync_within_ns,
        ),
        "visible-counter": check_visible_counter_bound(cluster),
    }
    for server in cluster.secondaries():
        oracles[f"replica-prefix:{server.name}"] = check_replica_prefix(
            recorders["primary"], recorders[server.name],
            secondary_credit=server.device.cmb.credit.value,
        )
    if not done.triggered:
        oracles["commits-drained"] = [
            f"failover: only {len(committed)} of {transactions} commits "
            f"completed — the healed chain never unparked the committer"
        ]
    else:
        oracles["commits-drained"] = []

    detected = supervisor.events_for(victim, "dead-detected")
    rejoined = supervisor.events_for(victim, "rejoin")
    return {
        "seed": seed,
        "victim": victim,
        "kill_at_ns": kill_at_ns,
        "events": supervisor.events,
        "fault_log": injector.fault_log,
        "chain_order": list(cluster.order),
        "commits_acknowledged": len(committed),
        "detection_ns": (detected[0]["time_ns"] - kill_at_ns
                         if detected else None),
        "kill_to_resync_ns": (rejoined[0]["time_ns"] - kill_at_ns
                              if rejoined else None),
        "detect_within_ns": detect_within_ns,
        "resync_within_ns": resync_within_ns,
        "probes_answered": supervisor.probes_answered,
        "probes_timed_out": supervisor.probes_timed_out,
        "oracles": oracles,
        "ok": all(not violations for violations in oracles.values()),
    }


def run_overload_scenario(seed=0, writers=4, chunk_bytes=2048,
                          load_until_ns=3_000_000.0,
                          duration_ns=10_000_000.0,
                          max_outstanding_bytes=6 * 1024,
                          intake_bound_bytes=16 * 1024,
                          poll_ns=100_000.0):
    """Saturate an admission-controlled pair; shed load, brown out, recover.

    The writers offer far more than destage bandwidth.  The run is
    healthy iff overload shows up only in its *typed* forms: DeviceBusy
    rejections at admission, a brownout policy downgrade while pressure
    stays high, bounded CMB intake backlog throughout, the policy
    restored after the load stops, and every admitted byte persisted.
    """
    from repro.core.config import villars_sram
    from repro.nand.geometry import Geometry
    from repro.nand.timing import NandTiming
    from repro.ssd.device import SsdConfig

    engine = Engine()

    def factory():
        return villars_sram(
            ssd=SsdConfig(
                geometry=Geometry(channels=2, ways_per_channel=2,
                                  blocks_per_die=64, pages_per_block=16,
                                  page_bytes=4096),
                timing=NandTiming(t_program=50_000.0, t_read=5_000.0,
                                  t_erase=200_000.0, bus_bandwidth=1.0),
            ),
            cmb_capacity=64 * 1024,
            cmb_queue_bytes=8 * 1024,
            cmb_intake_bound_bytes=intake_bound_bytes,
            transport_seed=seed,
        )

    cluster = replicated_pair(engine, factory, policy="eager")
    primary = cluster.primary.device
    admission = AdmissionController(
        primary, max_outstanding_bytes=max_outstanding_bytes,
    )
    supervisor = ChainSupervisor(
        engine, cluster, poll_ns=poll_ns, admission=admission,
        brownout_policy="lazy",
    )
    supervisor.start()

    rng = derive(seed, "overload-writers")
    stats = {
        "writes_completed": 0,
        "rejections_seen": 0,
        "writers_finished": 0,
    }

    def writer(writer_id):
        handle = XssdLogFile(primary, copy_chunk=1024, admission=admission,
                             writer_id=writer_id)
        while engine.now < load_until_ns:
            try:
                yield handle.x_pwrite(f"{writer_id}", chunk_bytes)
            except DeviceBusy as busy:
                stats["rejections_seen"] += 1
                backoff = busy.retry_after_ns or 2_000.0
                yield engine.timeout(backoff * (1 + rng.random()))
                continue
            stats["writes_completed"] += 1
        stats["writers_finished"] += 1

    for index in range(writers):
        engine.process(writer(f"w{index}"), name=f"overload-w{index}")

    # Sample both devices' intake backlogs on a fixed cadence; the
    # bounded-backlog oracle consumes the samples afterwards.
    samples = {name: [] for name in cluster.servers}

    def sampler():
        while engine.now < duration_ns - poll_ns:
            yield engine.timeout(poll_ns / 2)
            for name, server in cluster.servers.items():
                samples[name].append(
                    (engine.now, server.device.cmb.intake_backlog_bytes)
                )

    engine.process(sampler(), name="backlog-sampler")
    engine.run(until=duration_ns)
    supervisor.stop()

    entered = supervisor.events_for(cluster.primary_name, "brownout-enter")
    exited = supervisor.events_for(cluster.primary_name, "brownout-exit")
    final_policy = primary.transport.policy.name

    oracles = {}
    for name, server in cluster.servers.items():
        bound = server.device.cmb.intake_bound_bytes
        oracles[f"bounded-backlog:{name}"] = check_bounded_backlog(
            samples[name], bound, name=name,
        )
    oracles["load-shed"] = [] if admission.rejections else [
        "overload: sustained saturation produced zero DeviceBusy "
        "rejections — admission control never engaged"
    ]
    oracles["brownout-cycle"] = []
    if not entered:
        oracles["brownout-cycle"].append(
            "overload: pressure never tripped a brownout-enter"
        )
    elif not exited:
        oracles["brownout-cycle"].append(
            "overload: brownout never exited after the load stopped"
        )
    elif final_policy != "eager":
        oracles["brownout-cycle"].append(
            f"overload: policy ended as {final_policy!r}, not restored "
            f"to 'eager'"
        )
    oracles["no-deadlock"] = []
    if stats["writers_finished"] != writers:
        oracles["no-deadlock"].append(
            f"overload: {writers - stats['writers_finished']} writer(s) "
            f"never returned from the load loop"
        )
    unpersisted = primary.stream_claimed - primary.cmb.credit.value
    if unpersisted:
        oracles["no-deadlock"].append(
            f"overload: {unpersisted} admitted bytes never persisted "
            f"after the load stopped"
        )

    return {
        "seed": seed,
        "writers": writers,
        "load_until_ns": load_until_ns,
        "writes_completed": stats["writes_completed"],
        "rejections": admission.rejections,
        "rejections_by_reason": dict(admission.rejections_by_reason),
        "rejected_bytes": admission.rejected_bytes,
        "admitted_bytes": admission.admitted_bytes,
        "backlog_peaks": {
            name: server.device.cmb.intake_backlog_peak
            for name, server in cluster.servers.items()
        },
        "chunks_shed": {
            name: server.device.cmb.chunks_shed
            for name, server in cluster.servers.items()
        },
        "brownout_entered_at_ns": (entered[0]["time_ns"]
                                   if entered else None),
        "brownout_exited_at_ns": exited[0]["time_ns"] if exited else None,
        "final_policy": final_policy,
        "events": supervisor.events,
        "oracles": oracles,
        "ok": all(not violations for violations in oracles.values()),
    }
