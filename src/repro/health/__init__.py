"""Self-healing control plane: detection, failover, overload protection.

The paper's Section 7.1 describes *mechanisms* — reconfiguration admin
commands, resync from retained history, status registers — and leaves
the *policy* loop that drives them to the database.  This package is
that loop:

* :mod:`repro.health.errors` — the typed overload errors
  (:class:`~repro.health.errors.DeviceBusy`,
  :class:`~repro.health.errors.CreditStarvation`);
* :mod:`repro.health.detector` — heartbeat failure detectors with
  graded suspicion (ALIVE / SUSPECT / DEAD) fed by probe timeouts and
  link-staleness evidence;
* :mod:`repro.health.admission` — admission control in front of the
  host API: bounded outstanding bytes, per-writer fair share, explicit
  rejection before any stream range is claimed;
* :mod:`repro.health.supervisor` — :class:`ChainSupervisor`, the
  closed loop from detection to recovery (evict / reattach / resync /
  brownout with hysteresis);
* :mod:`repro.health.scenarios` — end-to-end self-healing runs consumed
  by ``python -m repro.bench health`` and the convergence oracles.

Import note: this module is imported by the host and core layers (for
the typed errors), so it must stay free of imports back into them —
``scenarios`` is deliberately *not* imported eagerly.
"""

from repro.health.admission import AdmissionController
from repro.health.detector import (
    HeartbeatDetector,
    SuspicionLevel,
    link_stalled,
)
from repro.health.errors import CreditStarvation, DeviceBusy, HealthError
from repro.health.supervisor import BrownoutState, ChainSupervisor

__all__ = [
    "AdmissionController",
    "BrownoutState",
    "ChainSupervisor",
    "CreditStarvation",
    "DeviceBusy",
    "HealthError",
    "HeartbeatDetector",
    "SuspicionLevel",
    "link_stalled",
]
