"""The supervisor: closing the loop from detection to recovery.

:class:`ChainSupervisor` is the management plane the paper assumes but
never builds (Section 7.1 sketches the reconfiguration steps and leaves
"who pushes the buttons" to the database).  One supervisor owns one
cluster and runs a single polling process that

1. **probes** every chain member with the status admin command and feeds
   the answers (or their absence) into per-server
   :class:`~repro.health.detector.HeartbeatDetector` instances;
2. **evicts** a secondary judged DEAD: ``Cluster.reconfigure_around``
   splices it out, cables the survivors together and resyncs the
   successor — the visible counter can move again;
3. **reattaches** the evicted server after it reboots (optional):
   ``Server.rejoin`` + ``Cluster.reattach`` put it back at the tail of
   the chain and re-ship the range it missed;
4. **resyncs** links that are merely stalled (SUSPECT with live probes):
   lost mirror chunks are re-offered from retained history, with a
   cooldown so a slow link is not hammered;
5. **browns out** under sustained overload: when admission pressure
   stays above the enter threshold for a dwell period, the replication
   policy downgrades (eager -> lazy by default) so commits stop waiting
   on remote acks; sustained recovery upgrades it back.  Both directions
   are dwell-gated — classic hysteresis, no flapping at the boundary.

Every transition lands in ``events`` (plain dicts, byte-comparable
across runs) and, when tracing is active, as trace instants and gauge
samples — the convergence oracles in :mod:`repro.faults.oracles` consume
the event timeline.
"""

import enum

from repro.health.detector import (
    HeartbeatDetector,
    SuspicionLevel,
    link_stalled,
)
from repro.ssd.nvme import AdminOpcode


class BrownoutState(enum.Enum):
    NORMAL = "normal"
    BROWNOUT = "brownout"


class ChainSupervisor:
    """Watches one cluster and drives its recovery primitives."""

    def __init__(self, engine, cluster, poll_ns=100_000.0,
                 probe_timeout_ns=50_000.0, suspect_misses=1, dead_misses=3,
                 link_quiet_after_ns=300_000.0, resync_cooldown_ns=500_000.0,
                 auto_reboot=True, reboot_delay_ns=400_000.0,
                 admission=None, brownout_policy="lazy",
                 brownout_enter_pressure=0.85, brownout_exit_pressure=0.4,
                 brownout_enter_after_ns=250_000.0,
                 brownout_exit_after_ns=400_000.0, name="supervisor"):
        if probe_timeout_ns >= poll_ns:
            raise ValueError("probe timeout must fit inside the poll period")
        self.engine = engine
        self.cluster = cluster
        self.poll_ns = poll_ns
        self.probe_timeout_ns = probe_timeout_ns
        self.suspect_misses = suspect_misses
        self.dead_misses = dead_misses
        self.link_quiet_after_ns = link_quiet_after_ns
        self.resync_cooldown_ns = resync_cooldown_ns
        self.auto_reboot = auto_reboot
        self.reboot_delay_ns = reboot_delay_ns
        self.admission = admission
        self.brownout_policy = brownout_policy
        self.brownout_enter_pressure = brownout_enter_pressure
        self.brownout_exit_pressure = brownout_exit_pressure
        self.brownout_enter_after_ns = brownout_enter_after_ns
        self.brownout_exit_after_ns = brownout_exit_after_ns
        self.name = name
        self.detectors = {}  # site -> HeartbeatDetector
        self.events = []  # chronological health transitions (plain dicts)
        self.brownout_state = BrownoutState.NORMAL
        self.brownout_enters = 0
        self.brownout_exits = 0
        self._mirror_brownout()
        self.probes_answered = 0
        self.probes_timed_out = 0
        self._evicting = set()
        self._last_resync = {}  # peer -> time of the last link resync
        self._overloaded_since = None
        self._healthy_since = None
        self._original_policy = None
        self._running = False
        self._process = None

    # -- lifecycle ----------------------------------------------------------------

    def start(self):
        if self._running:
            raise RuntimeError("supervisor already running")
        self._running = True
        self._process = self.engine.process(self._loop(), name=self.name)
        return self._process

    def stop(self):
        self._running = False

    # -- event log ----------------------------------------------------------------

    def _record(self, action, site, detail=""):
        entry = {
            "time_ns": self.engine.now,
            "action": action,
            "site": site,
            "detail": detail,
        }
        self.events.append(entry)
        tracer = self.engine.tracer
        if tracer.enabled:
            tracer.instant(self.name, action, site=site, detail=detail)
        return entry

    def events_for(self, site, action=None):
        return [
            entry for entry in self.events
            if entry["site"] == site
            and (action is None or entry["action"] == action)
        ]

    # -- the poll loop ------------------------------------------------------------

    def _loop(self):
        while self._running:
            yield self.engine.timeout(self.poll_ns)
            if not self._running:
                return
            yield from self._probe_round()
            self._link_round()
            self._brownout_round()

    def _detector_for(self, site):
        detector = self.detectors.get(site)
        if detector is None:
            detector = HeartbeatDetector(
                site, suspect_misses=self.suspect_misses,
                dead_misses=self.dead_misses,
            )
            self.detectors[site] = detector
        return detector

    def _probe_round(self):
        """One heartbeat round: probe every chain member concurrently.

        A halted device's admin command never completes (its front-end
        pumps are stopped), so the shared deadline converts power loss
        into missed heartbeats — the detector never peeks at simulator
        ground truth like ``device.halted``.
        """
        members = [name for name in self.cluster.order
                   if name not in self._evicting]
        probes = {
            name: self.cluster.servers[name].device.admin(
                AdminOpcode.XSSD_QUERY_STATUS)
            for name in members
        }
        yield self.engine.timeout(self.probe_timeout_ns)
        for name, probe in probes.items():
            answered = probe.triggered
            if answered:
                self.probes_answered += 1
            else:
                self.probes_timed_out += 1
            detector = self._detector_for(name)
            before = detector.last_level
            level = detector.record_probe(answered)
            self._note_level(detector, before, level)
            if (level is SuspicionLevel.DEAD
                    and name != self.cluster.primary_name
                    and name not in self._evicting):
                self._evict(name)

    def _note_level(self, detector, before, level):
        if level is before:
            return
        detector.last_level = level
        self._record("suspicion", detector.site,
                     f"{before.name.lower()}->{level.name.lower()} after "
                     f"{detector.consecutive_misses} missed probe(s)")
        tracer = self.engine.tracer
        if tracer.enabled:
            tracer.counter(self.name, f"suspicion:{detector.site}",
                           int(level))

    # -- link staleness & resync healing -------------------------------------------

    def _link_round(self):
        now = self.engine.now
        order = self.cluster.order
        for upstream_name, peer_name in zip(order, order[1:]):
            if peer_name in self._evicting:
                continue
            upstream = self.cluster.servers[upstream_name]
            stalled = link_stalled(upstream.device, peer_name, now,
                                   self.link_quiet_after_ns)
            detector = self._detector_for(peer_name)
            before = detector.last_level
            detector.note_link(stalled)
            self._note_level(detector, before, detector.level())
            if not stalled or detector.consecutive_misses:
                continue  # dead/dying servers are the probe path's job
            last = self._last_resync.get(peer_name)
            if last is not None and now - last < self.resync_cooldown_ns:
                continue
            self._last_resync[peer_name] = now
            offered = self.cluster.resync(peer_name)
            self._record("link-resync", peer_name,
                         f"re-offered {offered} bytes from "
                         f"{upstream_name}'s history")

    # -- eviction and reattachment ---------------------------------------------------

    def _evict(self, site):
        self._evicting.add(site)
        self._record("dead-detected", site,
                     f"{self.detectors[site].consecutive_misses} consecutive "
                     f"probes unanswered")
        self.cluster.reconfigure_around(site)
        self._record(
            "evict", site,
            f"spliced out; order now {'->'.join(self.cluster.order)}",
        )
        if self.auto_reboot:
            self.engine.process(self._reboot_later(site),
                                name=f"{self.name}-reboot-{site}")

    def _reboot_later(self, site):
        yield self.engine.timeout(self.reboot_delay_ns)
        server = self.cluster.servers[site]
        if not server.device.halted or not self._running:
            self._evicting.discard(site)
            return
        server.rejoin()
        offered = self.cluster.reattach(site)
        self.detectors[site].reset()
        self._evicting.discard(site)
        self._record(
            "rejoin", site,
            f"reattached at tail of {'->'.join(self.cluster.order)}; "
            f"resynced {offered} bytes",
        )

    # -- brownout (overload hysteresis) ----------------------------------------------

    def _brownout_round(self):
        if self.admission is None:
            return
        now = self.engine.now
        pressure = self.admission.pressure()
        tracer = self.engine.tracer
        if tracer.enabled:
            tracer.counter(self.name, "admission_pressure_pct",
                           int(pressure * 100))
        if pressure >= self.brownout_enter_pressure:
            self._healthy_since = None
            if self._overloaded_since is None:
                self._overloaded_since = now
            dwell = now - self._overloaded_since
            if (self.brownout_state is BrownoutState.NORMAL
                    and dwell >= self.brownout_enter_after_ns):
                self._enter_brownout(pressure)
        elif pressure <= self.brownout_exit_pressure:
            self._overloaded_since = None
            if self._healthy_since is None:
                self._healthy_since = now
            dwell = now - self._healthy_since
            if (self.brownout_state is BrownoutState.BROWNOUT
                    and dwell >= self.brownout_exit_after_ns):
                self._exit_brownout(pressure)
        else:
            # Inside the hysteresis band: neither dwell clock runs.
            self._overloaded_since = None
            self._healthy_since = None

    def _enter_brownout(self, pressure):
        transport = self.cluster.primary.device.transport
        self._original_policy = transport.policy.name
        if self._original_policy == self.brownout_policy:
            return
        self.brownout_state = BrownoutState.BROWNOUT
        self.brownout_enters += 1
        self._mirror_brownout()
        self.cluster.set_replication_policy(self.brownout_policy)
        self._record(
            "brownout-enter", self.cluster.primary_name,
            f"pressure {pressure:.2f}; policy {self._original_policy} -> "
            f"{self.brownout_policy}",
        )
        tracer = self.engine.tracer
        if tracer.enabled:
            tracer.counter(self.name, "brownout", 1)

    def _exit_brownout(self, pressure):
        self.brownout_state = BrownoutState.NORMAL
        self.brownout_exits += 1
        self._mirror_brownout()
        self.cluster.set_replication_policy(self._original_policy)
        self._record(
            "brownout-exit", self.cluster.primary_name,
            f"pressure {pressure:.2f}; policy restored to "
            f"{self._original_policy}",
        )
        tracer = self.engine.tracer
        if tracer.enabled:
            tracer.counter(self.name, "brownout", 0)

    def _mirror_brownout(self):
        """Stamp the counters onto the primary device.

        ``device_snapshot`` reports them under ``health`` so gauges (and
        the SLO controller) can read brownout history without parsing the
        supervisor's event log or the trace.
        """
        device = self.cluster.primary.device
        device.brownout_enters = self.brownout_enters
        device.brownout_exits = self.brownout_exits
        device.brownout_active = int(
            self.brownout_state is BrownoutState.BROWNOUT
        )
