"""Typed errors of the overload-protection path.

The flow-control protocol of Fig. 8 is advisory: nothing in the base
device stops a host from claiming stream ranges faster than the destage
path can retire them, and nothing turns a credit counter that will never
move into an error.  These exceptions make both conditions explicit so
callers can shed load or escalate instead of queueing (or spinning)
without bound.
"""


class HealthError(Exception):
    """Base class for health/overload-protection errors."""


class DeviceBusy(HealthError):
    """The device (or a writer's fair share of it) is saturated.

    Raised by admission control *before* any stream bytes are claimed, so
    a rejected write leaves no gap behind: the caller backs off and
    retries, exactly like an NVMe controller returning a busy status.
    """

    def __init__(self, message, writer_id=None, reason="saturated",
                 retry_after_ns=None):
        super().__init__(message)
        self.writer_id = writer_id
        self.reason = reason
        self.retry_after_ns = retry_after_ns


class CreditStarvation(HealthError):
    """A credit-counter wait exceeded its deadline.

    Raised instead of letting ``x_pwrite``/``x_fsync`` poll a counter
    forever; carries enough context for the caller to decide between
    retrying, reconfiguring the transport, or failing the transaction.
    """

    def __init__(self, message, stalled_for_ns=None, credit=None,
                 target=None):
        super().__init__(message)
        self.stalled_for_ns = stalled_for_ns
        self.credit = credit
        self.target = target
