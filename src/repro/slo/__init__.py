"""The SLO control plane: signals -> bounded actuators -> proof.

ROADMAP item 4's closed loop.  The pieces:

* :mod:`repro.slo.signals` — :class:`SignalReader`, condensing one
  node's gauge snapshot, windowed commit-latency p99, shed rate, and
  supervisor counters into a flat dict per poll;
* :mod:`repro.slo.controller` — :class:`SloController`, walking each
  fleet node up and down a four-rung escalation ladder (group-commit
  thresholds, destage priority, admission shedding, replication policy)
  with hysteresis, typed audit events, and a durability fence proving no
  actuation touches acked work.

Driven by the diurnal traffic model in :mod:`repro.workloads.diurnal`,
benchmarked by ``python -m repro.bench slo``, and checked by
``python -m repro.check --slo``.  See SLO.md for the full tour.
"""

from repro.slo.controller import MAX_LEVEL, SloController
from repro.slo.signals import SignalReader

__all__ = [
    "MAX_LEVEL",
    "SloController",
    "SignalReader",
]
