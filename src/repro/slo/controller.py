"""The SLO controller: graceful, reversible degradation under overload.

One :class:`SloController` watches every node of a
:class:`~repro.cluster.fleet.Fleet` and walks each node independently up
and down a fixed **escalation ladder** — one bounded rung per decision,
never a jump — choosing cheaper service over shed service for as long as
cheaper service is available:

==== ===========================================================
rung actuation (and its exact inverse on de-escalation)
==== ===========================================================
1    group-commit ``bytes``/``timeout`` doubled (amortize flushes;
     clamped to ``group_commit_max_factor`` x the original)
2    write scheduler to destage priority (drain the CMB ring
     faster, freeing credit at the cost of reads)
3    admission ceiling halved (floored at
     ``min_ceiling_fraction`` x baseline) and the most-rejected
     lane's fair-share weight lowered — shed *new* work, never
     admitted work
4    replication policy to ``degraded_policy`` (skipped when the
     chain supervisor's brownout already moved it)
==== ===========================================================

Every rung transition is **hysteresis-guarded**: a node must be
overloaded for ``enter_polls`` consecutive polls to climb one rung and
healthy for ``exit_polls`` consecutive polls to descend one, and each
transition resets the streak — so the ladder moves at most one rung per
dwell, in both directions, and cannot flap.

Every knob turn emits a **typed audit event** (plain dict in
``events``, plus a trace instant on this controller's supervisor track)
recording the knob, the before/after values, the rung, and the signals
that justified it.

**The durability fence.** No actuator may skip or reorder acked
durability work.  All actuations are synchronous (no simulation time
passes), so the WAL's durability state must be *identical* before and
after each one: the fence fingerprints ``durable_lsn``, the pending
record count/bytes, and the waiter LSN order around every rung
transition, and any difference is recorded in
``invariant_violations`` — which the ``--slo`` checker treats as a
protocol violation.  (``seed_shed_acked_bug`` deliberately breaks the
contract *outside* the fenced window — acking commit waiters without
durability on a rung-3 shed — so the end-to-end crash-recovery oracles,
not the fence, must catch it.)
"""

from repro.slo.signals import SignalReader
from repro.ssd.scheduler import SchedulingMode

MAX_LEVEL = 4


class _NodeState:
    """One node's position on the ladder and the values to restore."""

    __slots__ = ("level", "overload_streak", "healthy_streak",
                 "orig_group_bytes", "orig_group_timeout", "orig_mode",
                 "orig_ceiling", "weighted_lane", "orig_lane_weight",
                 "orig_policy")

    def __init__(self):
        self.level = 0
        self.overload_streak = 0
        self.healthy_streak = 0
        self.orig_group_bytes = None
        self.orig_group_timeout = None
        self.orig_mode = None
        self.orig_ceiling = None
        self.weighted_lane = None
        self.orig_lane_weight = None
        self.orig_policy = None


class SloController:
    """Per-node escalation ladders over one fleet's knobs."""

    def __init__(self, fleet, target_p99_ns, poll_ns=100_000.0,
                 enter_polls=2, exit_polls=4,
                 pressure_high=0.9, pressure_low=0.5,
                 healthy_fraction=0.7, group_commit_max_factor=4.0,
                 min_ceiling_fraction=0.25, shed_lane_weight=0.5,
                 degraded_policy="lazy", fleet_supervisor=None,
                 name="slo-controller", seed_shed_acked_bug=False):
        if target_p99_ns <= 0:
            raise ValueError("the p99 target must be positive")
        if poll_ns <= 0:
            raise ValueError("the poll period must be positive")
        if enter_polls < 1 or exit_polls < 1:
            raise ValueError("dwell polls must be at least 1")
        if not 0 < min_ceiling_fraction <= 1:
            raise ValueError("min ceiling fraction must be in (0, 1]")
        self.fleet = fleet
        self.engine = fleet.engine
        self.target_p99_ns = float(target_p99_ns)
        self.poll_ns = poll_ns
        self.enter_polls = enter_polls
        self.exit_polls = exit_polls
        self.pressure_high = pressure_high
        self.pressure_low = pressure_low
        self.healthy_fraction = healthy_fraction
        self.group_commit_max_factor = group_commit_max_factor
        self.min_ceiling_fraction = min_ceiling_fraction
        self.shed_lane_weight = shed_lane_weight
        self.degraded_policy = degraded_policy
        self.fleet_supervisor = fleet_supervisor
        self.name = name
        self.seed_shed_acked_bug = seed_shed_acked_bug
        self.readers = {}  # node name -> SignalReader
        self.states = {}  # node name -> _NodeState
        self.events = []  # typed audit events, chronological
        self.invariant_violations = []  # durability-fence breaches
        self.last_signals = {}  # node name -> most recent reading
        self.polls = 0
        self._running = False
        self._process = None

    # -- lifecycle ----------------------------------------------------------------

    def start(self):
        if self._running:
            raise RuntimeError("slo controller already running")
        self._running = True
        tracing = self.engine.tracer.enabled
        for name in sorted(self.fleet.nodes):
            node = self.fleet.nodes[name]
            sampler = None
            if tracing:
                from repro.obs import GaugeSampler

                sampler = GaugeSampler(self.engine.tracer, node.device,
                                       track=f"{name}.slo-gauges")
            self.readers[name] = SignalReader(
                node, sampler=sampler,
                fleet_supervisor=self.fleet_supervisor,
            )
            self.states[name] = _NodeState()
        self._process = self.engine.process(self._loop(), name=self.name)
        return self._process

    def stop(self):
        self._running = False

    def level_of(self, node_name):
        state = self.states.get(node_name)
        return state.level if state is not None else 0

    def events_for(self, site, action=None):
        return [
            event for event in self.events
            if event["site"] == site
            and (action is None or event["action"] == action)
        ]

    # -- audit --------------------------------------------------------------------

    def _audit(self, action, site, knob, old, new, level, signals):
        event = {
            "time_ns": self.engine.now,
            "action": action,
            "site": site,
            "knob": knob,
            "from": old,
            "to": new,
            "level": level,
            "signals": dict(signals),
        }
        self.events.append(event)
        tracer = self.engine.tracer
        if tracer.enabled:
            tracer.instant(self.name, action, site=site, knob=knob,
                           level=level, old=str(old), new=str(new))
        return event

    # -- the durability fence ------------------------------------------------------

    def _fence(self, node):
        """Fingerprint of everything an actuator must not disturb."""
        lm = node.database.log_manager
        return (
            lm.durable_lsn,
            len(lm._pending),
            lm._pending_bytes,
            tuple(lsn for lsn, _ in lm._waiters),
        )

    def _check_fence(self, node, before, after, transition, signals):
        if before == after:
            return
        violation = {
            "time_ns": self.engine.now,
            "site": node.name,
            "transition": transition,
            "before": before,
            "after": after,
        }
        self.invariant_violations.append(violation)
        self._audit("fence-violation", node.name, transition,
                    before, after, self.states[node.name].level, signals)

    # -- the control loop ----------------------------------------------------------

    def _loop(self):
        while self._running:
            yield self.engine.timeout(self.poll_ns)
            if not self._running:
                return
            self.polls += 1
            for name in sorted(self.fleet.nodes):
                node = self.fleet.nodes[name]
                signals = self.readers[name].read()
                self.last_signals[name] = signals
                self._step(node, signals)

    def _step(self, node, signals):
        state = self.states[node.name]
        p99 = signals["p99_commit_ns"]
        # An empty latency window with commit waiters outstanding is a
        # stall — worse than any measurable p99, never "no news is good
        # news".
        stalled = (signals["commits_in_window"] == 0
                   and signals["wal_waiters"] > 0)
        overloaded = (
            (p99 is not None and p99 > self.target_p99_ns)
            or signals["pressure"] >= self.pressure_high
            or stalled
        )
        healthy = (
            not stalled
            and (p99 is None
                 or p99 <= self.healthy_fraction * self.target_p99_ns)
            and signals["pressure"] <= self.pressure_low
            and signals["shed_in_window"] == 0
        )
        if overloaded:
            state.healthy_streak = 0
            state.overload_streak += 1
            if (state.overload_streak >= self.enter_polls
                    and state.level < MAX_LEVEL):
                state.overload_streak = 0
                self._escalate(node, state, signals)
        elif healthy:
            state.overload_streak = 0
            state.healthy_streak += 1
            if state.healthy_streak >= self.exit_polls and state.level > 0:
                state.healthy_streak = 0
                self._deescalate(node, state, signals)
        else:
            # Inside the hysteresis band: both dwell clocks reset.
            state.overload_streak = 0
            state.healthy_streak = 0

    # -- escalation (one rung up) ---------------------------------------------------

    def _escalate(self, node, state, signals):
        before = self._fence(node)
        rung = state.level + 1
        if rung == 1:
            self._raise_group_commit(node, state, signals)
        elif rung == 2:
            self._prioritize_destage(node, state, signals)
        elif rung == 3:
            self._shed_admission(node, state, signals)
        elif rung == 4:
            self._degrade_replication(node, state, signals)
        state.level = rung
        after = self._fence(node)
        self._check_fence(node, before, after, f"escalate->{rung}", signals)
        if rung == 3 and self.seed_shed_acked_bug:
            self._seeded_shed_acked(node)

    def _raise_group_commit(self, node, state, signals):
        lm = node.database.log_manager
        state.orig_group_bytes = lm.group_commit_bytes
        state.orig_group_timeout = lm.group_commit_timeout_ns
        cap = self.group_commit_max_factor
        (old_bytes, new_bytes), (old_timeout, new_timeout) = (
            lm.set_group_commit(
                group_commit_bytes=min(lm.group_commit_bytes * 2,
                                       int(state.orig_group_bytes * cap)),
                group_commit_timeout_ns=min(
                    lm.group_commit_timeout_ns * 2,
                    state.orig_group_timeout * cap),
            )
        )
        self._audit("escalate", node.name, "group-commit",
                    (old_bytes, old_timeout), (new_bytes, new_timeout),
                    1, signals)

    def _prioritize_destage(self, node, state, signals):
        scheduler = node.device.conventional.scheduler
        state.orig_mode = scheduler.mode
        scheduler.mode = SchedulingMode.DESTAGE_PRIORITY
        self._audit("escalate", node.name, "scheduler-mode",
                    state.orig_mode.value, scheduler.mode.value, 2, signals)

    def _shed_admission(self, node, state, signals):
        admission = node.admission
        floor = int(admission.baseline_max_outstanding_bytes
                    * self.min_ceiling_fraction)
        target = max(admission.max_outstanding_bytes // 2, floor, 1)
        old, new = admission.set_ceiling(target)
        state.orig_ceiling = old
        self._audit("escalate", node.name, "admission-ceiling", old, new,
                    3, signals)
        lane = self._hottest_lane(admission)
        if lane is not None:
            state.weighted_lane = lane
            old_weight, new_weight = admission.set_lane_weight(
                lane, self.shed_lane_weight)
            state.orig_lane_weight = old_weight
            self._audit("escalate", node.name, f"lane-weight:{lane}",
                        old_weight, new_weight, 3, signals)

    def _hottest_lane(self, admission):
        """The lane shedding should lean on: the most-rejected writer."""
        counts = admission.rejections_by_writer
        if not counts:
            return None
        return max(sorted(counts), key=lambda writer: counts[writer])

    def _degrade_replication(self, node, state, signals):
        transport = node.cluster.primary.device.transport
        current = transport.policy.name
        if current == self.degraded_policy:
            # The chain supervisor's brownout beat us to it; nothing to
            # do, and nothing to restore on the way down.
            state.orig_policy = None
            self._audit("escalate", node.name, "replication-policy",
                        current, current, 4, signals)
            return
        state.orig_policy = current
        node.cluster.set_replication_policy(self.degraded_policy)
        self._audit("escalate", node.name, "replication-policy",
                    current, self.degraded_policy, 4, signals)

    # -- de-escalation (one rung down, exact inverse) --------------------------------

    def _deescalate(self, node, state, signals):
        before = self._fence(node)
        rung = state.level
        if rung == 4:
            self._restore_replication(node, state, signals)
        elif rung == 3:
            self._restore_admission(node, state, signals)
        elif rung == 2:
            self._restore_scheduler(node, state, signals)
        elif rung == 1:
            self._restore_group_commit(node, state, signals)
        state.level = rung - 1
        after = self._fence(node)
        self._check_fence(node, before, after, f"deescalate->{rung - 1}",
                          signals)

    def _restore_replication(self, node, state, signals):
        if state.orig_policy is None:
            self._audit("deescalate", node.name, "replication-policy",
                        self.degraded_policy, self.degraded_policy, 3,
                        signals)
            return
        node.cluster.set_replication_policy(state.orig_policy)
        self._audit("deescalate", node.name, "replication-policy",
                    self.degraded_policy, state.orig_policy, 3, signals)
        state.orig_policy = None

    def _restore_admission(self, node, state, signals):
        admission = node.admission
        old, new = admission.set_ceiling(state.orig_ceiling)
        self._audit("deescalate", node.name, "admission-ceiling", old, new,
                    2, signals)
        state.orig_ceiling = None
        if state.weighted_lane is not None:
            old_weight, new_weight = admission.set_lane_weight(
                state.weighted_lane, state.orig_lane_weight)
            self._audit("deescalate", node.name,
                        f"lane-weight:{state.weighted_lane}",
                        old_weight, new_weight, 2, signals)
            state.weighted_lane = None
            state.orig_lane_weight = None

    def _restore_scheduler(self, node, state, signals):
        scheduler = node.device.conventional.scheduler
        old = scheduler.mode
        scheduler.mode = state.orig_mode
        self._audit("deescalate", node.name, "scheduler-mode", old.value,
                    scheduler.mode.value, 1, signals)
        state.orig_mode = None

    def _restore_group_commit(self, node, state, signals):
        lm = node.database.log_manager
        (old_bytes, new_bytes), (old_timeout, new_timeout) = (
            lm.set_group_commit(
                group_commit_bytes=state.orig_group_bytes,
                group_commit_timeout_ns=state.orig_group_timeout,
            )
        )
        self._audit("deescalate", node.name, "group-commit",
                    (old_bytes, old_timeout), (new_bytes, new_timeout),
                    0, signals)
        state.orig_group_bytes = None
        state.orig_group_timeout = None

    # -- the seeded bug -------------------------------------------------------------

    def _seeded_shed_acked(self, node):
        """Deliberate protocol violation for the ``--slo`` checker.

        On a rung-3 shed, acknowledge every commit waiter immediately and
        drop the records still pending — acks without durability.  The
        call sits *outside* the fenced window, modeling an actuator code
        path the fence does not cover, so only the end-to-end crash
        oracles (acked-durability, ack-order) can catch it.
        """
        lm = node.database.log_manager
        for commit_lsn, event in lm._waiters:
            if not event.triggered:
                event.succeed(commit_lsn)
        lm._waiters = []
        lm._pending = []
        lm._pending_bytes = 0
