"""Signal extraction: one node's health, one plain dict per poll.

The controller never reaches into device internals mid-decision; a
:class:`SignalReader` condenses everything it may react to into a flat
dict of numbers once per poll:

* **p99 commit latency** over the window — the freshest samples from the
  node database's :class:`~repro.sim.stats.LatencyRecorder`, windowed by
  a per-reader seen-index so each poll judges only what happened since
  the last one;
* **CMB occupancy and destage backlog** — from
  :func:`~repro.core.metrics.device_snapshot` (via the node's
  :class:`~repro.obs.gauges.GaugeSampler` when tracing, so every signal
  the controller acted on is also on the counter tracks);
* **admission shed rate** — the rejection-count delta over the window;
* **brownout counters** — the ``health`` snapshot section stamped by the
  chain supervisor;
* **rebalance stalls** — the fleet supervisor's typed hot-but-stuck
  records, counted for this node.

Readers are pure observers: taking a reading never advances simulation
time and never mutates the observed structures.
"""

from repro.core.metrics import device_snapshot
from repro.sim.stats import percentile


class SignalReader:
    """Windowed health signals for one :class:`~repro.cluster.fleet.FleetNode`."""

    def __init__(self, node, sampler=None, fleet_supervisor=None):
        self.node = node
        self.sampler = sampler  # GaugeSampler when tracing is on
        self.fleet_supervisor = fleet_supervisor
        self._seen_samples = 0
        self._last_rejections = 0
        self.readings = 0

    def read(self):
        """One poll's worth of signals as a flat dict (no time passes)."""
        node = self.node
        if self.sampler is not None:
            snapshot = self.sampler.sample()
        else:
            snapshot = device_snapshot(node.device)

        recorder = node.database.stats.latency
        samples = recorder.samples
        window = samples[self._seen_samples:]
        self._seen_samples = len(samples)
        p99 = percentile(window, 0.99) if window else None

        rejections = node.admission.rejections
        shed = rejections - self._last_rejections
        self._last_rejections = rejections

        ring = snapshot["fast_side"]["ring"]
        log_manager = node.database.log_manager
        stalls = 0
        if self.fleet_supervisor is not None:
            stalls = len(self.fleet_supervisor.stalls_for(node.name))

        self.readings += 1
        return {
            "time_ns": snapshot["time_ns"],
            "p99_commit_ns": p99,
            "commits_in_window": len(window),
            "cmb_used_fraction": (ring["used_bytes"] / ring["capacity"]
                                  if ring["capacity"] else 0.0),
            "destage_backlog_pages": snapshot["destage"]["outstanding_pages"],
            "shed_in_window": shed,
            "wal_waiters": len(log_manager._waiters),
            "wal_pending_bytes": log_manager.pending_bytes,
            "pressure": node.admission.pressure(),
            "brownout_active": snapshot["health"]["brownout_active"],
            "brownout_enters": snapshot["health"]["brownout_enters"],
            "rebalance_stalls": stalls,
        }
