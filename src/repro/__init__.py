"""repro — a full-stack reproduction of the X-SSD / Villars storage system.

The package rebuilds the system of *"X-SSD: A Storage System with Native
Support for Database Logging and Replication"* (SIGMOD 2022) as a timed
discrete-event simulation: a complete NVMe SSD substrate (NAND, FTL,
scheduler, NVMe protocol), the paper's fast side (CMB module, Destage
module, Transport module with shadow-counter replication), the drop-in
host API (``x_pwrite``/``x_fsync``/``x_pread``), an in-memory database
with write-ahead logging, and the benchmark harness that regenerates the
paper's evaluation figures.

Quick start::

    from repro.core import XssdDevice, villars_sram
    from repro.host import XssdLogFile
    from repro.sim import Engine, KIB

    engine = Engine()
    device = XssdDevice(engine, villars_sram()).start()
    log = XssdLogFile(device)

    def scenario():
        yield log.x_pwrite(b"a log record", 4 * KIB)
        yield log.x_fsync()   # durable once the credit counter covers it

    engine.process(scenario())
    engine.run(until=1e9)

Package map — see DESIGN.md for the full inventory:

========================  ====================================================
``repro.sim``             discrete-event kernel (engine, resources, stats)
``repro.pcie``            TLPs, links, MMIO/write-combining, DMA, NTB, RDMA
``repro.nand``            flash geometry, timings, dies, channels, faults
``repro.ftl``             page mapping, GC, wear leveling, bad blocks
``repro.ssd``             NVMe front end, buffer, scheduler, firmware, device
``repro.pm``              CMB backing memories and host NVDIMM
``repro.core``            the paper's contribution: CMB / Destage / Transport
``repro.host``            drop-in x_* calls, allocator API, baselines
``repro.db``              transactions, WAL with group commit, recovery
``repro.workloads``       TPC-C-shaped, YCSB, synthetic streams
``repro.cluster``         replicated topologies and failure injection
``repro.bench``           one experiment module per paper figure
========================  ====================================================
"""

__version__ = "1.0.0"

__all__ = [
    "sim",
    "pcie",
    "nand",
    "ftl",
    "ssd",
    "pm",
    "core",
    "host",
    "db",
    "workloads",
    "cluster",
    "bench",
]
