"""Exporters: Chrome trace-event JSON (Perfetto-loadable) and summaries.

Two output shapes:

* :func:`write_chrome_trace` — the Trace Event Format that Perfetto and
  ``chrome://tracing`` load directly: complete-duration events (``"X"``)
  for spans, instant events (``"i"``), counter tracks (``"C"``), and
  legacy flow events (``"s"``/``"t"``/``"f"``) drawing the causality
  arrows that follow one log chunk host → CMB → destage → NAND → replica.
  Timestamps are microseconds (the format's unit) converted from the
  engine's nanosecond clock.

* :func:`stage_summary` / :func:`write_summary_json` /
  :func:`write_summary_csv` — the per-stage latency table built from the
  tracer's histograms: count, total, mean, min/max and approximate
  p50/p90/p99 per (track, stage).

Export is deterministic: events keep their emission order, ids are dense
integers assigned in first-seen order, and JSON is dumped with sorted
keys — the same seed yields a byte-identical file.
"""

import csv
import json

from repro.obs.trace import CounterSample, Instant, Span


def chrome_trace_events(tracers):
    """Flatten ``tracers`` into a list of trace-event dicts.

    Each tracer becomes one process (pid = index + 1); each distinct
    track within it becomes one named thread, in first-seen order.  Spans
    still open at export time are emitted with their duration clipped at
    the engine's current clock and ``args.incomplete = true`` (a crash
    dump wants to see what was in flight, not lose it).
    """
    events = []
    flow_seen = {}  # flow key -> occurrence count (to pick s/t phases)
    flow_last = {}  # flow key -> index of that flow's last emitted event
    for pid, tracer in enumerate(tracers, start=1):
        label = tracer.label or f"engine-{pid - 1}"
        events.append({
            "ph": "M", "pid": pid, "tid": 0, "ts": 0,
            "name": "process_name", "args": {"name": label},
        })
        tids = {}
        close_ns = tracer.engine.now
        for record in tracer.events:
            tid = tids.get(record.track)
            if tid is None:
                tid = tids[record.track] = len(tids) + 1
                events.append({
                    "ph": "M", "pid": pid, "tid": tid, "ts": 0,
                    "name": "thread_name",
                    "args": {"name": record.track},
                })
            if isinstance(record, Span):
                start_us = record.start_ns / 1e3
                end_ns = record.end_ns
                args = dict(record.args) if record.args else {}
                if end_ns is None:
                    end_ns = max(close_ns, record.start_ns)
                    args["incomplete"] = True
                event = {
                    "ph": "X", "pid": pid, "tid": tid,
                    "ts": start_us, "dur": (end_ns - record.start_ns) / 1e3,
                    "name": record.name, "cat": record.track,
                }
                if record.flow is not None:
                    args["flow"] = record.flow
                if args:
                    event["args"] = args
                events.append(event)
                if record.flow is not None:
                    key = f"{pid}:{record.flow}"
                    count = flow_seen.get(key, 0)
                    flow_seen[key] = count + 1
                    events.append({
                        "ph": "s" if count == 0 else "t",
                        "pid": pid, "tid": tid, "ts": start_us,
                        "id": key, "name": "chunk", "cat": "flow",
                    })
                    flow_last[key] = len(events) - 1
            elif isinstance(record, Instant):
                event = {
                    "ph": "i", "s": "t", "pid": pid, "tid": tid,
                    "ts": record.ts_ns / 1e3,
                    "name": record.name, "cat": record.track,
                }
                args = dict(record.args) if record.args else {}
                if record.flow is not None:
                    args["flow"] = record.flow
                if args:
                    event["args"] = args
                events.append(event)
            elif isinstance(record, CounterSample):
                events.append({
                    "ph": "C", "pid": pid, "tid": tid,
                    "ts": record.ts_ns / 1e3,
                    "name": f"{record.track}:{record.name}",
                    "args": {"value": record.value},
                })
    # Close each flow: its final step becomes a flow-end so the arrows
    # terminate instead of dangling (binding point "e" = enclosing slice).
    for key, index in flow_last.items():
        if flow_seen[key] > 1:
            events[index] = dict(events[index], ph="f", bp="e")
    return events


def write_chrome_trace(path, tracers, label="repro-trace"):
    """Write ``tracers`` as a Chrome trace-event JSON file; returns count."""
    events = chrome_trace_events(tracers)
    payload = {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {"producer": "repro.obs", "label": label},
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True,
                  separators=(",", ":"))
        handle.write("\n")
    return len(events)


# -- stage-latency summaries ---------------------------------------------------


def stage_summary(tracers, extra=None):
    """Per-(track, stage) latency table plus session totals.

    ``extra`` (a dict) is merged under its own keys — the trace
    subcommand puts the final ``device_snapshot()`` there so one file
    carries both the timeline totals and the end-state counters they
    must agree with.
    """
    stages = []
    total_events = 0
    open_spans = 0
    for tracer in tracers:
        total_events += len(tracer.events)
        open_spans += tracer.open_spans
        for (track, name), histogram in sorted(tracer.histograms.items()):
            stages.append({
                "engine": tracer.label,
                "track": track,
                "stage": name,
                **histogram.to_dict(),
            })
    summary = {
        "stages": stages,
        "events_recorded": total_events,
        "spans_open": open_spans,
        "engines": [tracer.label for tracer in tracers],
    }
    if extra:
        summary.update(extra)
    return summary


def write_summary_json(path, summary):
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)
        handle.write("\n")


SUMMARY_CSV_COLUMNS = (
    "engine", "track", "stage", "count", "total_ns", "mean_ns",
    "min_ns", "max_ns", "p50_ns", "p90_ns", "p99_ns",
)


def write_summary_csv(path, summary):
    """The ``stages`` table as CSV (one row per track/stage pair)."""
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(SUMMARY_CSV_COLUMNS)
        for stage in summary["stages"]:
            writer.writerow([stage[column] for column in SUMMARY_CSV_COLUMNS])


def format_summary(summary, limit=None):
    """Render the summary's stage table as aligned text (CLI output)."""
    rows = summary["stages"][:limit] if limit else summary["stages"]
    lines = [f"{'track':<28} {'stage':<18} {'count':>8} "
             f"{'mean [us]':>10} {'p99 [us]':>10} {'total [ms]':>11}"]
    for stage in rows:
        lines.append(
            f"{stage['track']:<28} {stage['stage']:<18} "
            f"{stage['count']:>8d} {stage['mean_ns'] / 1e3:>10.2f} "
            f"{stage['p99_ns'] / 1e3:>10.2f} "
            f"{stage['total_ns'] / 1e6:>11.3f}"
        )
    return "\n".join(lines)
