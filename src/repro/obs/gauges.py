"""Periodic gauge sampling: device state as counter tracks.

The tracer's spans say where time went; these gauges say what the queues
looked like while it did.  :class:`GaugeSampler` is a simulation process
that takes a :func:`~repro.core.metrics.device_snapshot` every
``period_ns`` and re-emits the scalar levels as counter samples, so
Perfetto draws them as stepped line tracks under the span rows.

The sampler must be stopped before the run is allowed to drain (it keeps
rescheduling itself, so an unbounded ``engine.run()`` would never
return); the trace harness runs the clock in bounded increments and
stops the sampler once the workload completes.
"""

from repro.core.metrics import device_snapshot

DEFAULT_PERIOD_NS = 50_000.0

# snapshot path (tuple of keys) -> gauge name on the counter track.
GAUGE_PATHS = (
    (("fast_side", "credit"), "credit"),
    (("fast_side", "queue_free_bytes"), "queue_free_bytes"),
    (("fast_side", "in_flight_bytes"), "in_flight_bytes"),
    (("fast_side", "ring", "used_bytes"), "ring_used_bytes"),
    (("fast_side", "intake_backlog_bytes"), "intake_backlog_bytes"),
    (("faults", "chunks_shed"), "chunks_shed"),
    (("destage", "outstanding_pages"), "destage_outstanding"),
    (("destage", "pages_written"), "destage_pages_written"),
    (("transport", "visible_credit"), "visible_credit"),
    (("faults", "sends_retried"), "sends_retried"),
    (("health", "brownout_enters"), "brownout_enters"),
    (("health", "brownout_exits"), "brownout_exits"),
    (("health", "brownout_active"), "brownout_active"),
)


class GaugeSampler:
    """Samples one device's snapshot into a tracer's counter tracks."""

    def __init__(self, tracer, device, period_ns=DEFAULT_PERIOD_NS,
                 track=None):
        if period_ns <= 0:
            raise ValueError("sampling period must be positive")
        self.tracer = tracer
        self.device = device
        self.period_ns = period_ns
        self.track = track or f"{device.name}.gauges"
        self.samples_taken = 0
        self._running = False

    def start(self):
        if self._running:
            raise RuntimeError("gauge sampler already running")
        self._running = True
        return self.device.engine.process(
            self._loop(), name=f"{self.track}-sampler"
        )

    def stop(self):
        self._running = False

    def sample(self):
        """Take one snapshot now and emit its gauges (never advances time)."""
        snapshot = device_snapshot(self.device)
        tracer = self.tracer
        for path, name in GAUGE_PATHS:
            value = snapshot
            for key in path:
                value = value[key]
            tracer.counter(self.track, name, value)
        self.samples_taken += 1
        return snapshot

    def _loop(self):
        while self._running:
            yield self.device.engine.timeout(self.period_ns)
            if not self._running:
                return
            self.sample()
