"""Log-bucketed latency histograms for per-stage summaries.

The tracer records every finished span's duration into one of these, so a
run of millions of events keeps O(#buckets) state per stage instead of a
sample list.  Buckets are powers of two (in nanoseconds): bucket *i*
covers durations in ``[2**(i-1), 2**i)`` ns, with bucket 0 holding
sub-nanosecond (including zero) durations.  Percentiles are therefore
approximate — reported at the upper bound of the covering bucket, i.e.
within a factor of two — which is exactly the resolution a "where does
the time go" breakdown needs (SimpleSSD/Amber report per-resource stats
at similar granularity).
"""

import math


class LogHistogram:
    """A power-of-two-bucketed histogram of non-negative durations."""

    __slots__ = ("counts", "count", "total", "min", "max")

    def __init__(self):
        self.counts = {}  # bucket index -> observation count
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0

    def record(self, value):
        """Add one observation (nanoseconds, >= 0)."""
        if value < 0:
            raise ValueError(f"histogram values must be >= 0, got {value}")
        index = self.bucket_index(value)
        self.counts[index] = self.counts.get(index, 0) + 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @staticmethod
    def bucket_index(value):
        """Bucket holding ``value``: 0 for < 1 ns, else ceil(log2)+1 style."""
        if value < 1.0:
            return 0
        return int(math.ceil(value)).bit_length()

    @staticmethod
    def bucket_bound(index):
        """Upper bound (exclusive) of bucket ``index`` in nanoseconds."""
        if index == 0:
            return 1.0
        return float(1 << index)

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    def quantile(self, fraction):
        """Approximate quantile: upper bound of the covering bucket."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction {fraction} outside [0, 1]")
        if not self.count:
            return 0.0
        threshold = fraction * self.count
        seen = 0
        for index in sorted(self.counts):
            seen += self.counts[index]
            if seen >= threshold:
                return min(self.bucket_bound(index), self.max)
        return self.max

    def to_dict(self):
        """A JSON-able rendering with stable key order."""
        return {
            "count": self.count,
            "total_ns": self.total,
            "mean_ns": self.mean,
            "min_ns": self.min if self.count else 0.0,
            "max_ns": self.max,
            "p50_ns": self.quantile(0.50),
            "p90_ns": self.quantile(0.90),
            "p99_ns": self.quantile(0.99),
            "buckets": {
                str(index): self.counts[index]
                for index in sorted(self.counts)
            },
        }
