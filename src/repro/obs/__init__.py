"""Observability: full-stack tracing, histograms, gauges, and exporters.

The paper explains every result by *where time goes* as a log record
moves host → CMB → destage → NAND and across NTB replicas; this package
makes that timeline visible in our reproduction.  One
:class:`~repro.obs.trace.Tracer` rides each
:class:`~repro.sim.Engine` (``engine.tracer``, a shared no-op unless a
capture is active); instrumented hook points across the host API, CMB,
destage, transport, scheduler, NAND channels, FTL, NTB and WAL layers
emit spans, instants, and counter samples through it.  Exporters turn a
session into a Perfetto-loadable Chrome trace-event file and a
per-stage latency summary.

Entry points::

    from repro.obs import capture, write_chrome_trace, stage_summary

    with capture() as session:
        ...build engines, run the scenario...
    write_chrome_trace("trace.json", session.tracers)

or, from the shell: ``python -m repro.bench trace`` and the ``--trace
PATH`` flag on every figure subcommand.  See OBSERVABILITY.md for the
track/span taxonomy and overhead numbers.
"""

from repro.obs.exporters import (
    chrome_trace_events,
    format_summary,
    stage_summary,
    write_chrome_trace,
    write_summary_csv,
    write_summary_json,
)
from repro.obs.gauges import GaugeSampler
from repro.obs.histogram import LogHistogram
from repro.obs.trace import (
    CounterSample,
    Instant,
    Span,
    Tracer,
    TraceSession,
    capture,
    current_session,
)
from repro.obs.validate import validate_trace_events, validate_trace_file

__all__ = [
    "Tracer",
    "TraceSession",
    "Span",
    "Instant",
    "CounterSample",
    "capture",
    "current_session",
    "GaugeSampler",
    "LogHistogram",
    "chrome_trace_events",
    "write_chrome_trace",
    "stage_summary",
    "format_summary",
    "write_summary_json",
    "write_summary_csv",
    "validate_trace_events",
    "validate_trace_file",
]
