"""Trace-event schema validation (no external dependencies).

Checks a generated ``trace.json`` against the subset of the Chrome Trace
Event Format this repo emits, so CI can fail fast on a malformed trace
instead of shipping an artifact Perfetto rejects.  Usable as a library
(:func:`validate_trace_events`) and as a CLI::

    python -m repro.obs.validate trace.json
"""

import json
import numbers
import sys

# Phases we emit: complete, instant, counter, metadata, flow start/step/end.
KNOWN_PHASES = {"X", "i", "C", "M", "s", "t", "f"}


def _err(errors, index, message):
    errors.append(f"traceEvents[{index}]: {message}")


def validate_trace_events(payload, max_errors=20):
    """Validate a parsed trace file; returns a list of error strings.

    An empty list means the payload is schema-conformant.  Validation
    stops collecting after ``max_errors`` problems (a broken exporter
    would otherwise report every event).
    """
    errors = []
    if not isinstance(payload, dict):
        return ["top level: expected an object with 'traceEvents'"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["top level: 'traceEvents' must be a list"]
    if not events:
        errors.append("top level: 'traceEvents' is empty")
    for index, event in enumerate(events):
        if len(errors) >= max_errors:
            errors.append(f"... stopping after {max_errors} errors")
            break
        if not isinstance(event, dict):
            _err(errors, index, "event is not an object")
            continue
        phase = event.get("ph")
        if phase not in KNOWN_PHASES:
            _err(errors, index, f"unknown phase {phase!r}")
            continue
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), int):
                _err(errors, index, f"{field!r} must be an integer")
        if not isinstance(event.get("ts"), numbers.Real):
            _err(errors, index, "'ts' must be a number")
        if not isinstance(event.get("name"), str) or not event.get("name"):
            _err(errors, index, "'name' must be a non-empty string")
        if phase == "X":
            duration = event.get("dur")
            if not isinstance(duration, numbers.Real) or duration < 0:
                _err(errors, index, "'X' event needs a non-negative 'dur'")
        elif phase == "i":
            if event.get("s") not in ("t", "p", "g"):
                _err(errors, index, "'i' event needs scope 's' in t/p/g")
        elif phase == "C":
            args = event.get("args")
            if not isinstance(args, dict) or not args:
                _err(errors, index, "'C' event needs numeric 'args'")
            elif not all(isinstance(v, numbers.Real) for v in args.values()):
                _err(errors, index, "'C' event args must all be numbers")
        elif phase == "M":
            if event.get("name") not in ("process_name", "thread_name"):
                _err(errors, index, "metadata name must be process/thread_name")
            args = event.get("args")
            if not isinstance(args, dict) or "name" not in args:
                _err(errors, index, "metadata event needs args.name")
        elif phase in ("s", "t", "f"):
            if not isinstance(event.get("id"), (str, int)):
                _err(errors, index, "flow event needs an 'id'")
    return errors


def validate_trace_file(path, max_errors=20):
    """Load ``path`` and validate it; returns the error list."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as error:
        return [f"{path}: unreadable or not JSON: {error}"]
    return validate_trace_events(payload, max_errors=max_errors)


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    if not argv:
        print("usage: python -m repro.obs.validate TRACE_JSON...",
              file=sys.stderr)
        return 2
    status = 0
    for path in argv:
        errors = validate_trace_file(path)
        if errors:
            status = 1
            for error in errors:
                print(f"{path}: {error}", file=sys.stderr)
        else:
            print(f"{path}: ok")
    return status


if __name__ == "__main__":
    sys.exit(main())
