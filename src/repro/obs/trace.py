"""The Tracer: spans, instants, and counter samples over sim time.

One :class:`Tracer` is attached to one :class:`~repro.sim.Engine`
(``engine.tracer``); model code emits through it:

* **spans** — ``token = tracer.begin(track, name, flow=..., **args)``
  then ``tracer.end(token, **args)``; timestamps come from the engine
  clock, so a span is "where sim time went" for one stage;
* **instant events** — ``tracer.instant(track, name, ...)`` for points
  with no duration (credit updates, retries, injected faults);
* **counter samples** — ``tracer.counter(track, name, value)`` for
  gauges (queue levels, outstanding pages), rendered as counter tracks.

A *track* is a string naming the resource the event belongs to (the
module's own ``name``: ``"villars.cmb"``, ``"nand.ch3"``,
``"ntb->secondary-1"``); the exporter turns each distinct track into one
timeline row.  A *flow* is an integer causality id — the log-stream byte
offset of a chunk — shared by every span that touches that chunk, which
is what lets one chunk be followed host → CMB → destage → NAND program →
replica intake across tracks.

Everything is recorded in emission order into plain lists, and the
engine clock is the only time source, so a fixed seed produces a
byte-identical trace.  The disabled path is
:data:`repro.sim.engine.NULL_TRACER`; hot hook points guard with
``tracer.enabled`` so a quiet simulation pays only attribute loads.
"""

from contextlib import contextmanager

from repro.obs.histogram import LogHistogram
from repro.sim.engine import set_tracer_factory

SPAN = "span"
INSTANT = "instant"
COUNTER = "counter"


class Span:
    """One begin/end pair on a track; ``end_ns`` is None while open."""

    __slots__ = ("track", "name", "start_ns", "end_ns", "flow", "args")

    def __init__(self, track, name, start_ns, flow=None, args=None):
        self.track = track
        self.name = name
        self.start_ns = start_ns
        self.end_ns = None
        self.flow = flow
        self.args = args

    @property
    def duration_ns(self):
        if self.end_ns is None:
            return None
        return self.end_ns - self.start_ns

    def __repr__(self):
        state = "open" if self.end_ns is None else f"{self.duration_ns:.0f}ns"
        return f"Span({self.track}/{self.name} @{self.start_ns:.0f} {state})"


class Instant:
    """A zero-duration point event on a track."""

    __slots__ = ("track", "name", "ts_ns", "flow", "args")

    def __init__(self, track, name, ts_ns, flow=None, args=None):
        self.track = track
        self.name = name
        self.ts_ns = ts_ns
        self.flow = flow
        self.args = args

    def __repr__(self):
        return f"Instant({self.track}/{self.name} @{self.ts_ns:.0f})"


class CounterSample:
    """One gauge observation on a counter track."""

    __slots__ = ("track", "name", "ts_ns", "value")

    def __init__(self, track, name, ts_ns, value):
        self.track = track
        self.name = name
        self.ts_ns = ts_ns
        self.value = value

    def __repr__(self):
        return f"Counter({self.track}/{self.name}={self.value} @{self.ts_ns:.0f})"


class Tracer:
    """Records spans/instants/counters against one engine's clock.

    ``events`` holds every record in emission order (spans appear at
    their *begin* time).  ``histograms`` accumulates finished span
    durations per ``(track, name)`` — the stage-latency summary's raw
    material — so the summary needs no second pass over the event list.
    """

    enabled = True

    def __init__(self, engine, label=None):
        self.engine = engine
        self.label = label
        self.events = []
        self.histograms = {}  # (track, name) -> LogHistogram
        self.open_spans = 0

    # -- spans ---------------------------------------------------------------

    def begin(self, track, name, flow=None, **args):
        """Open a span; returns the token to pass to :meth:`end`."""
        span = Span(track, name, self.engine.now, flow=flow,
                    args=args or None)
        self.events.append(span)
        self.open_spans += 1
        return span

    def end(self, token, **args):
        """Close a span returned by :meth:`begin` (None is a no-op)."""
        if token is None:
            return
        if token.end_ns is not None:
            raise ValueError(f"span ended twice: {token!r}")
        token.end_ns = self.engine.now
        self.open_spans -= 1
        if args:
            if token.args is None:
                token.args = args
            else:
                token.args.update(args)
        key = (token.track, token.name)
        histogram = self.histograms.get(key)
        if histogram is None:
            histogram = self.histograms[key] = LogHistogram()
        histogram.record(token.end_ns - token.start_ns)

    def set_flow(self, token, flow):
        """Attach a causality id to an already-open span (None token ok)."""
        if token is not None:
            token.flow = flow

    # -- points --------------------------------------------------------------

    def instant(self, track, name, flow=None, **args):
        self.events.append(
            Instant(track, name, self.engine.now, flow=flow,
                    args=args or None)
        )

    def counter(self, track, name, value):
        self.events.append(CounterSample(track, name, self.engine.now, value))

    # -- introspection -------------------------------------------------------

    def tracks(self):
        """Distinct track names in first-emission order."""
        seen = {}
        for event in self.events:
            seen.setdefault(event.track, None)
        return list(seen)

    def spans(self, track=None, name=None):
        """Spans, optionally filtered by track and/or name."""
        return [
            event for event in self.events
            if isinstance(event, Span)
            and (track is None or event.track == track)
            and (name is None or event.name == name)
        ]

    def instants(self, track=None, name=None):
        """Instant events, optionally filtered by track and/or name."""
        return [
            event for event in self.events
            if isinstance(event, Instant)
            and (track is None or event.track == track)
            and (name is None or event.name == name)
        ]

    def counter_samples(self, track=None, name=None):
        """Counter samples, optionally filtered by track and/or name."""
        return [
            event for event in self.events
            if isinstance(event, CounterSample)
            and (track is None or event.track == track)
            and (name is None or event.name == name)
        ]

    def tail(self, limit=20):
        """The last ``limit`` events, rendered as text lines (debug dumps)."""
        return [repr(event) for event in self.events[-limit:]]


class TraceSession:
    """All tracers created while a capture was installed.

    One per :func:`capture`; each engine constructed during the capture
    window appends its tracer here, in construction order — which is what
    gives multi-engine runs (a figure sweep, chaos recovery) stable
    process ids in the exported trace.
    """

    def __init__(self):
        self.tracers = []

    def make_tracer(self, engine):
        tracer = Tracer(engine, label=f"engine-{len(self.tracers)}")
        self.tracers.append(tracer)
        return tracer

    @property
    def events_recorded(self):
        return sum(len(tracer.events) for tracer in self.tracers)

    def tail(self, limit=20):
        """Last events across the session (the newest engine last)."""
        lines = []
        for tracer in self.tracers:
            lines.extend(
                f"[{tracer.label}] {line}" for line in tracer.tail(limit)
            )
        return lines[-limit:]


_current_session = None


def current_session():
    """The active :class:`TraceSession`, or None when not capturing."""
    return _current_session


@contextmanager
def capture():
    """Install a process-wide capture: every new Engine gets a Tracer.

    Yields the :class:`TraceSession`; on exit the factory is removed (and
    already-created engines keep their recording tracers, so results can
    still be exported).  Captures do not nest.
    """
    global _current_session
    if _current_session is not None:
        raise RuntimeError("a trace capture is already active")
    session = TraceSession()
    _current_session = session
    set_tracer_factory(session.make_tracer)
    try:
        yield session
    finally:
        _current_session = None
        set_tracer_factory(None)
