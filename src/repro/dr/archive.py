"""WAL archival: tail the committed log, seal segments, ship to the grid.

One :class:`Archiver` per fleet node tails the node primary's destage
ring through the same incremental readback scanner the rebalancer uses
(:class:`~repro.cluster.rebalance.StreamScanner`) — the archival path is
the traced pipeline itself, not a side channel, so the model checker
reasons about it with the machinery it already has.  Durable records
accumulate in a buffer; when the buffer crosses ``segment_bytes`` the
archiver seals a :dfn:`WAL segment`, uploads it, reads it back to verify
the landed checksum (catching torn uploads), and re-ships the manifest.
A second loop takes periodic snapshots of the node database's committed
tables so restores replay a bounded tail instead of the whole history.

Everything that crosses the wire is a plain JSON-able dict serialized by
:func:`canonical_json` — sorted keys, compact separators — so manifests
and checksums are byte-stable across processes and platforms
(``PYTHONHASHSEED`` cannot perturb them; the property tests prove it).
"""

import hashlib
import json

from repro.db.log_record import LogRecord, RecordKind
from repro.dr.grid import GridUnavailable

MANIFEST_VERSION = 1


# -- serialization -------------------------------------------------------------------


def encode_value(value):
    """Lift a record key/value into JSON-able form, tagged for round-trip.

    JSON has no tuples and only string dict keys; both appear in record
    keys (TPC-C composite keys).  Tagging keeps decoding unambiguous:
    a genuine dict ``{"__tuple__": ...}`` would be mis-decoded, so dicts
    are always shipped as tagged pair lists.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, tuple):
        return {"__tuple__": [encode_value(item) for item in value]}
    if isinstance(value, list):
        return {"__list__": [encode_value(item) for item in value]}
    if isinstance(value, dict):
        return {"__dict__": [
            [encode_value(key), encode_value(val)]
            for key, val in value.items()
        ]}
    if isinstance(value, bytes):
        return {"__bytes__": value.hex()}
    raise TypeError(f"cannot archive value of type {type(value).__name__}")


def decode_value(encoded):
    """Inverse of :func:`encode_value`."""
    if encoded is None or isinstance(encoded, (bool, int, float, str)):
        return encoded
    if isinstance(encoded, dict):
        if "__tuple__" in encoded:
            return tuple(decode_value(item) for item in encoded["__tuple__"])
        if "__list__" in encoded:
            return [decode_value(item) for item in encoded["__list__"]]
        if "__dict__" in encoded:
            return {
                decode_value(key): decode_value(val)
                for key, val in encoded["__dict__"]
            }
        if "__bytes__" in encoded:
            return bytes.fromhex(encoded["__bytes__"])
    raise TypeError(f"cannot decode archived value: {encoded!r}")


def record_to_dict(record):
    return {
        "lsn": record.lsn,
        "txn": record.txn_id,
        "kind": record.kind.value,
        "table": record.table,
        "key": encode_value(record.key),
        "value": encode_value(record.value),
    }


def record_from_dict(data):
    return LogRecord(
        lsn=data["lsn"],
        txn_id=data["txn"],
        kind=RecordKind(data["kind"]),
        table=data["table"],
        key=decode_value(data["key"]),
        value=decode_value(data["value"]),
    )


def canonical_json(payload):
    """The one serialization: sorted keys, compact, no trailing newline."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def payload_checksum(payload):
    """Content digest of a payload's canonical bytes."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


# -- payload builders ----------------------------------------------------------------


def segment_payload(node, seq, records):
    """A sealed WAL segment: records in LSN order, self-describing bounds."""
    ordered = sorted(records, key=lambda record: record.lsn)
    return {
        "kind": "segment",
        "node": node,
        "seq": seq,
        "first_lsn": ordered[0].lsn,
        "last_lsn": ordered[-1].lsn,
        "records": [record_to_dict(record) for record in ordered],
    }


def snapshot_payload(node, seq, database):
    """The node database's committed state, cut at its installed frontier.

    Rows carry their commit LSN so replay on top stays idempotent; the
    snapshot's ``as_of_lsn`` is the highest installed commit LSN, and a
    restore replays only transactions committing after it (re-applying a
    boundary transaction would be a harmless same-value install anyway).
    Row lists are sorted by encoded key, so equal states serialize to
    identical bytes.
    """
    tables = {}
    as_of_lsn = 0
    for name, table in sorted(database.tables().items()):
        rows = []
        for key, value in table.scan():
            version = table.version_of(key)
            as_of_lsn = max(as_of_lsn, version)
            rows.append([encode_value(key), encode_value(value), version])
        rows.sort(key=lambda row: canonical_json(row[0]))
        tables[name] = rows
    return {
        "kind": "snapshot",
        "node": node,
        "seq": seq,
        "as_of_lsn": as_of_lsn,
        "tables": tables,
    }


def payload_nbytes(payload):
    """Wire size of a payload: its canonical serialization's length."""
    return len(canonical_json(payload).encode("utf-8"))


def manifest_key(node):
    return f"{node}/manifest"


def segment_key(node, seq):
    return f"{node}/wal/{seq:06d}"


def snapshot_key(node, seq):
    return f"{node}/snapshot/{seq:06d}"


# -- the archiver --------------------------------------------------------------------


class Archiver:
    """Tail one node's durable WAL and ship it to the grid.

    Two background processes: the segment loop polls the destage ring
    every ``poll_ns``, buffers fresh durable records, and seals/ships a
    segment whenever the buffer crosses ``segment_bytes``; the snapshot
    loop (enabled when ``snapshot_every_ns > 0``) captures the database's
    committed tables on a period.  Every upload is verified by readback
    (landed checksum vs intended) and retried through partitions after
    ``retry_ns``.  The manifest — the byte-stable index restores start
    from — re-ships after every successful object upload.

    With ``retention=True``, each successful snapshot also compacts the
    archive: sealed segments whose every LSN the snapshot covers are
    dropped from the manifest (atomically — the slimmed manifest ships
    before any object is deleted) and their grid objects reclaimed.
    ``keep_segments`` holds back that many newest covered segments as
    PITR headroom below the snapshot boundary.

    ``drop_segment_seqs`` seeds the archiver bug the mutation tests
    prove the ``--dr`` checker catches: listed segment seqs are sealed,
    recorded in the manifest, and counted as archived — but never
    uploaded.
    """

    def __init__(self, engine, node, device, database, grid,
                 poll_ns=40_000.0, segment_bytes=2048,
                 snapshot_every_ns=0.0, retry_ns=60_000.0,
                 retention=False, keep_segments=0,
                 drop_segment_seqs=()):
        from repro.cluster.rebalance import StreamScanner

        self.engine = engine
        self.node = node
        self.device = device
        self.database = database
        self.grid = grid
        self.poll_ns = float(poll_ns)
        self.segment_bytes = int(segment_bytes)
        self.snapshot_every_ns = float(snapshot_every_ns)
        self.retry_ns = float(retry_ns)
        self.retention = bool(retention)
        self.keep_segments = int(keep_segments)
        if self.keep_segments < 0:
            raise ValueError("keep_segments must be >= 0")
        self.drop_segment_seqs = frozenset(drop_segment_seqs)
        self.track = f"{node}.dr"
        self.running = False
        self._scanner = StreamScanner(device)
        self._buffer = []  # durable records awaiting a segment seal
        self._buffered_bytes = 0
        self._segment_entries = []  # manifest entries, seal order
        self._snapshot_entries = []
        self._next_segment_seq = 0
        self._next_snapshot_seq = 0
        self.archived_lsn = 0
        self.segments_shipped = 0
        self.snapshots_taken = 0
        self.bytes_shipped = 0
        self.upload_retries = 0
        self.torn_detected = 0
        self.dropped_segments = 0
        self.segments_pruned = 0
        self.bytes_reclaimed = 0
        self.prune_failures = 0
        self.scan_errors = 0
        self.events = []  # [{"time_ns", "action", "seq"}, ...]

    # -- lifecycle -----------------------------------------------------------------

    def start(self):
        if self.running:
            raise RuntimeError("archiver already started")
        self.running = True
        self.engine.process(self._segment_loop(),
                            name=f"{self.node}-archiver")
        if self.snapshot_every_ns > 0:
            self.engine.process(self._snapshot_loop(),
                                name=f"{self.node}-snapshotter")
        return self

    def stop(self):
        self.running = False

    @property
    def archive_lag_lsn(self):
        """Durable LSNs the archive does not cover yet (0 = caught up)."""
        return max(0, self.database.log_manager.durable_lsn
                   - self.archived_lsn)

    def manifest_payload(self):
        return {
            "kind": "manifest",
            "version": MANIFEST_VERSION,
            "node": self.node,
            "segments": list(self._segment_entries),
            "snapshots": list(self._snapshot_entries),
        }

    # -- the loops -----------------------------------------------------------------

    def _segment_loop(self):
        while self.running:
            yield self.engine.timeout(self.poll_ns)
            if not self.running:
                break
            try:
                fresh = yield from self._scanner.scan()
            except Exception:  # noqa: BLE001 — device died under the scan
                self.scan_errors += 1
                if not self.running:
                    break
                continue
            for record in fresh:
                self._buffer.append(record)
                self._buffered_bytes += record.nbytes
            while self._buffered_bytes >= self.segment_bytes and self._buffer:
                yield from self._seal_and_ship()
            self._note_lag()

    def _snapshot_loop(self):
        while self.running:
            yield self.engine.timeout(self.snapshot_every_ns)
            if not self.running:
                break
            yield from self._take_snapshot()

    def drain(self):
        """Ship everything outstanding: final scan, final segment, snapshot.

        A sim process (``yield from``) used by benches and tests to
        quiesce the archive before measuring a restore; a crashed node
        never gets to drain — that lag is exactly what the archive-lag
        check family probes.
        """
        try:
            fresh = yield from self._scanner.scan()
        except Exception:  # noqa: BLE001
            self.scan_errors += 1
            fresh = []
        for record in fresh:
            self._buffer.append(record)
            self._buffered_bytes += record.nbytes
        while self._buffer:
            yield from self._seal_and_ship()
        if self.snapshot_every_ns >= 0:
            yield from self._take_snapshot()
        self._note_lag()

    # -- sealing and shipping ------------------------------------------------------

    def _seal_and_ship(self):
        take, taken_bytes = [], 0
        while self._buffer and taken_bytes < self.segment_bytes:
            record = self._buffer.pop(0)
            take.append(record)
            taken_bytes += record.nbytes
        self._buffered_bytes -= taken_bytes
        seq = self._next_segment_seq
        self._next_segment_seq += 1
        payload = segment_payload(self.node, seq, take)
        checksum = payload_checksum(payload)
        nbytes = payload_nbytes(payload)
        entry = {
            "seq": seq,
            "key": segment_key(self.node, seq),
            "first_lsn": payload["first_lsn"],
            "last_lsn": payload["last_lsn"],
            "records": len(payload["records"]),
            "nbytes": nbytes,
            "checksum": checksum,
        }
        if seq in self.drop_segment_seqs:
            # The seeded bug: the archiver *believes* this segment
            # shipped — manifest entry, archived frontier, counters all
            # advance — but the object never goes out.
            self.dropped_segments += 1
            self._segment_entries.append(entry)
            self.archived_lsn = max(self.archived_lsn, entry["last_lsn"])
            self._event("drop-segment", seq)
            yield from self._ship_manifest()
            return
        yield from self._upload_verified(entry["key"], payload, nbytes,
                                         checksum, "ship-segment", seq)
        self._segment_entries.append(entry)
        self.segments_shipped += 1
        self.bytes_shipped += nbytes
        self.archived_lsn = max(self.archived_lsn, entry["last_lsn"])
        self._event("ship-segment", seq)
        yield from self._ship_manifest()

    def _take_snapshot(self):
        seq = self._next_snapshot_seq
        self._next_snapshot_seq += 1
        payload = snapshot_payload(self.node, seq, self.database)
        checksum = payload_checksum(payload)
        nbytes = payload_nbytes(payload)
        yield from self._upload_verified(snapshot_key(self.node, seq),
                                         payload, nbytes, checksum,
                                         "ship-snapshot", seq)
        self._snapshot_entries.append({
            "seq": seq,
            "key": snapshot_key(self.node, seq),
            "as_of_lsn": payload["as_of_lsn"],
            "rows": sum(len(rows) for rows in payload["tables"].values()),
            "nbytes": nbytes,
            "checksum": checksum,
        })
        self.snapshots_taken += 1
        self.bytes_shipped += nbytes
        self._event("ship-snapshot", seq)
        pruned = self._prunable_segments() if self.retention else []
        if pruned:
            # Atomic cutover: drop the covered entries from the manifest
            # *before* it ships, so no manifest the grid ever serves
            # references an object a later delete removes.  Objects are
            # only deleted after the pruned manifest has verifiably
            # landed; a partition mid-delete leaves harmless garbage
            # (unreferenced objects), never a dangling manifest entry.
            self._segment_entries = self._segment_entries[len(pruned):]
        yield from self._ship_manifest()
        for entry in pruned:
            try:
                yield from self.grid.delete(entry["key"])
            except GridUnavailable:
                self.prune_failures += 1
                continue
            self.segments_pruned += 1
            self.bytes_reclaimed += entry["nbytes"]
            self._event("prune-segment", entry["seq"])

    def _prunable_segments(self):
        """The manifest-prefix of sealed segments a snapshot fully covers.

        A segment is covered when its ``last_lsn`` is at or below the
        newest snapshot's ``as_of_lsn``: every transaction it holds is
        already folded into that snapshot's state, so restores (and
        PITR targets at or after the snapshot) never need it.  Pruning
        is prefix-only, which keeps the retained segment chain
        LSN-contiguous for :meth:`~repro.dr.restore.Archive.verify`;
        ``keep_segments`` retains that many newest covered segments as
        extra PITR headroom below the snapshot boundary.
        """
        if not self._snapshot_entries:
            return []
        as_of = max(entry["as_of_lsn"] for entry in self._snapshot_entries)
        covered = 0
        for entry in self._segment_entries:
            if entry["last_lsn"] > as_of:
                break
            covered += 1
        covered = max(0, covered - self.keep_segments)
        return self._segment_entries[:covered]

    def _ship_manifest(self):
        payload = self.manifest_payload()
        yield from self._upload_verified(
            manifest_key(self.node), payload, payload_nbytes(payload),
            payload_checksum(payload), "ship-manifest",
            len(self._segment_entries),
        )

    def _upload_verified(self, key, payload, nbytes, checksum, action, seq):
        """PUT + readback-verify + retry until the landed checksum matches."""
        tracer = self.engine.tracer
        token = None
        if tracer.enabled:
            token = tracer.begin(self.track, action, key=key, seq=seq,
                                 nbytes=nbytes)
        attempts = 0
        while True:
            attempts += 1
            try:
                yield from self.grid.put(key, payload, nbytes, checksum)
                stored = yield from self.grid.get(key)
            except (GridUnavailable, KeyError):
                self.upload_retries += 1
                yield self.engine.timeout(self.retry_ns)
                continue
            if stored.checksum == checksum:
                break
            # Torn upload: the landed bytes differ from what we meant to
            # write.  Re-ship; the readback is the only way to know.
            self.torn_detected += 1
            yield self.engine.timeout(self.retry_ns)
        if token is not None:
            tracer.end(token, attempts=attempts)

    def _note_lag(self):
        tracer = self.engine.tracer
        if tracer.enabled:
            tracer.counter(self.track, "archive-lag-lsn",
                           self.archive_lag_lsn)

    def _event(self, action, seq):
        self.events.append({
            "time_ns": self.engine.now, "action": action, "seq": seq,
        })

    def stats(self):
        return {
            "segments_shipped": self.segments_shipped,
            "snapshots_taken": self.snapshots_taken,
            "bytes_shipped": self.bytes_shipped,
            "archived_lsn": self.archived_lsn,
            "archive_lag_lsn": self.archive_lag_lsn,
            "upload_retries": self.upload_retries,
            "torn_detected": self.torn_detected,
            "dropped_segments": self.dropped_segments,
            "segments_pruned": self.segments_pruned,
            "bytes_reclaimed": self.bytes_reclaimed,
            "prune_failures": self.prune_failures,
            "scan_errors": self.scan_errors,
            "pages_read": self._scanner.pages_read,
        }
