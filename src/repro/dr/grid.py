"""The remote archive grid: a latency/fault-modeled object store.

One :class:`RemoteGrid` lives under the same sim engine as the fleet it
backs up — transfers take simulated time (a flat per-request latency
plus payload bytes over the grid's bandwidth), partitions make every
request fail after its timeout, and an armed torn upload persists only a
prefix of the object (the crash-mid-PUT failure mode S3-style stores
paper over with checksums, which is exactly how the archiver catches
it here).

Objects are structured payloads (plain JSON-able dicts), stored with the
checksum of what *actually landed*.  A well-behaved client verifies its
upload by reading the object back and comparing checksums against what
it meant to write; :class:`~repro.dr.archive.Archiver` does.

Grid faults arrive through the standard :class:`~repro.faults.plan.FaultPlan`
machinery: :class:`GridFaultDriver` walks a plan's grid-sited specs
(``site == "grid"``) the same way the chain's ChaosInjector walks
server/bridge specs, so DR schedules shrink and replay like every other
check family.
"""

from repro.faults.plan import GRID_SITED_KINDS, FaultKind


class GridUnavailable(Exception):
    """The grid is partitioned away; the request timed out."""


class GridObject:
    """One stored object: the landed payload plus its landed checksum."""

    __slots__ = ("key", "payload", "nbytes", "checksum", "torn")

    def __init__(self, key, payload, nbytes, checksum, torn=False):
        self.key = key
        self.payload = payload
        self.nbytes = nbytes
        self.checksum = checksum
        self.torn = torn


class RemoteGrid:
    """A remote object store with modeled latency, partitions, torn PUTs.

    ``base_latency_ns`` charges every request (the WAN round trip);
    payload bytes move at ``bandwidth_bytes_per_ns``.  While
    ``partitioned``, requests burn ``timeout_ns`` and raise
    :class:`GridUnavailable`.  ``arm_torn_uploads(n)`` makes the next
    ``n`` PUTs land torn: the stored object keeps only a prefix of the
    payload, so its landed checksum differs from the client's intended
    one.  All methods that move bytes are generators — drive them with
    ``yield from`` inside a sim process.
    """

    def __init__(self, engine, name="grid", base_latency_ns=20_000.0,
                 bandwidth_bytes_per_ns=1.0, timeout_ns=50_000.0):
        self.engine = engine
        self.name = name
        self.base_latency_ns = float(base_latency_ns)
        self.bandwidth_bytes_per_ns = float(bandwidth_bytes_per_ns)
        self.timeout_ns = float(timeout_ns)
        self.objects = {}  # key -> GridObject
        self.partitioned = False
        self._armed_torn = 0
        self.puts = 0
        self.gets = 0
        self.deletes = 0
        self.bytes_reclaimed = 0
        self.failed_requests = 0
        self.torn_uploads = 0
        self.bytes_in = 0
        self.bytes_out = 0

    # -- fault surface -------------------------------------------------------------

    def sever(self):
        """Partition the grid away (every request now times out)."""
        self.partitioned = True
        self._instant("grid-sever")

    def heal(self):
        self.partitioned = False
        self._instant("grid-heal")

    def arm_torn_uploads(self, count=1):
        """The next ``count`` PUTs land torn (prefix-only, bad checksum)."""
        self._armed_torn += int(count)
        self._instant("grid-arm-torn", count=int(count))

    # -- the wire ------------------------------------------------------------------

    def _transfer_ns(self, nbytes):
        return self.base_latency_ns + nbytes / self.bandwidth_bytes_per_ns

    def put(self, key, payload, nbytes, checksum):
        """Store ``payload`` under ``key``; returns the landed checksum.

        ``checksum`` is what the *client* computed over the payload it
        intended to store.  A torn upload lands a truncated payload with
        a different landed checksum — the client only learns by reading
        back (see :meth:`get`).
        """
        if self.partitioned:
            self.failed_requests += 1
            yield self.engine.timeout(self.timeout_ns)
            raise GridUnavailable(f"PUT {key}: grid partitioned")
        yield self.engine.timeout(self._transfer_ns(nbytes))
        if self.partitioned:
            # The partition landed mid-flight: the bytes are gone.
            self.failed_requests += 1
            raise GridUnavailable(f"PUT {key}: grid partitioned mid-flight")
        self.puts += 1
        self.bytes_in += nbytes
        if self._armed_torn > 0:
            self._armed_torn -= 1
            self.torn_uploads += 1
            torn_payload = _truncate_payload(payload)
            from repro.dr.archive import payload_checksum

            landed = payload_checksum(torn_payload)
            self.objects[key] = GridObject(
                key, torn_payload, max(1, nbytes // 2), landed, torn=True,
            )
            self._instant("put-torn", key=key, nbytes=nbytes)
            return landed
        self.objects[key] = GridObject(key, payload, nbytes, checksum)
        self._instant("put", key=key, nbytes=nbytes)
        return checksum

    def get(self, key):
        """Fetch the object under ``key``; returns the :class:`GridObject`.

        Raises :class:`KeyError` (after the round trip) for a missing
        key, :class:`GridUnavailable` while partitioned.
        """
        if self.partitioned:
            self.failed_requests += 1
            yield self.engine.timeout(self.timeout_ns)
            raise GridUnavailable(f"GET {key}: grid partitioned")
        stored = self.objects.get(key)
        nbytes = stored.nbytes if stored is not None else 0
        yield self.engine.timeout(self._transfer_ns(nbytes))
        if stored is None:
            self.failed_requests += 1
            raise KeyError(f"grid object not found: {key!r}")
        self.gets += 1
        self.bytes_out += stored.nbytes
        return stored

    def delete(self, key):
        """Remove the object under ``key``; returns True if it existed.

        Idempotent, S3-style: deleting a missing key is a successful
        no-op (the retention loop may retry after a partition without
        tracking which deletes landed).  Charges the base round trip
        only — deletes move no payload bytes.
        """
        if self.partitioned:
            self.failed_requests += 1
            yield self.engine.timeout(self.timeout_ns)
            raise GridUnavailable(f"DELETE {key}: grid partitioned")
        yield self.engine.timeout(self.base_latency_ns)
        stored = self.objects.pop(key, None)
        if stored is None:
            return False
        self.deletes += 1
        self.bytes_reclaimed += stored.nbytes
        self._instant("delete", key=key, nbytes=stored.nbytes)
        return True

    def list_keys(self, prefix=""):
        """Stored keys under ``prefix`` (a metadata op; no simulated time)."""
        return sorted(key for key in self.objects if key.startswith(prefix))

    def stats(self):
        return {
            "objects": len(self.objects),
            "puts": self.puts,
            "gets": self.gets,
            "deletes": self.deletes,
            "bytes_reclaimed": self.bytes_reclaimed,
            "failed_requests": self.failed_requests,
            "torn_uploads": self.torn_uploads,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
        }

    def _instant(self, action, **detail):
        tracer = self.engine.tracer
        if tracer.enabled:
            tracer.instant(self.name, action, **detail)


def _truncate_payload(payload):
    """What a torn PUT leaves behind: a structural prefix of the payload.

    Record-bearing payloads (WAL segments) lose the tail half of their
    records; manifests lose the tail half of their entry lists; snapshots
    lose the tail half of every table's rows; anything else degrades to
    an empty dict.  The point is only that the landed object is
    *plausible but wrong* — detected by checksum, never by schema errors.
    """
    if isinstance(payload, dict):
        torn = dict(payload)
        for field in ("records", "rows", "segments", "snapshots"):
            items = torn.get(field)
            if isinstance(items, list) and items:
                torn[field] = items[:len(items) // 2]
                return torn
        tables = torn.get("tables")
        if isinstance(tables, dict):
            torn["tables"] = {
                name: rows[:len(rows) // 2]
                if isinstance(rows, list) else rows
                for name, rows in tables.items()
            }
        return torn
    return {}


class GridFaultDriver:
    """Walk a plan's grid-sited specs against one :class:`RemoteGrid`.

    The DR analogue of :class:`~repro.faults.injector.ChaosInjector`:
    sleeps to each spec's time, applies it, and appends a plain-dict
    entry to ``fault_log`` so determinism tests can diff byte-for-byte.
    Non-grid specs are rejected — the caller routes those to the chain
    injectors.
    """

    def __init__(self, engine, grid, plan):
        for spec in plan:
            if spec.kind not in GRID_SITED_KINDS:
                raise ValueError(
                    f"GridFaultDriver got non-grid fault {spec!r}"
                )
        self.engine = engine
        self.grid = grid
        self.plan = plan
        self.fault_log = []

    def start(self):
        return self.engine.process(self._run(), name="grid-fault-driver")

    def _run(self):
        for spec in self.plan:
            delay = spec.time_ns - self.engine.now
            if delay > 0:
                yield self.engine.timeout(delay)
            self._apply(spec)

    def _apply(self, spec):
        if spec.kind is FaultKind.GRID_DOWN:
            self.grid.sever()
        elif spec.kind is FaultKind.GRID_UP:
            self.grid.heal()
        elif spec.kind is FaultKind.GRID_TORN_UPLOAD:
            self.grid.arm_torn_uploads(spec.params.get("count", 1))
        self.fault_log.append({
            "time_ns": self.engine.now,
            "site": spec.site,
            "kind": spec.kind.value,
            "params": dict(spec.params),
        })
