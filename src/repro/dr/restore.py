"""Restore: rebuild node state from archived snapshot + segment replay.

An :class:`Archive` is one node's recovered view of the grid: the
manifest plus every object it names.  Two ways to get one:

* :meth:`Archive.load_sync` — read the grid's stored objects directly,
  without simulated transfer time.  The checker's path: it audits
  *correctness* of what landed, not restore latency.
* :func:`fetch_archive` — a sim process that pays the grid's latency
  and bandwidth for every object.  The bench's path: restore time is
  the deliverable it compares against full chain resync.

Both verify the same way (:meth:`Archive.verify`): every manifest entry
must have its object present, the landed checksum must match what the
archiver intended, and consecutive segments must be LSN-contiguous — a
silently dropped segment shows up as a missing object *and* an LSN gap.

Restoration folds the newest usable snapshot with commit-gated segment
replay (:func:`restore_state`).  Point-in-time recovery is the same fold
with ``upto_lsn`` set to a committed transaction's COMMIT LSN: segments
are retained from the start of history, so any committed boundary is
reachable.  Replay is idempotent — records are deduplicated by LSN and
re-installing a snapshot-covered transaction writes the same value.
"""

from repro.db.log_record import RecordKind
from repro.dr.archive import (
    decode_value,
    manifest_key,
    payload_checksum,
    record_from_dict,
)
from repro.dr.grid import GridUnavailable


class RestoreError(Exception):
    """The archive cannot produce the requested state."""


class Archive:
    """One node's archive: manifest + fetched objects, ready to verify."""

    def __init__(self, node, manifest, objects):
        self.node = node
        self.manifest = manifest  # payload dict, or None (nothing archived)
        self.objects = objects  # key -> (payload, landed_checksum)

    @classmethod
    def load_sync(cls, grid, node):
        """Read the node's archive straight off the grid's stored objects.

        No simulated time passes — this is the checker's autopsy view of
        what the archiver actually landed.  A missing manifest is a
        legitimate early-crash state (nothing was ever archived) and
        yields an empty archive, not an error.
        """
        stored = grid.objects.get(manifest_key(node))
        manifest = stored.payload if stored is not None else None
        objects = {}
        for entry in _manifest_entries(manifest):
            obj = grid.objects.get(entry["key"])
            if obj is not None:
                objects[entry["key"]] = (obj.payload, obj.checksum)
        return cls(node, manifest, objects)

    # -- verification --------------------------------------------------------------

    def verify(self):
        """Every problem standing between this archive and a clean restore."""
        problems = []
        if self.manifest is None:
            return problems
        for entry in _manifest_entries(self.manifest):
            key = entry["key"]
            got = self.objects.get(key)
            if got is None:
                problems.append(
                    f"missing object {key}: manifest claims "
                    f"{entry['nbytes']} bytes (checksum {entry['checksum'][:12]})"
                )
                continue
            payload, landed = got
            if landed != entry["checksum"]:
                problems.append(
                    f"checksum mismatch on {key}: landed {landed[:12]} != "
                    f"manifest {entry['checksum'][:12]} (torn upload persisted)"
                )
            elif payload_checksum(payload) != landed:
                problems.append(
                    f"corrupt object {key}: landed payload does not match "
                    f"its own landed checksum"
                )
        segments = self.manifest.get("segments", [])
        for prev, entry in zip(segments, segments[1:]):
            if entry["first_lsn"] != prev["last_lsn"] + 1:
                problems.append(
                    f"lsn gap: segment {prev['seq']} ends at "
                    f"{prev['last_lsn']} but segment {entry['seq']} starts "
                    f"at {entry['first_lsn']}"
                )
        return problems

    # -- contents ------------------------------------------------------------------

    def segment_records(self):
        """Archived WAL records from intact segments, deduped, LSN order."""
        by_lsn = {}
        if self.manifest is None:
            return []
        for entry in self.manifest.get("segments", []):
            got = self.objects.get(entry["key"])
            if got is None:
                continue
            payload, landed = got
            if landed != entry["checksum"]:
                continue  # torn object: unusable, verify() reported it
            for data in payload.get("records", []):
                record = record_from_dict(data)
                by_lsn[record.lsn] = record
        return [by_lsn[lsn] for lsn in sorted(by_lsn)]

    def commit_boundaries(self):
        """``(commit_lsn, txn_id)`` for every archived COMMIT, LSN order."""
        return [
            (record.lsn, record.txn_id)
            for record in self.segment_records()
            if record.kind is RecordKind.COMMIT
        ]

    def snapshots(self):
        """Usable ``(entry, payload)`` snapshot pairs, oldest first."""
        pairs = []
        if self.manifest is None:
            return pairs
        for entry in self.manifest.get("snapshots", []):
            got = self.objects.get(entry["key"])
            if got is None:
                continue
            payload, landed = got
            if landed != entry["checksum"]:
                continue
            pairs.append((entry, payload))
        return pairs

    def archived_frontier_lsn(self):
        """Highest LSN the manifest claims archived (0 when empty)."""
        if self.manifest is None:
            return 0
        segments = self.manifest.get("segments", [])
        return segments[-1]["last_lsn"] if segments else 0


def _manifest_entries(manifest):
    if manifest is None:
        return []
    return list(manifest.get("segments", [])) + list(
        manifest.get("snapshots", [])
    )


def fetch_archive(grid, node):
    """Timed archive fetch: a sim process paying grid latency per object.

    Returns an :class:`Archive`.  Propagates :class:`GridUnavailable`
    when the grid is partitioned; a missing manifest yields an empty
    archive (nothing was ever shipped).
    """
    try:
        stored = yield from grid.get(manifest_key(node))
    except KeyError:
        return Archive(node, None, {})
    manifest = stored.payload
    objects = {}
    for entry in _manifest_entries(manifest):
        try:
            obj = yield from grid.get(entry["key"])
        except KeyError:
            continue  # verify() reports the hole
        objects[entry["key"]] = (obj.payload, obj.checksum)
    return Archive(node, manifest, objects)


# -- state reconstruction ------------------------------------------------------------


def restore_state(archive, upto_lsn=None):
    """Fold snapshot + commit-gated replay into ``{table: {key: value}}``.

    ``upto_lsn`` is the PITR knob: only transactions whose COMMIT LSN is
    at or below it are applied, and only snapshots cut at or below it
    are eligible bases — so the result is exactly the committed state at
    that transaction boundary.  ``None`` restores to the archive's full
    frontier.
    """
    base_lsn = 0
    state = {}
    versions = {}  # (table, key) -> commit lsn of the installed value
    best = None
    for entry, payload in archive.snapshots():
        if upto_lsn is not None and payload["as_of_lsn"] > upto_lsn:
            continue
        if best is None or payload["as_of_lsn"] >= best["as_of_lsn"]:
            best = payload
    if best is not None:
        base_lsn = best["as_of_lsn"]
        for table_name, rows in best["tables"].items():
            table_state = state.setdefault(table_name, {})
            for encoded_key, encoded_value, version in rows:
                key = decode_value(encoded_key)
                table_state[key] = decode_value(encoded_value)
                versions[(table_name, key)] = version
    records = archive.segment_records()
    commit_lsn_of = {
        record.txn_id: record.lsn
        for record in records
        if record.kind is RecordKind.COMMIT
        and (upto_lsn is None or record.lsn <= upto_lsn)
    }
    for record in records:  # already LSN-ordered
        if not record.is_data():
            continue
        commit_lsn = commit_lsn_of.get(record.txn_id)
        if commit_lsn is None or commit_lsn <= base_lsn:
            continue  # uncommitted (at this point in time) or in snapshot
        table_state = state.setdefault(record.table, {})
        if record.kind is RecordKind.DELETE:
            table_state.pop(record.key, None)
        else:
            table_state[record.key] = record.value
        versions[(record.table, record.key)] = commit_lsn
    return state, versions


def apply_to_database(database, archive, upto_lsn=None):
    """Install a restored state into a live ``Database`` (tables created
    as discovered).  Returns the number of rows installed."""
    state, versions = restore_state(archive, upto_lsn=upto_lsn)
    installed = 0
    for table_name, rows in sorted(state.items()):
        try:
            table = database.table(table_name)
        except KeyError:
            table = database.create_table(table_name)
        for key, value in rows.items():
            table.install(key, value, versions.get((table_name, key), 0))
            installed += 1
    return installed


def rebuild_fleet(grid, config_factory, node_names, shard_owners=None,
                  **fleet_kw):
    """Stand up a fresh fleet from the archive after total loss.

    Builds a new engine and :class:`~repro.cluster.fleet.Fleet` with one
    node per entry of ``node_names``, restores each node's database from
    its archive (snapshot + full segment replay), and re-places shards
    per ``shard_owners`` (``{shard_id: node_name}``).  Restored tables
    already exist, so shard re-attachment never re-runs bootstrap over
    recovered rows.  Returns ``(engine, fleet, restored_rows)``.
    """
    from repro.cluster.fleet import Fleet
    from repro.sim import Engine

    engine = Engine()
    fleet = Fleet(engine, config_factory, **fleet_kw)
    restored = 0
    for name in node_names:
        node = fleet.add_node(name)
        archive = Archive.load_sync(grid, name)
        problems = archive.verify()
        if problems:
            raise RestoreError(
                f"archive for {name} failed verification: {problems[:3]}"
            )
        restored += apply_to_database(node.database, archive)
    for shard_id, owner in sorted((shard_owners or {}).items()):
        fleet.create_shard(shard_id, node=owner)
    return engine, fleet, restored


def reseed_node_from_archive(engine, grid, node, database):
    """Timed single-node restore: fetch, verify, apply.  A sim process.

    Returns ``(archive, rows_installed)``; the elapsed sim time around
    this call is the restore latency the bench compares against a full
    chain resync.  Retries through partitions are the caller's policy —
    this raises :class:`GridUnavailable` straight through.
    """
    archive = yield from fetch_archive(grid, node)
    problems = archive.verify()
    if problems:
        raise RestoreError(
            f"archive for {node} failed verification: {problems[:3]}"
        )
    rows = apply_to_database(database, archive)
    return archive, rows


__all__ = [
    "Archive",
    "GridUnavailable",
    "RestoreError",
    "apply_to_database",
    "fetch_archive",
    "rebuild_fleet",
    "reseed_node_from_archive",
    "restore_state",
]
