"""Disaster recovery: fleet snapshots, WAL archival, point-in-time restore.

The chain replication tier (``repro/cluster``) keeps acknowledged
transactions alive through single-node failures; this tier keeps them
alive through *total fleet loss*.  Three pieces:

* :mod:`repro.dr.grid` — a latency/fault-modeled remote object store
  living under the same sim engine (partitions and torn uploads arrive
  via :class:`~repro.faults.plan.FaultPlan` like every other fault);
* :mod:`repro.dr.archive` — per-node archivers that tail the primary's
  committed WAL off the destage ring (the same traced readback path the
  rebalancer uses — no side channel), seal byte-bounded segments, take
  periodic snapshots, and ship both with byte-stable manifests;
* :mod:`repro.dr.restore` — rebuild a node (or a whole fleet) from
  snapshot + segment replay, including point-in-time recovery to any
  committed transaction boundary.

Verified by ``python -m repro.check --dr`` (restore-after-total-loss and
archive-lag schedule families with a PITR oracle against the
ReferenceModel) and measured by ``python -m repro.bench dr``.
See RECOVERY.md for the design.
"""

from repro.dr.archive import (
    Archiver,
    canonical_json,
    decode_value,
    encode_value,
    payload_checksum,
    record_from_dict,
    record_to_dict,
)
from repro.dr.grid import GridFaultDriver, GridUnavailable, RemoteGrid
from repro.dr.restore import (
    Archive,
    RestoreError,
    fetch_archive,
    rebuild_fleet,
    restore_state,
)

__all__ = [
    "Archive",
    "Archiver",
    "GridFaultDriver",
    "GridUnavailable",
    "RemoteGrid",
    "RestoreError",
    "canonical_json",
    "decode_value",
    "encode_value",
    "fetch_archive",
    "payload_checksum",
    "rebuild_fleet",
    "record_from_dict",
    "record_to_dict",
    "restore_state",
]
