"""Unit constants and conversion helpers.

Simulated time is measured in **nanoseconds** (floats), sizes in **bytes**
(ints), and bandwidths in **bytes per nanosecond** (floats; 1 B/ns == 1 GB/s).
Keeping a single convention across the codebase avoids an entire class of
unit bugs; these names make call sites read naturally::

    yield engine.timeout(5 * MICROS)
    link = PcieLink(engine, bandwidth=gb_per_s(2.0))
"""

# --- sizes (bytes) -----------------------------------------------------------
# Decimal units, as used for device bandwidth specs.
KB = 1_000
MB = 1_000_000
GB = 1_000_000_000

# Binary units, as used for memory/page/queue sizes.
KIB = 1_024
MIB = 1_024 * 1_024
GIB = 1_024 * 1_024 * 1_024

# --- time (nanoseconds) ------------------------------------------------------
NANOS = 1.0
MICROS = 1_000.0
MILLIS = 1_000_000.0
SECONDS = 1_000_000_000.0


def gb_per_s(value):
    """Convert a bandwidth in GB/s into bytes per nanosecond.

    The two units happen to be numerically identical (1 GB/s = 1e9 B /
    1e9 ns); the function exists so call sites document their intent.
    """
    return float(value)


def per_second(count, elapsed_ns):
    """Convert an event count over ``elapsed_ns`` nanoseconds into a rate/s."""
    if elapsed_ns <= 0:
        return 0.0
    return count * SECONDS / elapsed_ns
