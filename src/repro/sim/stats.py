"""Measurement utilities: percentiles, candlesticks, rates, counters.

The benchmark harness reports the same statistics the paper plots: average
transaction latency/throughput (Fig. 9, 11), normalized throughput (Fig. 10),
bandwidth shares (Fig. 12), and latency candlesticks plus bandwidth
percentages (Fig. 13).
"""

import math


def percentile(samples, fraction, presorted=False):
    """Linear-interpolated percentile of ``samples`` (fraction in [0, 1]).

    Pass ``presorted=True`` when ``samples`` is already sorted to skip the
    O(n log n) copy — callers that take several percentiles of one sample
    set (candlesticks, recorders) sort once and reuse.
    """
    if not samples:
        raise ValueError("percentile of an empty sample set")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction {fraction} outside [0, 1]")
    ordered = samples if presorted else sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    position = fraction * (len(ordered) - 1)
    low = math.floor(position)
    high = math.ceil(position)
    if low == high or ordered[low] == ordered[high]:
        return ordered[low]
    weight = position - low
    return ordered[low] * (1.0 - weight) + ordered[high] * weight


class Candlestick:
    """Five-number summary (min, p25, median, p75, max) of a sample set.

    This is the box-with-whiskers shape Fig. 13 draws for shadow-counter
    update latencies.
    """

    __slots__ = ("low", "q1", "median", "q3", "high", "count")

    def __init__(self, samples, presorted=False):
        if not samples:
            raise ValueError("candlestick of an empty sample set")
        # One sort serves all five numbers (the seed re-sorted per
        # percentile — four sorts per candlestick on Fig. 13's path).
        ordered = samples if presorted else sorted(samples)
        self.count = len(ordered)
        self.low = ordered[0]
        self.q1 = percentile(ordered, 0.25, presorted=True)
        self.median = percentile(ordered, 0.50, presorted=True)
        self.q3 = percentile(ordered, 0.75, presorted=True)
        self.high = ordered[-1]

    @property
    def spread(self):
        """Max minus min — the 'variance band' the paper discusses."""
        return self.high - self.low

    def __repr__(self):
        return (
            f"Candlestick(low={self.low:.1f}, q1={self.q1:.1f}, "
            f"median={self.median:.1f}, q3={self.q3:.1f}, "
            f"high={self.high:.1f}, n={self.count})"
        )


class LatencyRecorder:
    """Collects latency samples and summarizes them.

    All times are nanoseconds, matching the engine clock.
    """

    def __init__(self):
        self.samples = []
        self._ordered = None  # cached sorted view; None when stale

    def record(self, latency_ns):
        if latency_ns < 0:
            raise ValueError("negative latency recorded")
        self.samples.append(latency_ns)
        self._ordered = None

    def __len__(self):
        return len(self.samples)

    @property
    def mean(self):
        if not self.samples:
            return 0.0
        return sum(self.samples) / len(self.samples)

    def _sorted_samples(self):
        # The length guard also invalidates after direct `samples` appends.
        if self._ordered is None or len(self._ordered) != len(self.samples):
            self._ordered = sorted(self.samples)
        return self._ordered

    def quantile(self, fraction):
        return percentile(self._sorted_samples(), fraction, presorted=True)

    def candlestick(self):
        return Candlestick(self._sorted_samples(), presorted=True)


class RateMeter:
    """Counts discrete completions and converts them to a rate per second."""

    def __init__(self, engine):
        self.engine = engine
        self.count = 0
        self.bytes = 0
        self._started_at = engine.now

    def tick(self, nbytes=0):
        self.count += 1
        self.bytes += nbytes

    def reset(self):
        self.count = 0
        self.bytes = 0
        self._started_at = self.engine.now

    @property
    def elapsed_ns(self):
        return self.engine.now - self._started_at

    def per_second(self):
        """Completions per second of simulated time."""
        if self.elapsed_ns <= 0:
            return 0.0
        return self.count * 1e9 / self.elapsed_ns

    def bytes_per_second(self):
        if self.elapsed_ns <= 0:
            return 0.0
        return self.bytes * 1e9 / self.elapsed_ns


class Counter:
    """A monotonically non-decreasing byte counter with change history.

    This is the *credit counter* abstraction (Section 4.1 of the paper): the
    device increments it as bytes become persistent; the host polls it.  The
    monotonicity invariant is enforced here so every user of the class gets
    it checked for free.
    """

    def __init__(self, engine, name="counter"):
        self.engine = engine
        self.name = name
        self.value = 0
        self.last_advanced_at = engine.now

    def advance(self, amount):
        """Add ``amount`` bytes; rejects regressions."""
        if amount < 0:
            raise ValueError(f"{self.name}: counters never regress")
        if amount:
            self.value += amount
            self.last_advanced_at = self.engine.now
        return self.value

    def set_at_least(self, target):
        """Raise the counter to ``target`` if it is below (idempotent)."""
        if target > self.value:
            self.value = target
            self.last_advanced_at = self.engine.now
        return self.value

    def __repr__(self):
        return f"Counter({self.name}={self.value})"
