"""The discrete-event engine: clock, two-tier event queue, generator processes.

The programming model follows the classic process-interaction style.  A
*process* is a generator that yields :class:`Event` objects; the engine
suspends the generator until the event triggers, then resumes it with the
event's value.  Example::

    def writer(engine, device):
        yield engine.timeout(100.0)           # wait 100 ns
        done = device.write(b"log record")    # returns an Event
        yield done                            # wait for the device
        print("persisted at", engine.now)

    engine = Engine()
    engine.process(writer(engine, device))
    engine.run()

Scheduling is two-tier.  Events triggered at the *current* instant — by
``succeed()``/``fail()``, process resumes, and zero-delay timeouts — go on a
plain FIFO deque (the *immediate queue*) and never touch the heap; only
future-dated timeouts pay for heap ordering.  Same-instant triggers dominate
real workloads (every device completion fans out through chains of them), so
this keeps the hot path at deque-append/popleft cost with no tuple churn and
no sequence counter.

Global FIFO order at one instant is preserved exactly: a heap entry whose
time equals the current instant was necessarily pushed at an *earlier*
instant (the heap only ever holds strictly-future timeouts), so it predates
everything in the immediate queue and the run loop drains such entries first.

Timeout cancellation is lazy: :meth:`Event.cancel` marks the event and the
run loop discards it at pop time, so losing a timeout-vs-completion race
costs O(1) instead of a heap rebuild.
"""

import heapq
from collections import deque
from itertools import count


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel (not for modeled faults)."""


class NullTracer:
    """The disabled-observability default: every hook is a no-op.

    Model code calls ``engine.tracer.begin(...)`` & friends unconditionally
    (or, on per-chunk hot paths, behind an ``if tracer.enabled`` guard);
    with this object installed the cost is one attribute load and — at
    most — one empty method call, so simulations without tracing pay
    essentially nothing.  The real recorder lives in :mod:`repro.obs`;
    keeping the null object here means the kernel never imports it.
    """

    enabled = False
    __slots__ = ()

    def begin(self, track, name, flow=None, **args):
        return None

    def end(self, token, **args):
        pass

    def set_flow(self, token, flow):
        pass

    def instant(self, track, name, flow=None, **args):
        pass

    def counter(self, track, name, value):
        pass


NULL_TRACER = NullTracer()

# Process-wide tracer factory: when installed (see ``repro.obs.capture``),
# every Engine constructed afterwards gets ``factory(engine)`` as its
# tracer — which is how ``--trace`` reaches engines that benchmarks build
# internally.  ``None`` means every new engine gets the shared NULL_TRACER.
_tracer_factory = None


def set_tracer_factory(factory):
    """Install (or, with ``None``, remove) the process-wide tracer factory."""
    global _tracer_factory
    _tracer_factory = factory


def tracer_factory():
    return _tracer_factory


class Event:
    """A one-shot occurrence that processes can wait on.

    An event goes through at most one transition: *pending* -> *triggered*.
    Once triggered it carries a ``value`` (or an exception to re-raise in
    waiters) and invokes its callbacks in registration order.
    """

    __slots__ = (
        "engine",
        "callbacks",
        "_value",
        "_exception",
        "triggered",
        "_processed",
        "_cancelled",
        "_defused",
    )

    def __init__(self, engine):
        self.engine = engine
        self.callbacks = []
        self._value = None
        self._exception = None
        self.triggered = False
        # True once the engine has popped the event and run its callbacks;
        # a `then()` registered after that point runs at the current instant.
        self._processed = False
        # Lazily-cancelled events are discarded at pop time instead of being
        # dug out of the queues.
        self._cancelled = False
        # A defused event's failure no longer counts as unhandled (set on
        # the losers of an AnyOf race when their waiter detaches).
        self._defused = False

    @property
    def value(self):
        if not self.triggered:
            raise SimulationError("event value read before trigger")
        if self._exception is not None:
            raise self._exception
        return self._value

    def succeed(self, value=None):
        """Trigger the event immediately with ``value``.

        On a cancelled event this is a no-op, so the losing side of a
        cancellation race does not need its own guard.
        """
        if self._cancelled:
            return self
        if self.triggered:
            raise SimulationError("event triggered twice")
        self.triggered = True
        self._value = value
        self.engine._immediate.append(self)
        return self

    def fail(self, exception):
        """Trigger the event with an exception to re-raise in waiters."""
        if self._cancelled:
            return self
        if self.triggered:
            raise SimulationError("event triggered twice")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self.triggered = True
        self._exception = exception
        self.engine._immediate.append(self)
        return self

    def cancel(self):
        """Withdraw the event: its callbacks will never run.

        Pending events stop accepting ``succeed()``/``fail()``; already
        triggered but not yet processed events are dropped lazily when the
        run loop reaches them (a cancelled timeout costs O(1), no heap
        surgery).  Cancelling an already-processed event is a no-op.  The
        caller is responsible for not leaving a process waiting forever on
        a cancelled event — cancel only events whose outcome nobody awaits
        anymore, e.g. the loser of a timeout-vs-completion race.
        """
        if self._processed:
            return self
        self._cancelled = True
        self.callbacks.clear()
        return self

    @property
    def cancelled(self):
        return self._cancelled

    def then(self, callback):
        """Register ``callback(event)`` to run when the event triggers."""
        if self._cancelled:
            return self
        if self._processed:
            # Callbacks already ran: run this one at the current instant via
            # the immediate queue so ordering relative to same-time
            # callbacks stays FIFO.
            holder = Event(self.engine)
            holder.callbacks.append(lambda _ev: callback(self))
            holder.succeed()
        else:
            self.callbacks.append(callback)
        return self


class Timeout(Event):
    """An event that triggers ``delay`` nanoseconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, engine, delay, value=None):
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        super().__init__(engine)
        self.delay = delay
        self.triggered = True
        self._value = value
        if delay == 0:
            # Zero-delay timeouts fire at the current instant: fast path.
            engine._immediate.append(self)
        else:
            engine._push_at(engine._now + delay, self)


class Process(Event):
    """A running generator; itself an event that fires when the generator ends.

    The event value is the generator's return value.  An uncaught exception
    inside the generator propagates out of :meth:`Engine.run` (errors should
    never pass silently in a simulation — they indicate a modeling bug).
    """

    __slots__ = ("generator", "name")

    def __init__(self, engine, generator, name=None):
        super().__init__(engine)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        bootstrap = Event(engine)
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed()

    def _resume(self, event):
        """Advance the generator with the triggering event's outcome."""
        try:
            if event is None:
                target = self.generator.send(None)
            elif event._exception is not None:
                target = self.generator.throw(event._exception)
            else:
                target = self.generator.send(event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except SimulationError:
            raise
        except BaseException as error:  # modeled fault escaping the process
            # Fail the process event so a waiting parent re-raises it at its
            # own yield.  If nobody waits, the engine raises at processing
            # time — errors never pass silently.
            self.fail(error)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}, expected an Event"
            )
        target.then(self._resume)


class AllOf(Event):
    """Triggers once every event in ``events`` has triggered.

    Value is the list of individual event values, in the given order.
    """

    __slots__ = ("_pending", "_events")

    def __init__(self, engine, events):
        super().__init__(engine)
        self._events = list(events)
        self._pending = len(self._events)
        if self._pending == 0:
            self.succeed([])
            return
        for event in self._events:
            event.then(self._on_child)

    def _on_child(self, _event):
        self._pending -= 1
        if self._pending == 0 and not self.triggered:
            self.succeed([child.value for child in self._events])


class AnyOf(Event):
    """Triggers when the first of ``events`` triggers; value is that event.

    When the first child fires, the remaining children are *detached*: the
    AnyOf's callback is removed from them and they are defused, so losing
    events carry no dead callback work and a loser that later fails is not
    treated as an unhandled fault (the race was already decided).
    """

    __slots__ = ("_children",)

    def __init__(self, engine, events):
        super().__init__(engine)
        self._children = list(events)
        for event in self._children:
            event.then(self._on_child)

    def _on_child(self, event):
        if self.triggered:
            return
        self.succeed(event)
        on_child = self._on_child
        for child in self._children:
            if child is event:
                continue
            child._defused = True
            try:
                child.callbacks.remove(on_child)
            except ValueError:
                # Already processed (same-instant tie) or cancelled; either
                # way there is nothing left to detach.
                pass
        self._children = ()


class Engine:
    """Owns the simulated clock and runs events in time order.

    Determinism: same-instant events fire in strict FIFO trigger order (the
    immediate deque preserves it directly; heap ties break on a
    monotonically increasing sequence number), so a run is exactly
    reproducible.
    """

    def __init__(self):
        self._now = 0.0
        # Tier 1: events triggered at the current instant, FIFO.
        self._immediate = deque()
        # Tier 2: strictly-future timeouts, ordered by (time, sequence).
        self._heap = []
        self._sequence = count()
        # Observability: the shared no-op tracer unless a capture session
        # is active (one assignment at construction; the run loop itself
        # never consults it, so tracing cannot tax the event hot path).
        factory = _tracer_factory
        self.tracer = NULL_TRACER if factory is None else factory(self)

    @property
    def now(self):
        """Current simulated time in nanoseconds."""
        return self._now

    # -- event construction ---------------------------------------------------

    def event(self):
        """Create a pending :class:`Event` owned by this engine."""
        return Event(self)

    def timeout(self, delay, value=None):
        """Create an event triggering ``delay`` ns from now."""
        return Timeout(self, delay, value)

    def process(self, generator, name=None):
        """Start ``generator`` as a process; returns its completion event."""
        return Process(self, generator, name)

    def all_of(self, events):
        """Event that fires when all of ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events):
        """Event that fires when the first of ``events`` fires."""
        return AnyOf(self, events)

    # -- scheduling internals --------------------------------------------------

    def _push_at(self, when, event):
        heapq.heappush(self._heap, (when, next(self._sequence), event))

    def _push_triggered(self, event):
        self._immediate.append(event)

    # -- execution --------------------------------------------------------------

    def run(self, until=None):
        """Run events until both queues drain or the clock passes ``until``.

        Returns the final simulated time.  Events scheduled exactly at
        ``until`` still fire (the bound is inclusive).
        """
        # Local bindings for the hot loop: every name resolved here is one
        # dict lookup the per-event path no longer pays.
        immediate = self._immediate
        heap = self._heap
        popleft = immediate.popleft
        heappop = heapq.heappop
        now = self._now
        while True:
            if immediate:
                # Fast path: no heap access at all.  Heap entries at the
                # current instant cannot appear while immediates are being
                # processed (the heap holds only strictly-future timeouts);
                # the drain loop below already flushed any that existed.
                event = popleft()
                if event._cancelled:
                    continue
                event._processed = True
                callbacks = event.callbacks
                event.callbacks = []
                if callbacks:
                    for callback in callbacks:
                        callback(event)
                elif event._exception is not None and not event._defused:
                    # A failed event nobody waits on is an unhandled modeled
                    # fault; surface it instead of dropping it.
                    raise event._exception
            elif heap:
                head = heap[0]
                if head[2]._cancelled:
                    # Discard lazily, before it can advance the clock.
                    heappop(heap)
                    continue
                when = head[0]
                if when != now:
                    if when < now:
                        raise SimulationError(
                            "event heap went backwards in time"
                        )
                    if until is not None and when > until:
                        self._now = until
                        return until
                    self._now = now = when
                # Drain every heap entry at this instant before touching the
                # immediate queue: they were pushed at an earlier instant, so
                # they predate anything triggered while processing `now` —
                # this keeps global same-instant FIFO order exact.
                while True:
                    event = heappop(heap)[2]
                    if not event._cancelled:
                        event._processed = True
                        callbacks = event.callbacks
                        event.callbacks = []
                        if callbacks:
                            for callback in callbacks:
                                callback(event)
                        elif (event._exception is not None
                              and not event._defused):
                            raise event._exception
                    if not heap or heap[0][0] != now:
                        break
            else:
                break
        if until is not None and until > now:
            self._now = now = until
        return now

    def peek(self):
        """Time of the next scheduled event, or ``None`` if none is pending."""
        immediate = self._immediate
        while immediate and immediate[0]._cancelled:
            immediate.popleft()
        if immediate:
            return self._now
        heap = self._heap
        while heap and heap[0][2]._cancelled:
            heapq.heappop(heap)
        if not heap:
            return None
        return heap[0][0]
