"""The discrete-event engine: clock, timing-wheel event queue, processes.

The programming model follows the classic process-interaction style.  A
*process* is a generator that yields :class:`Event` objects; the engine
suspends the generator until the event triggers, then resumes it with the
event's value.  Example::

    def writer(engine, device):
        yield engine.timeout(100.0)           # wait 100 ns
        done = device.write(b"log record")    # returns an Event
        yield done                            # wait for the device
        print("persisted at", engine.now)

    engine = Engine()
    engine.process(writer(engine, device))
    engine.run()

Scheduling is two-tier.  Events triggered at the *current* instant — by
``succeed()``/``fail()``, process resumes, and zero-delay timeouts — go on a
plain FIFO deque (the *immediate queue*) and never touch the timer
structures; only future-dated timeouts pay for time ordering.  Same-instant
triggers dominate real workloads (every device completion fans out through
chains of them), so this keeps the hot path at deque-append/popleft cost.

Future timeouts live in a **hashed hierarchical timing wheel** instead of a
binary heap.  Time is bucketed into 1 ns ticks; four levels of 256 slots
cover a 2**32-tick block (~4.29 s of simulated time) and a small overflow
heap catches anything farther out.  Level selection is block-aligned — an
entry goes to the first level whose slot span contains both the target
tick and the wheel's current position (``tick ^ cur_tick`` picks it in one
branch ladder):

* level 0 — one slot per tick, the remainder of the current 256-tick
  block (the common device / retry / heartbeat range): insert is an O(1)
  list append + bitmask OR.
* levels 1–3 — each slot spans 2**8 / 2**16 / 2**24 ticks; entries cascade
  down one level when the wheel advances into their slot's span.
* overflow — a conventional ``(when, seq, event)`` min-heap for ticks
  outside the wheel's 2**32-tick block; entries migrate into the wheel as
  it approaches (every refill migrates first, so an overflow timer can
  never be outrun by a wheel timer at an earlier time).

Each level keeps a 256-bit occupancy bitmask (a Python int) so the wheel
skips empty slots in one ``(mask & -mask).bit_length()`` step rather than
ticking through them.  Draining a slot moves its entries — already a single
tick's worth at level 0 — into a sorted *batch* that the run loop sweeps in
one pass: one wheel slot drain, one callback sweep, which is what amortizes
per-event scheduling for NAND-channel and transport completions that land
on the same tick.  :meth:`Engine.at` goes one step further: completions
targeting the same *instant* share one event — one wheel entry and one
dispatch, however many waiters pile on — which is how the NAND channel's
cell timers and the transport's aligned reporter periods batch.

Determinism contract (chaos and checker replays depend on it, byte for
byte):

* Same-instant events fire in strict FIFO trigger order.  The immediate
  deque preserves it directly; timer entries carry a monotonically
  increasing sequence number and every slot/batch is ordered by
  ``(when, seq)``, so ties break on schedule order exactly as the seed
  engine's global heap did.
* A timer whose time equals the current instant was necessarily scheduled
  at an *earlier* instant, so it fires before anything in the immediate
  queue (the run loop sweeps the whole same-time batch before returning to
  immediates).
* Firing times are the exact float ``when`` the timeout was scheduled for —
  ticks only bucket entries, they never quantize the clock.

Timeout cancellation is lazy: :meth:`Event.cancel` marks the event and the
run loop discards it at drain time, so losing a timeout-vs-completion race
costs O(1).  To keep the WAL group-commit idiom (schedule + cancel nearly
every timer) from accumulating garbage, the engine counts cancelled
residents and opportunistically compacts the wheel and overflow heap when
more than half of the outstanding timers are dead.
"""

from bisect import insort
from collections import deque
from heapq import heapify, heappop, heappush
from itertools import count


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel (not for modeled faults)."""


class NullTracer:
    """The disabled-observability default: every hook is a no-op.

    Model code calls ``engine.tracer.begin(...)`` & friends unconditionally
    (or, on per-chunk hot paths, behind an ``if tracer.enabled`` guard);
    with this object installed the cost is one attribute load and — at
    most — one empty method call, so simulations without tracing pay
    essentially nothing.  The real recorder lives in :mod:`repro.obs`;
    keeping the null object here means the kernel never imports it.
    """

    enabled = False
    __slots__ = ()

    def begin(self, track, name, flow=None, **args):
        return None

    def end(self, token, **args):
        pass

    def set_flow(self, token, flow):
        pass

    def instant(self, track, name, flow=None, **args):
        pass

    def counter(self, track, name, value):
        pass


NULL_TRACER = NullTracer()

# Process-wide tracer factory: when installed (see ``repro.obs.capture``),
# every Engine constructed afterwards gets ``factory(engine)`` as its
# tracer — which is how ``--trace`` reaches engines that benchmarks build
# internally.  ``None`` means every new engine gets the shared NULL_TRACER.
_tracer_factory = None


def set_tracer_factory(factory):
    """Install (or, with ``None``, remove) the process-wide tracer factory."""
    global _tracer_factory
    _tracer_factory = factory


def tracer_factory():
    return _tracer_factory


# Wheel geometry: 4 levels x 256 slots, 1 ns per level-0 tick.  The level
# thresholds compare ``tick ^ cur_tick`` (block-aligned selection); ticks
# outside the wheel's 2**32-tick block go to the overflow heap.
_SLOT_BITS = 8
_SLOTS = 1 << _SLOT_BITS  # 256
_L1_SPAN = 1 << (_SLOT_BITS * 2)  # 65536
_L2_SPAN = 1 << (_SLOT_BITS * 3)  # 16777216
_HORIZON = 1 << (_SLOT_BITS * 4)  # 4294967296 ticks ~= 4.29 s
# Compaction trigger: rebuild once this many cancelled timers are resident
# AND they outnumber the live ones (>50%).
_COMPACT_MIN_CANCELLED = 128


class Event:
    """A one-shot occurrence that processes can wait on.

    An event goes through at most one transition: *pending* -> *triggered*.
    Once triggered it carries a ``value`` (or an exception to re-raise in
    waiters) and invokes its callbacks in registration order.
    """

    __slots__ = (
        "engine",
        "callbacks",
        "_value",
        "_exception",
        "triggered",
        "_processed",
        "_cancelled",
        "_defused",
    )

    def __init__(self, engine):
        self.engine = engine
        self.callbacks = []
        self._value = None
        self._exception = None
        self.triggered = False
        # True once the engine has popped the event and run its callbacks;
        # a `then()` registered after that point runs at the current instant.
        self._processed = False
        # Lazily-cancelled events are discarded at drain time instead of
        # being dug out of the queues.
        self._cancelled = False
        # A defused event's failure no longer counts as unhandled (set on
        # the losers of an AnyOf race when their waiter detaches).
        self._defused = False

    @property
    def value(self):
        if not self.triggered:
            raise SimulationError("event value read before trigger")
        if self._exception is not None:
            raise self._exception
        return self._value

    def succeed(self, value=None):
        """Trigger the event immediately with ``value``.

        On a cancelled event this is a no-op, so the losing side of a
        cancellation race does not need its own guard.
        """
        if self._cancelled:
            return self
        if self.triggered:
            raise SimulationError("event triggered twice")
        self.triggered = True
        self._value = value
        self.engine._immediate.append(self)
        return self

    def fail(self, exception):
        """Trigger the event with an exception to re-raise in waiters."""
        if self._cancelled:
            return self
        if self.triggered:
            raise SimulationError("event triggered twice")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self.triggered = True
        self._exception = exception
        self.engine._immediate.append(self)
        return self

    def cancel(self):
        """Withdraw the event: its callbacks will never run.

        Pending events stop accepting ``succeed()``/``fail()``; already
        triggered but not yet processed events are dropped lazily when the
        run loop reaches them (a cancelled timeout costs O(1), no queue
        surgery).  Cancelling an already-processed event is a no-op.  The
        caller is responsible for not leaving a process waiting forever on
        a cancelled event — cancel only events whose outcome nobody awaits
        anymore, e.g. the loser of a timeout-vs-completion race.
        """
        if self._processed:
            return self
        self._cancelled = True
        self.callbacks.clear()
        return self

    @property
    def cancelled(self):
        return self._cancelled

    def then(self, callback):
        """Register ``callback(event)`` to run when the event triggers."""
        if self._cancelled:
            return self
        if self._processed:
            # Callbacks already ran: run this one at the current instant via
            # the immediate queue so ordering relative to same-time
            # callbacks stays FIFO.
            holder = Event(self.engine)
            holder.callbacks.append(lambda _ev: callback(self))
            holder.succeed()
        else:
            self.callbacks.append(callback)
        return self


class Timeout(Event):
    """An event that triggers ``delay`` nanoseconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, engine, delay, value=None):
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        # Inlined Event.__init__: timeouts are the single hottest allocation
        # in timer-bound workloads and the super() call is measurable.
        self.engine = engine
        self.callbacks = []
        self._value = value
        self._exception = None
        self.triggered = True
        self._processed = False
        self._cancelled = False
        self._defused = False
        self.delay = delay
        if delay == 0:
            # Zero-delay timeouts fire at the current instant: fast path.
            engine._immediate.append(self)
            return
        when = engine._now + delay
        tick = int(when)
        cur = engine._cur_tick
        if cur < tick and (tick ^ cur) < _SLOTS:
            # Level-0 fast path: the device/retry/heartbeat range (same
            # 256-tick block as the wheel position).  Inserts are plain
            # appends; the slot is sorted once at drain time, amortized
            # across every entry it holds.
            slot_entries = engine._l0[tick & 255]
            if not slot_entries:
                engine._occ0 |= 1 << (tick & 255)
            slot_entries.append((when, next(engine._sequence), self))
        else:
            engine._push_at(when, self)

    def cancel(self):
        if not self._cancelled and not self._processed and self.delay != 0:
            self._cancelled = True
            self.callbacks.clear()
            engine = self.engine
            cancelled = engine._cancelled_pending + 1
            engine._cancelled_pending = cancelled
            if cancelled >= engine._compact_check:
                engine._maybe_compact()
            return self
        return Event.cancel(self)


class Process(Event):
    """A running generator; itself an event that fires when the generator ends.

    The event value is the generator's return value.  An uncaught exception
    inside the generator propagates out of :meth:`Engine.run` (errors should
    never pass silently in a simulation — they indicate a modeling bug).
    """

    __slots__ = ("generator", "name")

    def __init__(self, engine, generator, name=None):
        super().__init__(engine)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        bootstrap = Event(engine)
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed()

    def _resume(self, event):
        """Advance the generator with the triggering event's outcome."""
        try:
            if event is None:
                target = self.generator.send(None)
            elif event._exception is not None:
                target = self.generator.throw(event._exception)
            else:
                target = self.generator.send(event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except SimulationError:
            raise
        except BaseException as error:  # modeled fault escaping the process
            # Fail the process event so a waiting parent re-raises it at its
            # own yield.  If nobody waits, the engine raises at processing
            # time — errors never pass silently.
            self.fail(error)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}, expected an Event"
            )
        target.then(self._resume)


class AllOf(Event):
    """Triggers once every event in ``events`` has triggered.

    Value is the list of individual event values, in the given order.
    """

    __slots__ = ("_pending_children", "_events")

    def __init__(self, engine, events):
        super().__init__(engine)
        self._events = list(events)
        self._pending_children = len(self._events)
        if self._pending_children == 0:
            self.succeed([])
            return
        for event in self._events:
            event.then(self._on_child)

    def _on_child(self, _event):
        self._pending_children -= 1
        if self._pending_children == 0 and not self.triggered:
            self.succeed([child.value for child in self._events])


class AnyOf(Event):
    """Triggers when the first of ``events`` triggers; value is that event.

    When the first child fires, the remaining children are *detached*: the
    AnyOf's callback is removed from them and they are defused, so losing
    events carry no dead callback work and a loser that later fails is not
    treated as an unhandled fault (the race was already decided).
    """

    __slots__ = ("_children",)

    def __init__(self, engine, events):
        super().__init__(engine)
        self._children = list(events)
        for event in self._children:
            event.then(self._on_child)

    def _on_child(self, event):
        if self.triggered:
            return
        self.succeed(event)
        on_child = self._on_child
        for child in self._children:
            if child is event:
                continue
            child._defused = True
            try:
                child.callbacks.remove(on_child)
            except ValueError:
                # Already processed (same-instant tie) or cancelled; either
                # way there is nothing left to detach.
                pass
        self._children = ()


class Engine:
    """Owns the simulated clock and runs events in time order.

    Determinism: same-instant events fire in strict FIFO trigger order (the
    immediate deque preserves it directly; timer ties break on a
    monotonically increasing sequence number), so a run is exactly
    reproducible.
    """

    __slots__ = (
        "_now",
        "_immediate",
        "_cur_tick",
        "_l0",
        "_l1",
        "_l2",
        "_l3",
        "_occ0",
        "_occ1",
        "_occ2",
        "_occ3",
        "_overflow",
        "_batch",
        "_batch_pos",
        "_sequence",
        "_shared_ticks",
        "_cancelled_pending",
        "_compact_check",
        "tracer",
        # ``timeout`` is an instance slot, not a method: every engine
        # installs a per-instance closure (see
        # ``_install_timeout_fast_path``) and slot access keeps both the
        # closure lookup and the wheel fields it touches off dict paths.
        "timeout",
    )

    def __init__(self):
        self._now = 0.0
        # Tier 1: events triggered at the current instant, FIFO.
        self._immediate = deque()
        # Tier 2: the hierarchical timing wheel (see module docstring).
        # ``_cur_tick`` is the wheel's position; it never moves backwards.
        self._cur_tick = 0
        self._l0 = [[] for _ in range(_SLOTS)]
        self._l1 = [[] for _ in range(_SLOTS)]
        self._l2 = [[] for _ in range(_SLOTS)]
        self._l3 = [[] for _ in range(_SLOTS)]
        self._occ0 = 0
        self._occ1 = 0
        self._occ2 = 0
        self._occ3 = 0
        # Out-of-horizon timers: a plain (when, seq, event) min-heap.
        self._overflow = []
        # The slot currently being drained, sorted by (when, seq);
        # ``_batch_pos`` is the drain cursor.  Late inserts that land at or
        # behind the wheel position insort here to keep time order.
        self._batch = []
        self._batch_pos = 0
        self._sequence = count()
        # Shared same-instant events handed out by ``at()``: one wheel
        # entry per distinct instant, however many waiters pile on.
        self._shared_ticks = {}
        # Compaction bookkeeping: ``_cancelled_pending`` counts cancelled
        # timers still resident in the wheel/overflow/batch; once it
        # reaches ``_compact_check`` the next cancel takes an exact census
        # (``_maybe_compact``) and rebuilds if the dead outnumber the live.
        self._cancelled_pending = 0
        self._compact_check = _COMPACT_MIN_CANCELLED
        # Observability: the shared no-op tracer unless a capture session
        # is active (one assignment at construction; the run loop itself
        # never consults it, so tracing cannot tax the event hot path).
        factory = _tracer_factory
        self.tracer = NULL_TRACER if factory is None else factory(self)
        self._install_timeout_fast_path()

    def _install_timeout_fast_path(self):
        """Install ``timeout`` as a per-engine closure (the only definition).

        Timer creation is the hottest allocation in timer-bound workloads;
        the closure folds the factory method and ``Timeout.__init__`` into
        a single frame (no bound-method object, no type-call dispatch) and
        pre-binds the queue structures.  Semantics are identical to
        ``Timeout(engine, delay, value)``.
        """
        engine = self
        immediate = self._immediate
        l0 = self._l0
        next_seq = self._sequence.__next__
        new = Timeout.__new__

        def timeout(delay, value=None):
            event = new(Timeout)
            event.engine = engine
            event.callbacks = []
            event._value = value
            event._exception = None
            event.triggered = True
            event._processed = False
            event._cancelled = False
            event._defused = False
            event.delay = delay
            if delay <= 0:
                if delay == 0:
                    immediate.append(event)
                    return event
                raise SimulationError(f"negative timeout: {delay}")
            when = engine._now + delay
            tick = int(when)
            cur = engine._cur_tick
            if cur < tick and (tick ^ cur) < _SLOTS:
                slot_entries = l0[tick & 255]
                if not slot_entries:
                    engine._occ0 |= 1 << (tick & 255)
                slot_entries.append((when, next_seq(), event))
            else:
                engine._push_at(when, event)
            return event

        timeout.__doc__ = "Create an event triggering ``delay`` ns from now."
        self.timeout = timeout

    @property
    def now(self):
        """Current simulated time in nanoseconds."""
        return self._now

    # -- event construction ---------------------------------------------------

    def event(self):
        """Create a pending :class:`Event` owned by this engine."""
        return Event(self)

    def at(self, when):
        """Shared event firing at the absolute instant ``when`` (ns).

        Repeated calls with the same ``when`` — before it fires — return
        the *same* event, so any number of completions landing on one
        instant occupy a single wheel entry and are delivered in one
        callback sweep (batched same-tick completion delivery).  Waiters
        resume in registration order, which for independently created
        completions equals creation order, i.e. the FIFO order separate
        timeouts would have produced.  The event value is ``None``; do
        not ``cancel()`` a shared event — other waiters may hold it.
        """
        now = self._now
        if when < now:
            raise SimulationError(f"at() instant in the past: {when} < {now}")
        shared = self._shared_ticks
        event = shared.get(when)
        if event is not None and not event._processed \
                and not event._cancelled:
            return event
        if len(shared) >= 64:
            # Opportunistic purge of fired/stale instants keeps the memo
            # bounded without a per-fire hook on the run loop.
            for key in [k for k, v in shared.items()
                        if v._processed or v._cancelled or k < now]:
                del shared[key]
        event = Timeout.__new__(Timeout)
        event.engine = self
        event.callbacks = []
        event._value = None
        event._exception = None
        event.triggered = True
        event._processed = False
        event._cancelled = False
        event._defused = False
        event.delay = when - now
        if when == now:
            self._immediate.append(event)
        else:
            self._push_at(when, event)
        shared[when] = event
        return event

    def process(self, generator, name=None):
        """Start ``generator`` as a process; returns its completion event."""
        return Process(self, generator, name)

    def all_of(self, events):
        """Event that fires when all of ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events):
        """Event that fires when the first of ``events`` fires."""
        return AnyOf(self, events)

    # -- scheduling internals --------------------------------------------------

    def _push_at(self, when, event):
        """Insert a new timer firing at ``when`` (general path).

        The level-0 fast path lives inline in ``Timeout.__init__``; this
        handles everything else: at-or-behind-the-wheel times (insort into
        the live batch), levels 1-3, and the overflow heap.
        """
        entry = (when, next(self._sequence), event)
        tick = int(when)
        cur = self._cur_tick
        if tick <= cur:
            # The wheel has already advanced onto (or past) this tick —
            # possible after run(until=...) parked with a batch loaded, or
            # for sub-tick delays.  Keep the batch sorted; (when, seq)
            # ordering lands the entry at or after the drain cursor.
            insort(self._batch, entry)
            return
        # Level selection is block-aligned: ``tick ^ cur`` tells the highest
        # differing bit, i.e. the first level whose slot span still contains
        # both the wheel position and the target tick.
        diff = tick ^ cur
        if diff < _SLOTS:
            slot = tick & 255
            self._l0[slot].append(entry)
            self._occ0 |= 1 << slot
        elif diff < _L1_SPAN:
            slot = (tick >> 8) & 255
            self._l1[slot].append(entry)
            self._occ1 |= 1 << slot
        elif diff < _L2_SPAN:
            slot = (tick >> 16) & 255
            self._l2[slot].append(entry)
            self._occ2 |= 1 << slot
        elif diff < _HORIZON:
            slot = (tick >> 24) & 255
            self._l3[slot].append(entry)
            self._occ3 |= 1 << slot
        else:
            heappush(self._overflow, entry)

    def _push_triggered(self, event):
        self._immediate.append(event)

    def _place(self, entry, cur, due):
        """Re-file an existing entry relative to wheel position ``cur``.

        Used by cascades and overflow migration; the entry keeps its
        original sequence number, so FIFO ties survive relocation.  Entries
        at or behind ``cur`` collect into ``due`` (the next batch).
        """
        tick = int(entry[0])
        if tick <= cur:
            due.append(entry)
            return
        diff = tick ^ cur
        if diff < _SLOTS:
            slot = tick & 255
            self._l0[slot].append(entry)
            self._occ0 |= 1 << slot
        elif diff < _L1_SPAN:
            slot = (tick >> 8) & 255
            self._l1[slot].append(entry)
            self._occ1 |= 1 << slot
        elif diff < _L2_SPAN:
            slot = (tick >> 16) & 255
            self._l2[slot].append(entry)
            self._occ2 |= 1 << slot
        else:
            slot = (tick >> 24) & 255
            self._l3[slot].append(entry)
            self._occ3 |= 1 << slot

    def _refill(self):
        """Advance the wheel to the next occupied tick and load its batch.

        Returns True with ``_batch``/``_batch_pos`` set when timers remain,
        False when every timer structure is empty.  Migrates in-horizon
        overflow entries first so an overflow timer can never be outrun by
        a wheel timer at an earlier time, then drains the earliest level-0
        slot, cascading levels 1-3 down (and jumping to the overflow
        minimum when the wheel is empty) as needed.
        """
        overflow = self._overflow
        cur = self._cur_tick
        due = []
        if overflow:
            # Migrate entries whose tick shares the wheel's 2**32-tick block
            # (block-aligned, like level selection).
            while overflow and (int(overflow[0][0]) ^ cur) < _HORIZON:
                entry = heappop(overflow)
                if entry[2]._cancelled:
                    self._cancelled_pending -= 1
                    continue
                self._place(entry, cur, due)
        while True:
            if due:
                due.sort()
                self._batch = due
                self._batch_pos = 0
                self._cur_tick = cur
                return True
            occ = self._occ0
            if occ:
                slot = (occ & -occ).bit_length() - 1
                cur = (cur & -_SLOTS) | slot
                batch = self._l0[slot]
                self._l0[slot] = []
                self._occ0 = occ & ~(1 << slot)
                batch.sort()
                self._batch = batch
                self._batch_pos = 0
                self._cur_tick = cur
                return True
            occ = self._occ1
            if occ:
                slot = (occ & -occ).bit_length() - 1
                cur = (cur & -_L1_SPAN) | (slot << 8)
                entries = self._l1[slot]
                self._l1[slot] = []
                self._occ1 = occ & ~(1 << slot)
                for entry in entries:
                    if entry[2]._cancelled:
                        self._cancelled_pending -= 1
                    else:
                        self._place(entry, cur, due)
                continue
            occ = self._occ2
            if occ:
                slot = (occ & -occ).bit_length() - 1
                cur = (cur & -_L2_SPAN) | (slot << 16)
                entries = self._l2[slot]
                self._l2[slot] = []
                self._occ2 = occ & ~(1 << slot)
                for entry in entries:
                    if entry[2]._cancelled:
                        self._cancelled_pending -= 1
                    else:
                        self._place(entry, cur, due)
                continue
            occ = self._occ3
            if occ:
                slot = (occ & -occ).bit_length() - 1
                cur = (cur & -_HORIZON) | (slot << 24)
                entries = self._l3[slot]
                self._l3[slot] = []
                self._occ3 = occ & ~(1 << slot)
                for entry in entries:
                    if entry[2]._cancelled:
                        self._cancelled_pending -= 1
                    else:
                        self._place(entry, cur, due)
                continue
            # Wheel empty: jump to the overflow minimum, if any.
            while overflow and overflow[0][2]._cancelled:
                heappop(overflow)
                self._cancelled_pending -= 1
            if not overflow:
                self._cur_tick = cur
                return False
            cur = int(overflow[0][0])
            while overflow and (int(overflow[0][0]) ^ cur) < _HORIZON:
                entry = heappop(overflow)
                if entry[2]._cancelled:
                    self._cancelled_pending -= 1
                    continue
                self._place(entry, cur, due)

    def _maybe_compact(self):
        """Census the timer structures; compact if >50% are cancelled.

        Called from ``Timeout.cancel`` when the cancelled count crosses
        ``_compact_check``.  The census is O(slots), not O(entries) — it
        sums slot lengths — so deferring it to a threshold keeps the
        per-insert and per-cancel paths free of live/dead accounting.
        """
        resident = (
            sum(map(len, self._l0))
            + sum(map(len, self._l1))
            + sum(map(len, self._l2))
            + sum(map(len, self._l3))
            + len(self._overflow)
            + (len(self._batch) - self._batch_pos)
        )
        if self._cancelled_pending * 2 > resident:
            self._compact_timers()
        else:
            # Mostly-live: back off geometrically so repeated cancels pay
            # for the next census only after meaningful growth.
            self._compact_check = self._cancelled_pending * 2

    def _compact_timers(self):
        """Rebuild the wheel + overflow heap dropping cancelled entries.

        Triggered opportunistically from ``Timeout.cancel`` once cancelled
        residents outnumber live ones, so the schedule-then-cancel idiom
        (WAL group commit, transport retry races) cannot grow the timer
        structures without bound.  The live batch is left untouched — the
        run loop holds references into it — so its cancelled entries are
        counted back into ``_cancelled_pending`` and dropped at drain time.
        """
        occs = []
        for level in (self._l0, self._l1, self._l2, self._l3):
            occ = 0
            for slot in range(_SLOTS):
                entries = level[slot]
                if not entries:
                    continue
                live = [e for e in entries if not e[2]._cancelled]
                level[slot] = live
                if live:
                    occ |= 1 << slot
            occs.append(occ)
        self._occ0, self._occ1, self._occ2, self._occ3 = occs
        overflow = [e for e in self._overflow if not e[2]._cancelled]
        heapify(overflow)
        self._overflow = overflow
        batch = self._batch
        self._cancelled_pending = sum(
            1
            for i in range(self._batch_pos, len(batch))
            if batch[i][2]._cancelled
        )
        self._compact_check = self._cancelled_pending + _COMPACT_MIN_CANCELLED

    # -- execution --------------------------------------------------------------

    def run(self, until=None):
        """Run events until the queues drain or the clock passes ``until``.

        Returns the final simulated time.  Events scheduled exactly at
        ``until`` still fire (the bound is inclusive).
        """
        # Local bindings for the hot loop: every name resolved here is one
        # dict lookup the per-event path no longer pays.
        immediate = self._immediate
        popleft = immediate.popleft
        now = self._now
        while True:
            if immediate:
                # Fast path: no timer access at all.  Timer entries at the
                # current instant cannot appear while immediates are being
                # processed (timers are strictly future when scheduled);
                # the batch sweep below already flushed any that existed.
                event = popleft()
                if event._cancelled:
                    continue
                event._processed = True
                callbacks = event.callbacks
                event.callbacks = []
                if len(callbacks) == 1:
                    # One waiter is the overwhelmingly common case (a
                    # process resume or a single completion hook); skip
                    # the loop setup.
                    callbacks[0](event)
                elif callbacks:
                    for callback in callbacks:
                        callback(event)
                elif event._exception is not None and not event._defused:
                    # A failed event nobody waits on is an unhandled modeled
                    # fault; surface it instead of dropping it.
                    raise event._exception
                continue
            batch = self._batch
            pos = self._batch_pos
            if pos == len(batch):
                if not self._refill():
                    break
                batch = self._batch
                pos = 0
            # Skip a cancelled prefix before it can advance the clock.
            entry = batch[pos]
            while entry[2]._cancelled:
                self._cancelled_pending -= 1
                pos += 1
                if pos == len(batch):
                    break
                entry = batch[pos]
            self._batch_pos = pos
            if pos == len(batch):
                continue
            when = entry[0]
            if when != now:
                if when < now:
                    raise SimulationError(
                        "event queue went backwards in time"
                    )
                if until is not None and when > until:
                    self._now = until
                    return until
                self._now = now = when
            # Sweep every batch entry at this instant before touching the
            # immediate queue: they were scheduled at an earlier instant,
            # so they predate anything triggered while processing `now` —
            # this keeps global same-instant FIFO order exact, and turns a
            # slot full of same-tick completions into one callback sweep.
            size = len(batch)
            try:
                while True:
                    event = batch[pos][2]
                    pos += 1
                    if not event._cancelled:
                        event._processed = True
                        callbacks = event.callbacks
                        event.callbacks = []
                        if len(callbacks) == 1:
                            callbacks[0](event)
                        elif callbacks:
                            for callback in callbacks:
                                callback(event)
                        elif (event._exception is not None
                              and not event._defused):
                            raise event._exception
                    else:
                        self._cancelled_pending -= 1
                    if pos == size or batch[pos][0] != when:
                        # ``size`` is a snapshot: a mid-sweep insort can only
                        # grow the batch at or after the cursor, so stopping
                        # at the stale size just re-enters the outer loop,
                        # which picks the sweep back up at the same instant.
                        break
            except BaseException:
                self._batch_pos = pos
                raise
            self._batch_pos = pos
            if pos == len(batch):
                # Fully drained: drop event references promptly.
                batch.clear()
                self._batch_pos = 0
        if until is not None and until > now:
            self._now = now = until
        return now

    def peek(self):
        """Time of the next scheduled event, or ``None`` if none is pending."""
        immediate = self._immediate
        while immediate and immediate[0]._cancelled:
            immediate.popleft()
        if immediate:
            return self._now
        batch = self._batch
        for i in range(self._batch_pos, len(batch)):
            if not batch[i][2]._cancelled:
                return batch[i][0]
        # Level order is time order: level 0 holds the current 256-tick
        # block, each higher level strictly later spans; within a level,
        # ascending slot index is ascending time.
        for level, occ in (
            (self._l0, self._occ0),
            (self._l1, self._occ1),
            (self._l2, self._occ2),
            (self._l3, self._occ3),
        ):
            while occ:
                slot = (occ & -occ).bit_length() - 1
                occ &= occ - 1
                best = None
                for entry in level[slot]:
                    if not entry[2]._cancelled and (
                        best is None or entry < best
                    ):
                        best = entry
                if best is not None:
                    return best[0]
        overflow = self._overflow
        while overflow and overflow[0][2]._cancelled:
            heappop(overflow)
            self._cancelled_pending -= 1
        if not overflow:
            return None
        return overflow[0][0]
