"""The discrete-event engine: clock, event heap, and generator processes.

The programming model follows the classic process-interaction style.  A
*process* is a generator that yields :class:`Event` objects; the engine
suspends the generator until the event triggers, then resumes it with the
event's value.  Example::

    def writer(engine, device):
        yield engine.timeout(100.0)           # wait 100 ns
        done = device.write(b"log record")    # returns an Event
        yield done                            # wait for the device
        print("persisted at", engine.now)

    engine = Engine()
    engine.process(writer(engine, device))
    engine.run()
"""

import heapq
from itertools import count


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel (not for modeled faults)."""


class Event:
    """A one-shot occurrence that processes can wait on.

    An event goes through at most one transition: *pending* -> *triggered*.
    Once triggered it carries a ``value`` (or an exception to re-raise in
    waiters) and invokes its callbacks in registration order.
    """

    __slots__ = (
        "engine",
        "callbacks",
        "_value",
        "_exception",
        "triggered",
        "_processed",
    )

    def __init__(self, engine):
        self.engine = engine
        self.callbacks = []
        self._value = None
        self._exception = None
        self.triggered = False
        # True once the engine has popped the event and run its callbacks;
        # a `then()` registered after that point runs at the current instant.
        self._processed = False

    @property
    def value(self):
        if not self.triggered:
            raise SimulationError("event value read before trigger")
        if self._exception is not None:
            raise self._exception
        return self._value

    def succeed(self, value=None):
        """Trigger the event immediately with ``value``."""
        if self.triggered:
            raise SimulationError("event triggered twice")
        self.triggered = True
        self._value = value
        self.engine._push_triggered(self)
        return self

    def fail(self, exception):
        """Trigger the event with an exception to re-raise in waiters."""
        if self.triggered:
            raise SimulationError("event triggered twice")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self.triggered = True
        self._exception = exception
        self.engine._push_triggered(self)
        return self

    def then(self, callback):
        """Register ``callback(event)`` to run when the event triggers."""
        if self._processed:
            # Callbacks already ran: run this one at the current instant via
            # the heap so ordering relative to same-time callbacks stays FIFO.
            holder = Event(self.engine)
            holder.callbacks.append(lambda _ev: callback(self))
            holder.succeed()
        else:
            self.callbacks.append(callback)
        return self


class Timeout(Event):
    """An event that triggers ``delay`` nanoseconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, engine, delay, value=None):
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        super().__init__(engine)
        self.delay = delay
        self.triggered = True
        self._value = value
        engine._push_at(engine.now + delay, self)


class Process(Event):
    """A running generator; itself an event that fires when the generator ends.

    The event value is the generator's return value.  An uncaught exception
    inside the generator propagates out of :meth:`Engine.run` (errors should
    never pass silently in a simulation — they indicate a modeling bug).
    """

    __slots__ = ("generator", "name")

    def __init__(self, engine, generator, name=None):
        super().__init__(engine)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        bootstrap = Event(engine)
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed()

    def _resume(self, event):
        """Advance the generator with the triggering event's outcome."""
        try:
            if event is None:
                target = self.generator.send(None)
            elif event._exception is not None:
                target = self.generator.throw(event._exception)
            else:
                target = self.generator.send(event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except SimulationError:
            raise
        except BaseException as error:  # modeled fault escaping the process
            # Fail the process event so a waiting parent re-raises it at its
            # own yield.  If nobody waits, the engine raises at processing
            # time — errors never pass silently.
            self.fail(error)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}, expected an Event"
            )
        target.then(self._resume)


class AllOf(Event):
    """Triggers once every event in ``events`` has triggered.

    Value is the list of individual event values, in the given order.
    """

    __slots__ = ("_pending", "_events")

    def __init__(self, engine, events):
        super().__init__(engine)
        self._events = list(events)
        self._pending = len(self._events)
        if self._pending == 0:
            self.succeed([])
            return
        for event in self._events:
            event.then(self._on_child)

    def _on_child(self, _event):
        self._pending -= 1
        if self._pending == 0 and not self.triggered:
            self.succeed([child.value for child in self._events])


class AnyOf(Event):
    """Triggers when the first of ``events`` triggers; value is that event."""

    __slots__ = ()

    def __init__(self, engine, events):
        super().__init__(engine)
        for event in events:
            event.then(self._on_child)

    def _on_child(self, event):
        if not self.triggered:
            self.succeed(event)


class Engine:
    """Owns the simulated clock and runs events in time order.

    Determinism: the heap orders by ``(time, sequence)`` where sequence is a
    global insertion counter, so same-time events fire in FIFO order and a
    run is exactly reproducible.
    """

    def __init__(self):
        self._now = 0.0
        self._heap = []
        self._sequence = count()

    @property
    def now(self):
        """Current simulated time in nanoseconds."""
        return self._now

    # -- event construction ---------------------------------------------------

    def event(self):
        """Create a pending :class:`Event` owned by this engine."""
        return Event(self)

    def timeout(self, delay, value=None):
        """Create an event triggering ``delay`` ns from now."""
        return Timeout(self, delay, value)

    def process(self, generator, name=None):
        """Start ``generator`` as a process; returns its completion event."""
        return Process(self, generator, name)

    def all_of(self, events):
        """Event that fires when all of ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events):
        """Event that fires when the first of ``events`` fires."""
        return AnyOf(self, events)

    # -- scheduling internals --------------------------------------------------

    def _push_at(self, when, event):
        heapq.heappush(self._heap, (when, next(self._sequence), event))

    def _push_triggered(self, event):
        self._push_at(self._now, event)

    # -- execution --------------------------------------------------------------

    def run(self, until=None):
        """Run events until the heap drains or the clock passes ``until``.

        Returns the final simulated time.  Events scheduled exactly at
        ``until`` still fire (the bound is inclusive).
        """
        while self._heap:
            when, _seq, event = self._heap[0]
            if until is not None and when > until:
                self._now = until
                return self._now
            heapq.heappop(self._heap)
            if when < self._now:
                raise SimulationError("event heap went backwards in time")
            self._now = when
            event._processed = True
            callbacks, event.callbacks = event.callbacks, []
            if event._exception is not None and not callbacks:
                # A failed event nobody waits on is an unhandled modeled
                # fault; surface it instead of dropping it.
                raise event._exception
            for callback in callbacks:
                callback(event)
        if until is not None:
            self._now = max(self._now, until)
        return self._now

    def peek(self):
        """Time of the next scheduled event, or ``None`` if the heap is empty."""
        if not self._heap:
            return None
        return self._heap[0][0]
