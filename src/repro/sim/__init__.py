"""Discrete-event simulation kernel.

Everything in this reproduction — NAND arrays, PCIe links, the CMB module,
the database engine — runs as cooperating processes on top of this kernel.
The design is a deliberately small subset of the well-known simpy style:

* :class:`Engine` owns the simulated clock (nanoseconds) and the event heap.
* :class:`Event` is a one-shot occurrence that processes can wait on.
* Processes are plain Python generators that ``yield`` events; the engine
  resumes them when the event fires.
* Resources (:class:`~repro.sim.resources.Store`,
  :class:`~repro.sim.resources.Container`,
  :class:`~repro.sim.resources.BandwidthPipe`, ...) model contention.

The kernel is fully deterministic for a fixed seed: ties in the event heap
break on a monotonically increasing sequence number, never on object ids.
"""

from repro.sim.engine import (
    NULL_TRACER,
    Engine,
    Event,
    Process,
    SimulationError,
    Timeout,
    set_tracer_factory,
    tracer_factory,
)
from repro.sim.resources import (
    BandwidthPipe,
    Container,
    Resource,
    Store,
)
from repro.sim.stats import (
    Candlestick,
    Counter,
    LatencyRecorder,
    RateMeter,
    percentile,
)
from repro.sim.units import (
    GB,
    GIB,
    KB,
    KIB,
    MB,
    MIB,
    MICROS,
    MILLIS,
    NANOS,
    SECONDS,
    gb_per_s,
    per_second,
)

__all__ = [
    "Engine",
    "NULL_TRACER",
    "set_tracer_factory",
    "tracer_factory",
    "Event",
    "Process",
    "Timeout",
    "SimulationError",
    "Resource",
    "Store",
    "Container",
    "BandwidthPipe",
    "Candlestick",
    "Counter",
    "LatencyRecorder",
    "RateMeter",
    "percentile",
    "KB",
    "MB",
    "GB",
    "KIB",
    "MIB",
    "GIB",
    "NANOS",
    "MICROS",
    "MILLIS",
    "SECONDS",
    "gb_per_s",
    "per_second",
]
