"""Contention primitives: resources, stores, containers, bandwidth pipes.

These are the building blocks for modeling shared hardware: a flash die that
serves one operation at a time (:class:`Resource`), a command queue
(:class:`Store`), a byte-counting credit pool (:class:`Container`), and a
serial link or memory port with finite bandwidth (:class:`BandwidthPipe`).
"""

from collections import deque

from repro.sim.engine import Event, SimulationError


class Resource:
    """A classic counted resource with FIFO waiters.

    ``request()`` returns an event that fires when a slot is granted; the
    holder must call ``release()`` exactly once.  Typical use::

        grant = resource.request()
        yield grant
        try:
            yield engine.timeout(busy_time)
        finally:
            resource.release()
    """

    def __init__(self, engine, capacity=1):
        if capacity < 1:
            raise SimulationError("resource capacity must be >= 1")
        self.engine = engine
        self.capacity = capacity
        self.in_use = 0
        self._waiters = deque()

    def request(self):
        event = Event(self.engine)
        if self.in_use < self.capacity:
            self.in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self):
        if self.in_use <= 0:
            raise SimulationError("release() without a matching request()")
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self.in_use -= 1

    @property
    def queue_length(self):
        """Number of requests waiting for a slot."""
        return len(self._waiters)


class Store:
    """An unbounded-or-bounded FIFO of items with blocking put/get.

    Models command queues, mailboxes, and channels between modules.  When a
    ``capacity`` is given, ``put()`` blocks while the store is full — which
    is exactly how back-pressure propagates between pipeline stages.
    """

    def __init__(self, engine, capacity=None):
        self.engine = engine
        self.capacity = capacity
        self._items = deque()
        self._getters = deque()
        self._putters = deque()  # (event, item) pairs waiting for space

    def __len__(self):
        return len(self._items)

    def put(self, item):
        """Deposit ``item``; returns an event that fires when accepted."""
        event = Event(self.engine)
        if self._getters:
            self._getters.popleft().succeed(item)
            event.succeed()
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            event.succeed()
        else:
            self._putters.append((event, item))
        return event

    def get(self):
        """Take the oldest item; returns an event whose value is the item."""
        event = Event(self.engine)
        if self._items:
            event.succeed(self._items.popleft())
            if self._putters:
                put_event, item = self._putters.popleft()
                self._items.append(item)
                put_event.succeed()
        else:
            self._getters.append(event)
        return event

    def peek_all(self):
        """Snapshot of queued items (for schedulers that inspect queues)."""
        return list(self._items)


class Container:
    """A continuous level of "stuff" (bytes, credits) with blocking get/put.

    Unlike :class:`Store` this tracks an amount rather than discrete items.
    Used for credit counters and buffer occupancy.  ``get(amount)`` blocks
    until the level is at least ``amount``; ``put(amount)`` blocks while the
    container would exceed ``capacity``.
    """

    def __init__(self, engine, capacity=float("inf"), init=0):
        if init < 0 or init > capacity:
            raise SimulationError("initial level outside [0, capacity]")
        self.engine = engine
        self.capacity = capacity
        self.level = init
        self._getters = deque()  # (event, amount)
        self._putters = deque()  # (event, amount)

    def put(self, amount):
        if amount < 0:
            raise SimulationError("cannot put a negative amount")
        event = Event(self.engine)
        self._putters.append((event, amount))
        self._settle()
        return event

    def get(self, amount):
        if amount < 0:
            raise SimulationError("cannot get a negative amount")
        event = Event(self.engine)
        self._getters.append((event, amount))
        self._settle()
        return event

    def _settle(self):
        """Grant queued puts/gets in FIFO order while they fit."""
        progressed = True
        while progressed:
            progressed = False
            if self._putters:
                event, amount = self._putters[0]
                if self.level + amount <= self.capacity:
                    self._putters.popleft()
                    self.level += amount
                    event.succeed()
                    progressed = True
            if self._getters:
                event, amount = self._getters[0]
                if self.level >= amount:
                    self._getters.popleft()
                    self.level -= amount
                    event.succeed(amount)
                    progressed = True


class BandwidthPipe:
    """A serial transfer medium with fixed bandwidth and per-transfer latency.

    Transfers are serviced strictly in FIFO order; each occupies the pipe for
    ``size / bandwidth`` ns and completes ``latency`` ns after its last byte
    leaves.  This models a PCIe link direction, a memory port, or a flash
    channel bus — anything where concurrent transfers serialize.

    ``transfer(size)`` returns an event that fires at completion time with
    value ``size``.
    """

    def __init__(self, engine, bandwidth, latency=0.0, name=None):
        if bandwidth <= 0:
            raise SimulationError("bandwidth must be positive")
        self.engine = engine
        self.bandwidth = float(bandwidth)  # bytes per ns
        self.latency = float(latency)
        self.name = name
        self._busy_until = 0.0
        self.bytes_transferred = 0
        self.busy_time = 0.0

    def transfer(self, size, priority_delay=0.0):
        """Schedule a ``size``-byte transfer; returns its completion event.

        ``priority_delay`` adds an artificial wait before the transfer starts
        (used by schedulers to model deferral without re-queueing).
        """
        if size < 0:
            raise SimulationError("cannot transfer a negative size")
        start = max(self.engine.now + priority_delay, self._busy_until)
        duration = size / self.bandwidth
        self._busy_until = start + duration
        self.bytes_transferred += size
        self.busy_time += duration
        done_at = self._busy_until + self.latency
        return self.engine.timeout(done_at - self.engine.now, value=size)

    def time_to_transfer(self, size):
        """Pure service time for ``size`` bytes, ignoring queueing."""
        return size / self.bandwidth + self.latency

    @property
    def backlog_ns(self):
        """How far in the future the pipe is already committed."""
        return max(0.0, self._busy_until - self.engine.now)

    def utilization(self, elapsed_ns):
        """Fraction of ``elapsed_ns`` the pipe spent transferring bytes."""
        if elapsed_ns <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed_ns)
