"""Deterministic randomness for workload generation.

All stochastic behavior in the simulator flows through :class:`SimRandom`
instances seeded explicitly, so a run is exactly reproducible — a requirement
for the property tests and for debugging scheduler interleavings.
"""

import random


class SimRandom(random.Random):
    """A seeded RNG with the distribution helpers workloads need."""

    def nonuniform(self, a, x, y):
        """TPC-C NURand(A, x, y) non-uniform distribution (clause 2.1.6).

        The constant C is fixed at construction-time per the spec's intent;
        we use A itself as a deterministic stand-in, which preserves the
        skew shape.
        """
        c = a // 2
        return (((self.randint(0, a) | self.randint(x, y)) + c) % (y - x + 1)) + x

    def exponential_ns(self, mean_ns):
        """Exponential inter-arrival time, clamped away from zero."""
        return max(1.0, self.expovariate(1.0 / mean_ns))

    def lognormal_bytes(self, median, sigma=0.5, minimum=1, maximum=None):
        """Log-normal size distribution for log-record sizing."""
        import math

        value = int(round(self.lognormvariate(math.log(median), sigma)))
        value = max(minimum, value)
        if maximum is not None:
            value = min(maximum, value)
        return value


def derive(seed, *labels):
    """Derive a child RNG deterministically from a seed and string labels.

    Lets each component (per warehouse, per worker, per device) own an
    independent stream that does not perturb the others when one component
    draws more numbers.
    """
    material = ":".join([str(seed), *map(str, labels)])
    return SimRandom(material)
