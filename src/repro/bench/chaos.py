"""Chaos harness entry point: one seeded fault-injection run from the shell.

Thin CLI-facing wrapper around :func:`repro.faults.run_chaos`.  Builds a
replicated chain, drives the seeded workload while a
:class:`~repro.faults.injector.ChaosInjector` walks the fault plan
(seed-derived, or loaded from a ``--faults`` JSON file), crashes the
primary, recovers, and reports every oracle verdict.

Usage::

    python -m repro.bench chaos --seed 7
    python -m repro.bench chaos --seed 7 --faults plan.json --json out.json
"""

import json

from repro.faults.plan import FaultPlan
from repro.faults.scenario import run_chaos


def load_plan(path):
    """Load a :class:`FaultPlan` from a JSON file written by ``to_json``
    (or hand-written: a list of ``{"time_ns", "site", "kind"}`` dicts,
    optionally wrapped in ``{"faults": [...]}`` or ``{"plan": [...]}``)."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if isinstance(payload, dict):
        payload = payload.get("faults") or payload["plan"]
    return FaultPlan.from_dicts(payload)


def run_chaos_bench(seed=7, secondaries=2, duration_ns=8_000_000.0,
                    plan=None, fault_events=6, transactions=160,
                    collect_snapshots=False):
    """Run one chaos scenario and flatten the result into report rows."""
    result = run_chaos(
        seed=seed,
        secondaries=secondaries,
        duration_ns=duration_ns,
        plan=plan,
        fault_events=fault_events,
        transactions=transactions,
        collect_snapshots=collect_snapshots,
    )
    rows = [
        {
            "oracle": name,
            "verdict": "ok" if not violations else "VIOLATED",
            "violations": len(violations),
            "detail": "; ".join(violations[:2]),
        }
        for name, violations in sorted(result["oracles"].items())
    ]
    return result, rows
