"""Experiment E2 / Fig. 10: write combining vs uncached, by write size.

Section 6.2: the fast side is byte-addressable, but every store becomes a
TLP, and per-packet overhead dominates small writes.  The experiment
pushes a fixed volume through the CMB MMIO window with store sizes from
1 to 512 bytes, under Write-Combining and Uncached mappings, for SRAM-
and DRAM-backed CMBs, and reports throughput normalized to the best
configuration.

Expected shape: WC >= UC at every size; SRAM peaks at 64-byte stores
(one WC buffer per TLP); DRAM plateaus from small sizes because its port
is the bottleneck, not the link.
"""

from repro.bench.parallel import run_cells
from repro.core.cmb import CmbModule
from repro.pcie.link import PcieLink
from repro.pcie.mmio import CachePolicy, MmioRegion
from repro.pm.backing import dram_backing, sram_backing
from repro.sim import Engine
from repro.sim.units import KIB

WRITE_SIZES = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)
POLICIES = ("WC", "UC")
BACKINGS = ("sram", "dram")


def run_one(backing_kind, policy_name, write_bytes, total_bytes=256 * KIB):
    """Push ``total_bytes`` through the fast side; returns bytes/ns."""
    engine = Engine()
    link = PcieLink(engine, lanes=4, gen=2)  # the paper's constrained x4 Gen2
    if backing_kind == "sram":
        backing = sram_backing(engine, capacity=1 << 30)
    else:
        backing = dram_backing(engine, capacity=1 << 30)
    cmb = CmbModule(engine, backing, queue_bytes=32 * KIB)
    cmb.start()
    policy = (
        CachePolicy.WRITE_COMBINING if policy_name == "WC"
        else CachePolicy.UNCACHED
    )
    region = MmioRegion(engine, link, size=1 << 30, policy=policy)
    region.on_write(cmb.receive_tlp)

    def writer():
        # Each write is one log append and must be individually ordered
        # (the record is not complete until all its bytes are pushed out),
        # so a fence follows every write — the discipline under which the
        # paper finds 64-byte writes optimal.
        offset = 0
        while offset < total_bytes:
            size = min(write_bytes, total_bytes - offset)
            yield region.store(
                offset, size,
                tag={"contributions": [(offset, size, None)]},
            )
            yield region.fence()
            offset += size

    start = engine.now
    done = engine.process(writer())
    # This stack has no perpetual timers: the run drains naturally once
    # the last byte persists, so engine.now is the completion time.
    engine.run()
    if not done.triggered:
        raise RuntimeError("writer did not finish")
    if cmb.credit.value < total_bytes:
        raise RuntimeError("pipeline stalled before persistence")
    elapsed = engine.now - start
    return {
        "backing": backing_kind,
        "policy": policy_name,
        "write_bytes": write_bytes,
        "throughput_bytes_per_ns": total_bytes / elapsed,
        "tlps": region.tlps_emitted,
    }


def cells(write_sizes=WRITE_SIZES, backings=BACKINGS, total_bytes=256 * KIB):
    """The figure's independent cells, in output order."""
    return [
        {"backing_kind": backing, "policy_name": policy,
         "write_bytes": size, "total_bytes": total_bytes}
        for backing in backings
        for policy in POLICIES
        for size in write_sizes
    ]


def run_fig10(write_sizes=WRITE_SIZES, backings=BACKINGS,
              total_bytes=256 * KIB, jobs=None):
    """The full figure, with per-backing normalization to the best cell."""
    rows = run_cells(
        run_one, cells(write_sizes, backings, total_bytes), jobs=jobs
    )
    for backing in backings:
        best = max(
            row["throughput_bytes_per_ns"]
            for row in rows
            if row["backing"] == backing
        )
        for row in rows:
            if row["backing"] == backing:
                row["normalized"] = row["throughput_bytes_per_ns"] / best
    return rows
