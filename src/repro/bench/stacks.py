"""Shared stack builders for the benchmark experiments.

Every experiment needs "a Villars device with the paper's shape" or one
of the baseline logging paths; these builders centralize the default
parameters so all figures run against the same simulated hardware.
"""

from repro.core.config import villars_dram, villars_sram
from repro.core.device import XssdDevice
from repro.db.engine import Database
from repro.host.api import XssdLogFile
from repro.host.baselines import NoLogFile, NvdimmLogFile, NvmeLogFile
from repro.nand.geometry import Geometry
from repro.nand.timing import NandTiming
from repro.pm.nvdimm import Nvdimm
from repro.sim import Engine
from repro.sim.units import KIB, MIB
from repro.workloads.tpcc import TpccWorkload

# Simulated CPU time one in-memory TPC-C transaction costs a worker.
# ERMIA-class engines reach ~300-400 ktxn/s on 8 cores; ~18 us/txn puts
# the no-log ceiling in that band.
TXN_CPU_NS = 18_000.0

# Group commit setup from the paper: 16 KB threshold.
GROUP_COMMIT_BYTES = 16 * KIB
GROUP_COMMIT_TIMEOUT_NS = 50_000.0


def bench_ssd_config(**overrides):
    """A Cosmos+-shaped conventional side scaled for simulation speed.

    Full channel/way parallelism (that drives the bandwidth behavior);
    fewer blocks per die (that only bounds capacity, and the destage ring
    wraps anyway).
    """
    base = dict(
        geometry=Geometry(channels=8, ways_per_channel=8, blocks_per_die=48,
                          pages_per_block=64, page_bytes=16 * KIB),
        timing=NandTiming(),  # Cosmos+ MLC defaults
        data_buffer_bytes=16 * MIB,
    )
    base.update(overrides)
    from repro.ssd.device import SsdConfig

    return SsdConfig(**base)


def nand_realistic_config(**overrides):
    """:func:`bench_ssd_config` with the NAND realism pack switched on.

    Two planes per die, cache-program pipelining, multi-plane write
    batching, and erase suspend/resume for GC erases — the backend the
    fig12-on-realistic-NAND variant and the nand bench run against.
    """
    from repro.nand.dies import DieQos

    base = dict(
        geometry=Geometry(channels=8, ways_per_channel=8, blocks_per_die=48,
                          pages_per_block=64, page_bytes=16 * KIB,
                          planes_per_die=2),
        qos=DieQos(suspend_for_reads=True, suspendable_classes=("gc",),
                   multi_plane_writes=True, cache_program=True),
    )
    base.update(overrides)
    return bench_ssd_config(**base)


def build_villars(engine, kind="sram", queue_bytes=32 * KIB, **overrides):
    """A started Villars device with bench defaults."""
    factory = villars_sram if kind == "sram" else villars_dram
    config = factory(
        ssd=bench_ssd_config(),
        cmb_queue_bytes=queue_bytes,
        destage_ring_blocks=1 << 16,
        **overrides,
    )
    return XssdDevice(engine, config, name=f"villars-{kind}").start()


def build_log_file(engine, setup):
    """One of Fig. 9's five logging setups; returns (log_file, teardown)."""
    if setup == "no-log":
        return NoLogFile(engine)
    if setup == "memory":
        return NvdimmLogFile(engine, Nvdimm(engine, capacity=1 << 34))
    if setup == "nvme":
        from repro.ssd.device import ConventionalSsd

        ssd = ConventionalSsd(engine, bench_ssd_config(), name="nvme").start()
        return NvmeLogFile(engine, ssd)
    if setup == "villars-sram":
        return XssdLogFile(build_villars(engine, "sram"))
    if setup == "villars-dram":
        return XssdLogFile(build_villars(engine, "dram"))
    raise ValueError(f"unknown logging setup {setup!r}")


def build_tpcc_database(engine, log_file, workers):
    """A populated TPC-C database with the paper's logging discipline.

    ERMIA pins one log writer per core (the servers have 8), so the
    flush pipeline is 8 deep regardless of how many workers generate
    transactions — that is what keeps the device busy even at low worker
    counts while the per-flush latency still shows up in commit latency.
    """
    database = Database(
        engine, log_file,
        group_commit_bytes=GROUP_COMMIT_BYTES,
        group_commit_timeout_ns=GROUP_COMMIT_TIMEOUT_NS,
        max_inflight_flushes=8,
    )
    TpccWorkload.create_schema(database)
    TpccWorkload().populate(database)
    return database
