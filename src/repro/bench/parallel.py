"""Parallel figure sweeps: fan independent cells over worker processes.

Every figure is a grid of independent cells, and each cell builds its own
private :class:`~repro.sim.Engine` — no state is shared between cells, so
the sweep is embarrassingly parallel.  ``run_cells`` executes a figure's
cell list either serially or over a ``ProcessPoolExecutor``; results come
back **in cell order** regardless of worker scheduling, so a parallel run
is byte-identical to a serial one (each cell seeds and runs its engine
independently; only wall-clock time changes).

Cells are described as keyword-argument dicts for a module-level cell
function (picklable by the pool workers).
"""

import os
from concurrent.futures import ProcessPoolExecutor


def default_jobs():
    """A sensible worker count for `--jobs 0`: one per available core."""
    return os.cpu_count() or 1


def _invoke(payload):
    cell_fn, kwargs = payload
    return cell_fn(**kwargs)


def run_cells(cell_fn, cells, jobs=None):
    """Run ``cell_fn(**cell)`` for every cell; returns results in cell order.

    ``jobs``: ``None``/``1`` runs serially in-process; ``0`` uses one worker
    per core; ``N > 1`` caps the pool at ``N`` workers.  ``cell_fn`` must be
    picklable (a module-level function) when ``jobs`` enables the pool.
    """
    cells = list(cells)
    if jobs is not None and jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        jobs = default_jobs()
    if jobs is None or jobs == 1 or len(cells) <= 1:
        return [cell_fn(**cell) for cell in cells]
    workers = min(jobs, len(cells))
    payloads = [(cell_fn, cell) for cell in cells]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        # pool.map preserves input order, which is what makes parallel
        # output identical to serial output.
        return list(pool.map(_invoke, payloads))
