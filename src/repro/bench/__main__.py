"""Command-line entry point: regenerate any paper figure from the shell.

Usage::

    python -m repro.bench fig09 [--txns 150] [--workers 1 2 4 8]
    python -m repro.bench fig10 [--total-kib 256]
    python -m repro.bench fig11 [--writes 64]
    python -m repro.bench fig12 [--duration-ms 40]
    python -m repro.bench fig13 [--periods 0.4 0.8 1.2 1.6] [--writes 200]
    python -m repro.bench all
    python -m repro.bench kernel [--events 200000] [--repeat 3]
    python -m repro.bench nand [--reads 96] [--aged-reads 400] [--pages 32]
    python -m repro.bench chaos [--seed 7] [--faults plan.json]
    python -m repro.bench check [--scenario chain --budget 200 ...]
    python -m repro.bench health [--scenario failover|overload|all] [--seed 7]
    python -m repro.bench fleet [--devices 1 2 4] [--tenants 3] [--seed 7]
    python -m repro.bench dr [--txns 500] [--shards 2] [--seed 7]
    python -m repro.bench slo [--tenants 12] [--target-p99-us 150] [--seed 7]
    python -m repro.bench trace [--scenario chain|fig09|chaos] [--out t.json]

Every subcommand accepts ``--jobs N`` (fan the figure's independent cells
over N worker processes; 0 = one per core) and ``--json PATH`` (also write
the structured rows as JSON, e.g. ``BENCH_fig09.json``).  Figure and chaos
subcommands also accept ``--trace PATH``, which captures a Perfetto-loadable
Chrome trace of the whole run (serial execution is forced, since pool
workers' engines live out of the tracer's reach).  Figure-specific flags
live on their own subparser, so a flag that a figure does not understand is
an error instead of being silently ignored.

Prints the same tables the pytest benchmarks print, without requiring
pytest — handy for quick sweeps with custom parameters.
"""

import argparse
import json
import sys

from repro.bench import (
    format_series,
    format_table,
    load_plan,
    run_chaos_bench,
    run_fig09,
    run_fig10,
    run_fig11,
    run_fig12,
    run_fig13,
    run_dr_bench,
    run_fleet_bench,
    run_kernel_bench,
    run_nand_bench,
    run_slo_bench,
)
from repro.sim.units import KIB


def _jobs(args):
    return getattr(args, "jobs", None)


def _fig09(args):
    rows = run_fig09(
        worker_counts=tuple(getattr(args, "workers", None) or (1, 2, 4, 8)),
        transactions_per_worker=getattr(args, "txns", 150),
        jobs=_jobs(args),
    )
    print(format_table(rows, (
        ("setup", "setup", ""),
        ("workers", "workers", "d"),
        ("mean_latency_us", "latency [us]", ".1f"),
        ("throughput_ktps", "throughput [ktxn/s]", ".1f"),
    ), title="Fig. 9 — logging to local storage"))
    print("\nlatency series [us]:")
    print(format_series(rows, "workers", "mean_latency_us", "setup"))
    print("throughput series [ktxn/s]:")
    print(format_series(rows, "workers", "throughput_ktps", "setup"))
    return rows


def _fig10(args):
    rows = run_fig10(
        total_bytes=getattr(args, "total_kib", 256) * KIB,
        jobs=_jobs(args),
    )
    print(format_table(rows, (
        ("backing", "backing", ""),
        ("policy", "policy", ""),
        ("write_bytes", "write [B]", "d"),
        ("throughput_bytes_per_ns", "throughput [GB/s]", ".3f"),
        ("normalized", "normalized", ".3f"),
    ), title="Fig. 10 — write combining"))
    return rows


def _fig11(args):
    rows = run_fig11(writes=getattr(args, "writes", 64), jobs=_jobs(args))
    print(format_table(rows, (
        ("queue_kib", "queue [KiB]", "d"),
        ("group_kib", "group [KiB]", "d"),
        ("mean_latency_us", "latency [us]", ".1f"),
        ("throughput_mb_per_s", "throughput [MB/s]", ".0f"),
        ("credit_checks", "checks", "d"),
    ), title="Fig. 11 — group commit x queue size"))
    return rows


def _fig12(args):
    rows = run_fig12(
        duration_ns=getattr(args, "duration_ms", 40) * 1e6,
        jobs=_jobs(args),
        backend=getattr(args, "backend", "ideal"),
    )
    print(format_table(rows, (
        ("mode", "mode", ""),
        ("fast_offered_pct", "fast offered [%]", ".0f"),
        ("conv_achieved_pct", "conv achieved [%]", ".1f"),
        ("fast_achieved_pct", "fast achieved [%]", ".1f"),
    ), title="Fig. 12 — opportunistic destaging"))
    return rows


def _fig13(args):
    rows = run_fig13(
        update_periods_us=tuple(
            getattr(args, "periods", None) or (0.4, 0.8, 1.2, 1.6)
        ),
        writes=getattr(args, "writes", 200),
        jobs=_jobs(args),
    )
    print(format_table(rows, (
        ("update_period_us", "period [us]", ".1f"),
        ("latency_low_us", "low [us]", ".2f"),
        ("latency_median_us", "median [us]", ".2f"),
        ("latency_high_us", "high [us]", ".2f"),
        ("latency_spread_us", "spread [us]", ".2f"),
        ("bandwidth_pct", "bandwidth [%]", ".2f"),
    ), title="Fig. 13 — replication delay"))
    return rows


def _kernel(args):
    rows = run_kernel_bench(
        events=getattr(args, "events", 200_000),
        repeat=getattr(args, "repeat", 3),
    )
    print(format_table(rows, (
        ("workload", "workload", ""),
        ("events", "events", "d"),
        ("events_per_sec_m", "current [Mev/s]", ".3f"),
        ("seed_events_per_sec_m", "seed [Mev/s]", ".3f"),
        ("speedup_vs_seed", "speedup", ".2f"),
    ), title="Kernel microbenchmark — events/sec vs the seed engine"))
    return rows


def _nand(args):
    result = run_nand_bench(
        reads=getattr(args, "reads", 96),
        aged_reads=getattr(args, "aged_reads", 400),
        pages=getattr(args, "pages", 32),
    )
    print(format_table(result["suspend"], (
        ("cell", "cell", ""),
        ("reads", "reads", "d"),
        ("read_p50_us", "p50 [us]", ".1f"),
        ("read_p99_us", "p99 [us]", ".1f"),
        ("suspends", "suspends", "d"),
        ("resumes", "resumes", "d"),
    ), title="NAND — read tail vs erase suspend/resume"))
    print()
    print(format_table(result["aged"], (
        ("cell", "cell", ""),
        ("reads", "reads", "d"),
        ("read_retries", "retries", "d"),
        ("read_retirements", "retirements", "d"),
        ("blocks_retired", "blocks retired", "d"),
        ("ecc_errors", "ECC errors", "d"),
    ), title="NAND — aging, retry-then-retire"))
    print()
    print(format_table(result["pipeline"], (
        ("cell", "cell", ""),
        ("pages", "pages", "d"),
        ("per_page_us", "per page [us]", ".1f"),
        ("throughput_mb_per_s", "throughput [MB/s]", ".1f"),
    ), title="NAND — cache-program / multi-plane pipelining"))
    return result


def _chaos(args):
    plan = None
    if getattr(args, "faults", None):
        plan = load_plan(args.faults)
    result, rows = run_chaos_bench(
        seed=getattr(args, "seed", 7),
        secondaries=getattr(args, "secondaries", 2),
        duration_ns=getattr(args, "duration_ms", 8.0) * 1e6,
        plan=plan,
        fault_events=getattr(args, "fault_events", 6),
        transactions=getattr(args, "txns", 160),
        collect_snapshots=True,
    )
    print(f"chaos run: seed={result['seed']} "
          f"chain={'->'.join(result['chain_order'])} "
          f"kinds={','.join(result['fault_kinds'])}")
    for entry in result["fault_log"]:
        print(f"  t={entry['time_ns'] / 1e6:7.3f} ms  "
              f"{entry['kind']:<20} {entry['site']:<12} {entry['detail']}")
    print(format_table(rows, (
        ("oracle", "oracle", ""),
        ("verdict", "verdict", ""),
        ("violations", "violations", "d"),
        ("detail", "detail", ""),
    ), title="Chaos oracles"))
    print(f"\ncommits acknowledged: {result['commits_acknowledged']}, "
          f"transactions recovered: {result['transactions_recovered']}, "
          f"ok: {result['ok']}")
    if not result["ok"]:
        _dump_chaos_diagnostics(result)
        raise SystemExit(1)
    return result


def _dump_chaos_diagnostics(result):
    """On an oracle violation, dump post-crash device state (and, when a
    trace capture is active, the tail of the event log) to stderr."""
    from repro.core.metrics import format_snapshot
    from repro.obs.trace import current_session

    print("\noracle violation — post-crash device snapshots:",
          file=sys.stderr)
    for name, snapshot in sorted(result.get("snapshots", {}).items()):
        print(f"\n[{name}]", file=sys.stderr)
        print(format_snapshot(snapshot, indent=1), file=sys.stderr)
    session = current_session()
    if session is not None:
        print("\ntrace tail (most recent events last):", file=sys.stderr)
        for line in session.tail(limit=40):
            print(f"  {line}", file=sys.stderr)


def _health_oracle_rows(oracles):
    return [
        {
            "oracle": name,
            "verdict": "PASS" if not violations else "FAIL",
            "violations": len(violations),
            "detail": violations[0] if violations else "",
        }
        for name, violations in sorted(oracles.items())
    ]


def _health(args):
    from repro.health.scenarios import (
        run_failover_scenario,
        run_overload_scenario,
    )

    which = getattr(args, "scenario", "all")
    seed = getattr(args, "seed", 7)
    results = []
    if which in ("failover", "all"):
        result = run_failover_scenario(seed=seed)
        results.append(result)
        print(f"failover: seed={result['seed']} victim={result['victim']} "
              f"killed at {result['kill_at_ns'] / 1e6:.3f} ms; final chain "
              f"{'->'.join(result['chain_order'])}")
        for entry in result["events"]:
            print(f"  t={entry['time_ns'] / 1e6:7.3f} ms  "
                  f"{entry['action']:<15} {entry['site']:<12} "
                  f"{entry['detail']}")
        detection = result["detection_ns"]
        loop = result["kill_to_resync_ns"]
        print(f"  detection window: "
              f"{'-' if detection is None else f'{detection:.0f}'} ns "
              f"(bound {result['detect_within_ns']:.0f}); kill-to-resync: "
              f"{'-' if loop is None else f'{loop:.0f}'} ns "
              f"(bound {result['resync_within_ns']:.0f})")
        print(format_table(_health_oracle_rows(result["oracles"]), (
            ("oracle", "oracle", ""),
            ("verdict", "verdict", ""),
            ("violations", "violations", "d"),
            ("detail", "detail", ""),
        ), title="Failover convergence oracles"))
        print()
    if which in ("overload", "all"):
        result = run_overload_scenario(seed=seed)
        results.append(result)
        print(f"overload: seed={result['seed']} writers={result['writers']} "
              f"completed={result['writes_completed']} "
              f"rejections={result['rejections']} "
              f"({result['rejections_by_reason']})")
        print(f"  backlog peaks: {result['backlog_peaks']}; chunks shed: "
              f"{result['chunks_shed']}")
        entered = result["brownout_entered_at_ns"]
        exited = result["brownout_exited_at_ns"]
        print(f"  brownout: enter at "
              f"{'-' if entered is None else f'{entered / 1e6:.3f} ms'}, "
              f"exit at "
              f"{'-' if exited is None else f'{exited / 1e6:.3f} ms'}; "
              f"final policy {result['final_policy']}")
        print(format_table(_health_oracle_rows(result["oracles"]), (
            ("oracle", "oracle", ""),
            ("verdict", "verdict", ""),
            ("violations", "violations", "d"),
            ("detail", "detail", ""),
        ), title="Overload protection oracles"))
    if not all(result["ok"] for result in results):
        raise SystemExit(1)
    return results


def _fleet(args):
    result = run_fleet_bench(
        device_counts=tuple(getattr(args, "devices", None) or (1, 2, 4)),
        tenants_per_device=getattr(args, "tenants", 3),
        duration_ms=getattr(args, "duration_ms", 2.0),
        seed=getattr(args, "seed", 7),
        replicas=getattr(args, "replicas", 1),
        hot=not getattr(args, "no_hot", False),
        hot_duration_ms=getattr(args, "hot_duration_ms", 10.0),
        jobs=_jobs(args),
    )
    print(format_table(result["scaling"], (
        ("devices", "devices", "d"),
        ("tenants", "tenants", "d"),
        ("commits", "commits", "d"),
        ("ktxn_per_s", "throughput [ktxn/s]", ".1f"),
        ("efficiency", "efficiency", ".2f"),
        ("admission_rejections", "rejections", "d"),
    ), title="Fleet — aggregate throughput vs device count"))
    hot = result["hot"]
    if hot is not None:
        moves = [(m["shard"], m["source"], m["dest"]) for m in hot["moves"]]
        print(f"\nhot-shard: {hot['devices']} devices, "
              f"{hot['tenants']} tenants, hot at "
              f"{hot['hot_at_ms']:.2f} ms; migrations={hot['migrations']} "
              f"moves={moves}")
        if hot["converged"]:
            print(f"  rebalance converged in "
                  f"{hot['time_to_converge_ms']:.2f} ms "
                  f"(final imbalance {hot['final_imbalance']:.2f})")
        else:
            print(f"  NOT converged (imbalance "
                  f"{hot['final_imbalance']:.2f})")
        for event in hot["supervisor_events"]:
            print(f"  t={event['time_ns'] / 1e6:7.3f} ms  "
                  f"{event['action']:<20} {event['site']:<10} "
                  f"{event['detail']}")
    return result


def _dr(args):
    result = run_dr_bench(
        seed=getattr(args, "seed", 7),
        shards=getattr(args, "shards", 2),
        duration_ms=getattr(args, "duration_ms", 2.0),
        transactions=getattr(args, "txns", 500),
        key_space=getattr(args, "key_space", 8),
        segment_bytes=getattr(args, "segment_bytes", 4096),
        jobs=_jobs(args),
    )
    for row in result["steady"]:
        row["mode"] = "archived" if row["dr"] else "baseline"
    print(format_table(result["steady"], (
        ("mode", "mode", ""),
        ("shards", "shards", "d"),
        ("commits", "commits", "d"),
        ("ktxn_per_s", "throughput [ktxn/s]", ".1f"),
        ("overhead_pct", "overhead [%]", ".1f"),
    ), title="DR — archival overhead vs steady-state throughput"))
    rec = result["recovery"]
    print(f"\nrecovery: {rec['commits']} commits archived "
          f"({rec['wal_bytes_resynced']:.0f} WAL bytes, "
          f"{rec['archiver']['segments_shipped']} segments, "
          f"{rec['archiver']['snapshots_taken']} snapshots)")
    print(format_table([rec], (
        ("resync_ms", "chain resync [ms]", ".3f"),
        ("restore_ms", "archive restore [ms]", ".3f"),
        ("restore_speedup", "speedup", ".2f"),
        ("restored_rows", "rows", "d"),
        ("restored_matches", "state matches", ""),
    ), title="DR — replica repair: full chain resync vs archive restore"))
    if not (rec["restored_matches"] and rec["resync_complete"]
            and rec["restore_complete"]):
        raise SystemExit(1)
    return result


def _trace(args):
    from repro.bench.trace_cmd import run_trace

    metadata, summary = run_trace(
        scenario=getattr(args, "scenario", "chain"),
        out_path=getattr(args, "out", "trace.json"),
        summary_path=getattr(args, "summary", None),
        csv_path=getattr(args, "csv", None),
        seed=getattr(args, "seed", 7),
        secondaries=getattr(args, "secondaries", 2),
        transactions=getattr(args, "txns", None),
        duration_ns=(getattr(args, "duration_ms", None) or 0) * 1e6 or None,
    )
    return [{"metadata": metadata, "summary": summary}]


FIGURES = {
    "fig09": _fig09,
    "fig10": _fig10,
    "fig11": _fig11,
    "fig12": _fig12,
    "fig13": _fig13,
}


def _slo(args):
    result = run_slo_bench(
        seed=getattr(args, "seed", 7),
        nodes=getattr(args, "nodes", 2),
        tenants=getattr(args, "tenants", 12),
        day_ms=getattr(args, "day_ms", 3.0),
        windows=getattr(args, "windows", 12),
        target_p99_us=getattr(args, "target_p99_us", 150.0),
        mean_gap_us=getattr(args, "mean_gap_us", 2.0),
        crowd_amplitude=getattr(args, "crowd_amplitude", 8.0),
        jobs=_jobs(args),
    )
    baseline = result["runs"]["baseline"]
    controlled = result["runs"]["controlled"]
    series = []
    for base_row, ctl_row in zip(baseline["windows"],
                                 controlled["windows"]):
        series.append({
            "window": base_row["window"],
            "baseline_p99_us": (base_row["p99_ns"] / 1e3
                                if base_row["p99_ns"] is not None else ""),
            "controlled_p99_us": (ctl_row["p99_ns"] / 1e3
                                  if ctl_row["p99_ns"] is not None else ""),
            "target_us": result["target_p99_us"],
        })
    print(format_table(series, (
        ("window", "window", "d"),
        ("baseline_p99_us", "baseline p99 [us]", ".1f"),
        ("controlled_p99_us", "controlled p99 [us]", ".1f"),
        ("target_us", "target [us]", ".1f"),
    ), title="SLO — per-window p99 vs target across the compressed day"))
    summary = [
        {
            "mode": label,
            "commits": run["commits"],
            "violated_windows": run["violated_windows"],
            "slo_minutes_violated": run["slo_minutes_violated"],
        }
        for label, run in (("baseline", baseline),
                           ("controlled", controlled))
    ]
    print(format_table(summary, (
        ("mode", "mode", ""),
        ("commits", "commits", "d"),
        ("violated_windows", "violated windows", "d"),
        ("slo_minutes_violated", "SLO-minutes violated", ".0f"),
    ), title="SLO — day summary"))
    print(f"\ncontroller: {controlled.get('escalations', 0)} escalations, "
          f"{controlled.get('deescalations', 0)} de-escalations, "
          f"{controlled.get('invariant_violations', 0)} durability-fence "
          f"violations; SLO-minutes saved: {result['slo_minutes_saved']:.0f}")
    return result


def _jobs_count(text):
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"jobs must be >= 0, got {value}")
    return value


def _add_common_flags(sub):
    sub.add_argument("--jobs", type=_jobs_count, default=None, metavar="N",
                     help="run the figure's cells over N worker processes "
                          "(0 = one per core; default: serial)")
    sub.add_argument("--json", metavar="PATH", default=None,
                     help="also write the structured rows as JSON to PATH")
    sub.add_argument("--trace", metavar="PATH", default=None,
                     help="capture a Chrome trace-event file of the run to "
                          "PATH (forces serial execution)")


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation figures.",
    )
    subparsers = parser.add_subparsers(dest="figure", required=True,
                                       metavar="figure")

    fig09 = subparsers.add_parser(
        "fig09", help="logging to local storage (latency/throughput)")
    fig09.add_argument("--txns", type=int, default=150,
                       help="transactions per worker")
    fig09.add_argument("--workers", type=int, nargs="+",
                       default=[1, 2, 4, 8],
                       help="worker counts to sweep")

    fig10 = subparsers.add_parser(
        "fig10", help="write combining vs uncached, by write size")
    fig10.add_argument("--total-kib", type=int, default=256,
                       help="KiB pushed through the fast side per cell")

    fig11 = subparsers.add_parser(
        "fig11", help="group-commit size x CMB queue size")
    fig11.add_argument("--writes", type=int, default=64,
                       help="group writes per cell")

    fig12 = subparsers.add_parser(
        "fig12", help="opportunistic destaging under contention")
    fig12.add_argument("--duration-ms", type=float, default=40,
                       help="simulated milliseconds per cell")
    fig12.add_argument("--backend", choices=["ideal", "realistic"],
                       default="ideal",
                       help="flash model: idealized array or the NAND "
                            "realism pack (planes, cache program, suspend)")

    fig13 = subparsers.add_parser(
        "fig13", help="shadow-counter freshness vs update period")
    fig13.add_argument("--periods", type=float, nargs="+",
                       default=[0.4, 0.8, 1.2, 1.6],
                       help="update periods to sweep [us]")
    fig13.add_argument("--writes", type=int, default=200,
                       help="measured writes per cell")

    subparsers.add_parser("all", help="every figure with default parameters")

    kernel = subparsers.add_parser(
        "kernel", help="DES kernel microbenchmark (events/sec vs seed)")
    kernel.add_argument("--events", type=int, default=200_000,
                        help="events per workload run")
    kernel.add_argument("--repeat", type=int, default=3,
                        help="runs per engine; best rate is kept")

    nand = subparsers.add_parser(
        "nand", help="NAND realism: erase suspend tail, aging, pipelining")
    nand.add_argument("--reads", type=int, default=96,
                      help="paced reads in the suspend cell")
    nand.add_argument("--aged-reads", type=int, default=400,
                      help="reads per aging variant")
    nand.add_argument("--pages", type=int, default=32,
                      help="pages in the pipelining write stream")

    chaos = subparsers.add_parser(
        "chaos", help="seeded fault-injection run with durability oracles")
    chaos.add_argument("--seed", type=int, default=7,
                       help="master seed (workload, plan, fault models)")
    chaos.add_argument("--faults", metavar="PLAN_JSON", default=None,
                       help="JSON fault plan overriding the seed-derived one")
    chaos.add_argument("--secondaries", type=int, default=2,
                       help="chain length behind the primary")
    chaos.add_argument("--duration-ms", type=float, default=8.0,
                       help="simulated milliseconds before the final crash")
    chaos.add_argument("--fault-events", type=int, default=6,
                       help="events in the seed-derived plan")
    chaos.add_argument("--txns", type=int, default=160,
                       help="transactions in the primary workload")

    subparsers.add_parser(
        "check",
        help="crash-consistency model checker (python -m repro.check)",
        add_help=False,
    )

    health = subparsers.add_parser(
        "health",
        help="self-healing control plane: supervised failover + overload")
    health.add_argument("--scenario", choices=["failover", "overload", "all"],
                        default="all",
                        help="which health scenario to run (default: all)")
    health.add_argument("--seed", type=int, default=7,
                        help="scenario seed")

    fleet = subparsers.add_parser(
        "fleet",
        help="sharded fleet: throughput scaling + hot-shard rebalance")
    fleet.add_argument("--devices", type=int, nargs="+", default=[1, 2, 4],
                       help="device counts for the scaling sweep")
    fleet.add_argument("--tenants", type=int, default=3,
                       help="tenants (shards) per device")
    fleet.add_argument("--duration-ms", type=float, default=2.0,
                       help="simulated milliseconds per scaling cell")
    fleet.add_argument("--hot-duration-ms", type=float, default=10.0,
                       help="simulated milliseconds for the hot-shard cell")
    fleet.add_argument("--seed", type=int, default=7,
                       help="fleet seed (workloads, device fault models)")
    fleet.add_argument("--replicas", type=int, default=1,
                       help="secondaries per fleet node chain")
    fleet.add_argument("--no-hot", action="store_true",
                       help="skip the hot-shard rebalance cell")

    dr = subparsers.add_parser(
        "dr", help="disaster recovery: archival overhead + restore vs resync")
    dr.add_argument("--seed", type=int, default=7,
                    help="workload/device seed")
    dr.add_argument("--shards", type=int, default=2,
                    help="shards (writers) on the archived node")
    dr.add_argument("--duration-ms", type=float, default=2.0,
                    help="simulated milliseconds per steady-state cell")
    dr.add_argument("--txns", type=int, default=500,
                    help="transactions per shard in the recovery cell")
    dr.add_argument("--key-space", type=int, default=8,
                    help="distinct keys per shard (small = snapshot "
                         "compacts more history)")
    dr.add_argument("--segment-bytes", type=int, default=4096,
                    help="WAL bytes per archived segment")

    slo = subparsers.add_parser(
        "slo", help="SLO control plane: a compressed day with/without the "
                    "controller")
    slo.add_argument("--seed", type=int, default=7,
                     help="traffic/device seed")
    slo.add_argument("--nodes", type=int, default=2,
                     help="fleet nodes (replication chains)")
    slo.add_argument("--tenants", type=int, default=12,
                     help="diurnal tenants (Zipf-sized)")
    slo.add_argument("--day-ms", type=float, default=3.0,
                     help="simulated milliseconds per compressed day")
    slo.add_argument("--windows", type=int, default=12,
                     help="SLO evaluation windows across the day")
    slo.add_argument("--target-p99-us", type=float, default=150.0,
                     help="the p99 commit-latency SLO target")
    slo.add_argument("--mean-gap-us", type=float, default=2.0,
                     help="fleet-mean transaction interarrival gap")
    slo.add_argument("--crowd-amplitude", type=float, default=8.0,
                     help="flash-crowd rate multiplier amplitude")

    trace = subparsers.add_parser(
        "trace", help="capture a full-stack trace of one scenario")
    trace.add_argument("--scenario", choices=["chain", "fig09", "chaos"],
                       default="chain",
                       help="what to trace (default: replicated chain)")
    trace.add_argument("--out", metavar="PATH", default="trace.json",
                       help="Chrome trace-event output file")
    trace.add_argument("--summary", metavar="PATH", default=None,
                       help="also write the per-stage latency summary JSON")
    trace.add_argument("--csv", metavar="PATH", default=None,
                       help="also write the per-stage summary as CSV")
    trace.add_argument("--seed", type=int, default=7,
                       help="scenario seed")
    trace.add_argument("--secondaries", type=int, default=2,
                       help="chain length behind the primary "
                            "(chain/chaos scenarios)")
    trace.add_argument("--txns", type=int, default=None,
                       help="override the scenario's transaction count")
    trace.add_argument("--duration-ms", type=float, default=None,
                       help="override the scenario's time budget")

    for sub in (fig09, fig10, fig11, fig12, fig13, kernel, nand, chaos,
                health, fleet, dr, slo, subparsers.choices["all"]):
        _add_common_flags(sub)
    return parser


def _write_json(path, figure, rows):
    payload = {"bench": figure, "rows": rows}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _capturing(trace_path, figure, body):
    """Run ``body()`` under a trace capture when ``trace_path`` is set."""
    if not trace_path:
        return body()
    from repro.obs import capture, write_chrome_trace

    with capture() as session:
        try:
            return body()
        finally:
            # Written even when the run fails (a chaos oracle violation
            # raises SystemExit): the trace of a failing run is exactly
            # the artifact worth keeping.
            write_chrome_trace(trace_path, session.tracers,
                               label=f"bench:{figure}")
            print(f"trace: {session.events_recorded} events -> {trace_path}",
                  file=sys.stderr)


def main(argv=None):
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv[:1] == ["check"]:
        # Pure passthrough before argparse (REMAINDER chokes on leading
        # options): the checker owns its CLI (see CHECKING.md).
        from repro.check.__main__ import main as check_main

        return check_main(argv[1:])
    args = build_parser().parse_args(argv)
    json_path = getattr(args, "json", None)
    trace_path = getattr(args, "trace", None)
    if trace_path and getattr(args, "jobs", None) not in (None, 1):
        # Worker processes build their engines out of the tracer's reach;
        # tracing implies the serial path so every engine is captured.
        print("note: --trace forces serial execution (--jobs ignored)",
              file=sys.stderr)
        args.jobs = None
    if args.figure == "all":
        def body():
            all_rows = {}
            for name, runner in FIGURES.items():
                all_rows[name] = runner(args)
                print()
            return all_rows

        all_rows = _capturing(trace_path, "all", body)
        if json_path:
            _write_json(json_path, "all", all_rows)
    else:
        extras = {"kernel": _kernel, "nand": _nand, "chaos": _chaos,
                  "trace": _trace, "health": _health, "fleet": _fleet,
                  "dr": _dr, "slo": _slo}
        runner = extras.get(args.figure) or FIGURES[args.figure]
        rows = _capturing(trace_path, args.figure, lambda: runner(args))
        if json_path:
            _write_json(json_path, args.figure, rows)
    return 0


if __name__ == "__main__":
    sys.exit(main())
