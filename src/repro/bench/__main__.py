"""Command-line entry point: regenerate any paper figure from the shell.

Usage::

    python -m repro.bench fig09 [--txns 150] [--workers 1 2 4 8]
    python -m repro.bench fig10
    python -m repro.bench fig11
    python -m repro.bench fig12
    python -m repro.bench fig13
    python -m repro.bench all

Prints the same tables the pytest benchmarks print, without requiring
pytest — handy for quick sweeps with custom parameters.
"""

import argparse
import sys

from repro.bench import (
    format_series,
    format_table,
    run_fig09,
    run_fig10,
    run_fig11,
    run_fig12,
    run_fig13,
)


def _fig09(args):
    rows = run_fig09(worker_counts=tuple(args.workers),
                     transactions_per_worker=args.txns)
    print(format_table(rows, (
        ("setup", "setup", ""),
        ("workers", "workers", "d"),
        ("mean_latency_us", "latency [us]", ".1f"),
        ("throughput_ktps", "throughput [ktxn/s]", ".1f"),
    ), title="Fig. 9 — logging to local storage"))
    print("\nlatency series [us]:")
    print(format_series(rows, "workers", "mean_latency_us", "setup"))
    print("throughput series [ktxn/s]:")
    print(format_series(rows, "workers", "throughput_ktps", "setup"))


def _fig10(args):
    rows = run_fig10()
    print(format_table(rows, (
        ("backing", "backing", ""),
        ("policy", "policy", ""),
        ("write_bytes", "write [B]", "d"),
        ("throughput_bytes_per_ns", "throughput [GB/s]", ".3f"),
        ("normalized", "normalized", ".3f"),
    ), title="Fig. 10 — write combining"))


def _fig11(args):
    rows = run_fig11()
    print(format_table(rows, (
        ("queue_kib", "queue [KiB]", "d"),
        ("group_kib", "group [KiB]", "d"),
        ("mean_latency_us", "latency [us]", ".1f"),
        ("throughput_mb_per_s", "throughput [MB/s]", ".0f"),
        ("credit_checks", "checks", "d"),
    ), title="Fig. 11 — group commit x queue size"))


def _fig12(args):
    rows = run_fig12()
    print(format_table(rows, (
        ("mode", "mode", ""),
        ("fast_offered_pct", "fast offered [%]", ".0f"),
        ("conv_achieved_pct", "conv achieved [%]", ".1f"),
        ("fast_achieved_pct", "fast achieved [%]", ".1f"),
    ), title="Fig. 12 — opportunistic destaging"))


def _fig13(args):
    rows = run_fig13()
    print(format_table(rows, (
        ("update_period_us", "period [us]", ".1f"),
        ("latency_low_us", "low [us]", ".2f"),
        ("latency_median_us", "median [us]", ".2f"),
        ("latency_high_us", "high [us]", ".2f"),
        ("latency_spread_us", "spread [us]", ".2f"),
        ("bandwidth_pct", "bandwidth [%]", ".2f"),
    ), title="Fig. 13 — replication delay"))


FIGURES = {
    "fig09": _fig09,
    "fig10": _fig10,
    "fig11": _fig11,
    "fig12": _fig12,
    "fig13": _fig13,
}


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation figures.",
    )
    parser.add_argument("figure", choices=[*FIGURES, "all"])
    parser.add_argument("--txns", type=int, default=150,
                        help="fig09: transactions per worker")
    parser.add_argument("--workers", type=int, nargs="+",
                        default=[1, 2, 4, 8],
                        help="fig09: worker counts to sweep")
    args = parser.parse_args(argv)
    if args.figure == "all":
        for name, runner in FIGURES.items():
            runner(args)
            print()
    else:
        FIGURES[args.figure](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
