"""DR benchmark: archival overhead and restore-vs-resync latency.

Two experiment families behind ``python -m repro.bench dr``:

* **steady-state** — the same seeded closed-loop workload twice, once
  with the per-node WAL archiver off and once shipping to the remote
  grid.  The archival path flows through the traced destage-ring scanner
  and the node's own engine, so any throughput it costs shows up as an
  overhead percentage against the archiver-off cell, alongside the
  archiver's own counters (segments, snapshots, bytes, lag at quiesce).
* **recovery** — one node runs a long workload over a small key space
  (so the snapshot compacts history the WAL keeps repeating), the
  archive drains, and the same disaster is repaired both ways:

  - *resync*: the replica is crashed, spliced out, and a factory-fresh
    replacement server reattaches at the chain tail — the primary
    re-offers its entire retained WAL, which must squeeze through the
    replacement's CMB and destage to NAND page by page;
  - *restore*: a fresh database reseeds from the grid
    (:func:`~repro.dr.restore.reseed_node_from_archive`) — snapshot
    plus segment replay at grid latency, no NAND in the path.

  The cell reports both clocks and their ratio; the restored database is
  diffed against the survivor's tables so the speedup never quietly
  trades away correctness.

Cells are independent and deterministic per seed, so ``--jobs`` fans
them over worker processes like every other figure.
"""

from repro.bench.parallel import run_cells
from repro.cluster.fleet import Fleet
from repro.db.txn import TransactionAborted
from repro.dr.grid import RemoteGrid
from repro.dr.restore import reseed_node_from_archive
from repro.faults.scenario import chaos_config_factory
from repro.health.errors import DeviceBusy
from repro.sim.engine import Engine
from repro.sim.rng import derive

# Engine-driving slice for the measured phases: small enough that the
# measured interval overshoots by well under the grid's base latency.
_STEP_NS = 5_000.0


def _writer(engine, shard, rng, key_space, think_ns, counters,
            transactions=None, deadline_ns=None):
    """One shard's closed-loop tenant (a sim process).

    Runs ``transactions`` commits, or until ``deadline_ns`` when the
    count is None.  ``counters`` tallies commits and completion so the
    cell driver can watch progress from outside the engine.
    """
    seq = 0
    while True:
        if transactions is not None and seq >= transactions:
            break
        if deadline_ns is not None and engine.now >= deadline_ns:
            break
        key = f"k{rng.randrange(key_space)}"
        value = f"{shard.shard_id}-v{seq}"

        def body(txn, key=key, value=value):
            txn.write("kv", key, value)

        while True:
            try:
                yield from shard.run_body(body)
                counters["commits"] += 1
                break
            except DeviceBusy as busy:
                yield engine.timeout(busy.retry_after_ns or 20_000.0)
            except TransactionAborted:
                break
        seq += 1
        if think_ns > 0:
            yield engine.timeout(think_ns)
    counters["done"] += 1


def _build(cell, dr):
    engine = Engine()
    fleet = Fleet(
        engine, chaos_config_factory(cell["seed"]),
        replicas=cell["replicas"],
        group_commit_bytes=384,
        group_commit_timeout_ns=5_000.0,
        max_inflight_flushes=1,
    )
    fleet.add_nodes(1)
    grid = None
    if dr:
        grid = RemoteGrid(engine, base_latency_ns=cell["grid_latency_ns"],
                          bandwidth_bytes_per_ns=cell["grid_bandwidth"])
        fleet.enable_dr(
            grid,
            poll_ns=cell["poll_ns"],
            segment_bytes=cell["segment_bytes"],
            snapshot_every_ns=cell["snapshot_every_ns"],
        )
    counters = {"commits": 0, "done": 0}
    for index in range(cell["shards"]):
        shard = fleet.create_shard(f"s{index}", node="node0")
        rng = derive(cell["seed"], f"dr-bench-writer-{index}")
        engine.process(
            _writer(engine, shard, rng, cell["key_space"], cell["think_ns"],
                    counters, transactions=cell.get("transactions"),
                    deadline_ns=(engine.now + cell["duration_ns"]
                                 if cell.get("duration_ns") else None)),
            name=f"dr-bench-writer-{index}",
        )
    return engine, fleet, grid, counters


def _drain_archivers(engine, fleet, cap_ns=20_000_000.0):
    """Stop the periodic loops, then ship everything outstanding."""
    flags = {"done": 0}
    archivers = [node.archiver for node in fleet.nodes.values()]
    for archiver in archivers:
        archiver.stop()

    def drainer(archiver):
        yield from archiver.drain()
        flags["done"] += 1

    for archiver in archivers:
        engine.process(drainer(archiver), name=f"{archiver.node}-drain")
    deadline = engine.now + cap_ns
    while flags["done"] < len(archivers) and engine.now < deadline:
        engine.run(until=engine.now + _STEP_NS)


def _dr_cell(**cell):
    if cell["kind"] == "steady":
        return _steady_cell(cell)
    return _recovery_cell(cell)


def _steady_cell(cell):
    engine, fleet, grid, counters = _build(cell, dr=cell["dr"])
    engine.run(until=engine.now + cell["duration_ns"])
    commits = fleet.total_commits()
    row = {
        "cell": "steady-state",
        "dr": cell["dr"],
        "shards": cell["shards"],
        "commits": commits,
        "ktxn_per_s": commits / (cell["duration_ns"] / 1e9) / 1e3,
    }
    if cell["dr"]:
        archiver = fleet.nodes["node0"].archiver
        row["archiver"] = archiver.stats()
        row["grid"] = grid.stats()
    fleet.stop()
    return row


def _recovery_cell(cell):
    from repro.cluster.server import Server
    from repro.db.engine import Database
    from repro.host.baselines import NoLogFile

    engine, fleet, grid, counters = _build(cell, dr=True)
    node = fleet.nodes["node0"]
    cluster = node.cluster

    # Phase 1: the workload, run to completion (fixed transaction count
    # so both repair paths recover the same history).
    workload_cap = engine.now + cell["workload_cap_ns"]
    while counters["done"] < cell["shards"] and engine.now < workload_cap:
        engine.run(until=engine.now + 50_000.0)
    _drain_archivers(engine, fleet)
    survivor_state = {
        name: dict(node.database.table(name).scan())
        for name in (f"s{i}.kv" for i in range(cell["shards"]))
    }

    # Phase 2: full chain resync.  The replica is lost for good; a
    # factory-fresh replacement joins at the tail with frontier zero, so
    # the primary re-offers its entire retained WAL.
    victim = "node0.secondary-1"
    cluster.servers[victim].crash()
    cluster.reconfigure_around(victim)
    replacement = Server(engine, "node0.secondary-r",
                         fleet.config_factory())
    replacement.start()
    cluster.servers[replacement.name] = replacement
    resync_start = engine.now
    offered = cluster.reattach(replacement.name)
    resync_deadline = resync_start + cell["repair_cap_ns"]
    while (replacement.device.cmb.credit.value < offered
           and engine.now < resync_deadline):
        engine.run(until=engine.now + _STEP_NS)
    resync_ns = engine.now - resync_start
    resync_complete = replacement.device.cmb.credit.value >= offered

    # Phase 3: restore the same history from the archive instead.
    restored_db = Database(engine, NoLogFile(engine))
    done = {}

    def reseed():
        _archive, rows = yield from reseed_node_from_archive(
            engine, grid, "node0", restored_db,
        )
        done["rows"] = rows

    engine.process(reseed(), name="dr-bench-reseed")
    restore_start = engine.now
    restore_deadline = restore_start + cell["repair_cap_ns"]
    while "rows" not in done and engine.now < restore_deadline:
        engine.run(until=engine.now + _STEP_NS)
    restore_ns = engine.now - restore_start

    restored_matches = all(
        dict(restored_db.table(name).scan()) == state
        if name in restored_db.tables() else not state
        for name, state in survivor_state.items()
    )
    archiver = node.archiver
    row = {
        "cell": "recovery",
        "commits": counters["commits"],
        "wal_bytes_resynced": offered,
        "resync_ms": resync_ns / 1e6,
        "resync_complete": resync_complete,
        "restore_ms": restore_ns / 1e6,
        "restore_complete": "rows" in done,
        "restored_rows": done.get("rows", 0),
        "restored_matches": restored_matches,
        "restore_speedup": (resync_ns / restore_ns if restore_ns > 0
                            else 0.0),
        "archiver": archiver.stats(),
        "grid": grid.stats(),
    }
    fleet.stop()
    return row


def run_dr_bench(seed=7, shards=2, duration_ms=2.0, transactions=500,
                 key_space=8, think_ns=2_000.0, segment_bytes=4096,
                 snapshot_every_ms=0.4, poll_us=30.0, grid_latency_us=20.0,
                 grid_bandwidth=2.0, replicas=1, jobs=None):
    """Run the DR figure: steady-state overhead plus restore-vs-resync.

    Returns a JSON-able dict: the two steady-state rows with the
    archival overhead percentage, and the recovery row with both repair
    clocks and their ratio.
    """
    base = {
        "seed": seed, "shards": shards, "key_space": key_space,
        "think_ns": think_ns, "replicas": replicas,
        "segment_bytes": segment_bytes,
        "snapshot_every_ns": snapshot_every_ms * 1e6,
        "poll_ns": poll_us * 1e3,
        "grid_latency_ns": grid_latency_us * 1e3,
        "grid_bandwidth": grid_bandwidth,
    }
    cells = [
        dict(base, kind="steady", dr=False, duration_ns=duration_ms * 1e6),
        dict(base, kind="steady", dr=True, duration_ns=duration_ms * 1e6),
        dict(base, kind="recovery", transactions=transactions,
             workload_cap_ns=200e6, repair_cap_ns=100e6),
    ]
    rows = run_cells(_dr_cell, cells, jobs)
    steady = [row for row in rows if row["cell"] == "steady-state"]
    recovery = [row for row in rows if row["cell"] == "recovery"][0]
    off = next(row for row in steady if not row["dr"])
    on = next(row for row in steady if row["dr"])
    on["overhead_pct"] = (
        (off["ktxn_per_s"] - on["ktxn_per_s"]) / off["ktxn_per_s"] * 100.0
        if off["ktxn_per_s"] > 0 else 0.0
    )
    off["overhead_pct"] = 0.0
    return {
        "seed": seed,
        "shards": shards,
        "duration_ms": duration_ms,
        "transactions": transactions,
        "steady": steady,
        "recovery": recovery,
    }
