"""Experiment E5 / Fig. 13: shadow-counter freshness vs update frequency.

Section 6.5: a primary/secondary Villars pair over NTB.  The secondary
reports its credit counter every ``period`` nanoseconds.  For each write
against the primary's CMB we measure the time until the primary's shadow
counter covers it — the moment the primary can declare the write safely
replicated.  We also compute the interconnect bandwidth the counter
updates consume at that period.

Expected shape: high frequency (0.4 us) gives a tight latency band;
lower frequency widens the band (the wait-for-next-cycle component is
uniform in [0, period]); the bandwidth cost falls inversely with the
period (~2-3% of the link at 0.4 us in the paper's setup).
"""

from repro.bench.parallel import run_cells
from repro.bench.stacks import bench_ssd_config
from repro.cluster.topology import replicated_pair
from repro.core.config import villars_sram
from repro.core.transport import COUNTER_UPDATE_BYTES
from repro.pcie.tlp import TLP_OVERHEAD_BYTES
from repro.sim import Engine
from repro.sim.stats import Candlestick
from repro.sim.units import KIB, MICROS

UPDATE_PERIODS_US = (0.4, 0.8, 1.2, 1.6)

# The bandwidth budget the paper expresses the cost against: the
# (deliberately constrained) x4 Gen2 PCIe path of the CMB, 2 GB/s.
REFERENCE_BANDWIDTH = 2.0  # bytes/ns


def run_one(update_period_us, writes=200, write_bytes=64,
            gap_between_writes_ns=5_000.0):
    """One period setting; returns the latency candlestick + bandwidth."""
    engine = Engine()

    def config_factory():
        return villars_sram(
            ssd=bench_ssd_config(),
            cmb_queue_bytes=32 * KIB,
            transport_update_period_ns=update_period_us * MICROS,
        )

    cluster = replicated_pair(engine, config_factory)
    primary = cluster.primary
    transport = primary.device.transport

    # Latency bookkeeping: each write records its issue time and target
    # counter value; the shadow watcher resolves them in order.
    outstanding = []  # (target_value, issued_at)
    samples = []

    def on_shadow(_peer, value):
        while outstanding and outstanding[0][0] <= value:
            target, issued_at = outstanding.pop(0)
            samples.append(engine.now - issued_at)

    transport.watch_shadow(on_shadow)

    def writer():
        total = 0
        for index in range(writes):
            issued_at = engine.now
            total += write_bytes
            outstanding.append((total, issued_at))
            yield primary.device.fast_write(
                index * write_bytes, write_bytes, f"w{index}"
            )
            yield primary.device.fast_fence()
            yield engine.timeout(gap_between_writes_ns)

    done = engine.process(writer())
    engine.run(until=engine.now + 120e6)
    if not done.triggered or len(samples) < writes * 0.9:
        raise RuntimeError(
            f"replication stalled at period {update_period_us} us "
            f"({len(samples)}/{writes} samples)"
        )
    # Bandwidth cost: one counter-update TLP per period, on the wire.
    update_wire = COUNTER_UPDATE_BYTES + TLP_OVERHEAD_BYTES
    period_ns = update_period_us * MICROS
    bandwidth_fraction = (update_wire / period_ns) / REFERENCE_BANDWIDTH
    stick = Candlestick(samples)
    return {
        "update_period_us": update_period_us,
        "latency_low_us": stick.low / 1e3,
        "latency_q1_us": stick.q1 / 1e3,
        "latency_median_us": stick.median / 1e3,
        "latency_q3_us": stick.q3 / 1e3,
        "latency_high_us": stick.high / 1e3,
        "latency_spread_us": stick.spread / 1e3,
        "bandwidth_pct": bandwidth_fraction * 100,
        "updates_sent": cluster.servers["secondary"]
        .device.transport.counter_updates_sent,
    }


def cells(update_periods_us=UPDATE_PERIODS_US, writes=200):
    """The figure's independent cells, in output order."""
    return [
        {"update_period_us": period, "writes": writes}
        for period in update_periods_us
    ]


def run_fig13(update_periods_us=UPDATE_PERIODS_US, writes=200, jobs=None):
    return run_cells(run_one, cells(update_periods_us, writes), jobs=jobs)
