"""The ``trace`` subcommand: capture a full-stack trace of one scenario.

Three scenarios cover the subsystem's reach:

* ``chain`` (default) — a replicated chain (primary + N secondaries)
  running a seeded key-value commit workload, so the trace shows the
  full host -> CMB -> destage -> NAND path *and* the NTB mirror flows
  plus counter updates coming back;
* ``fig09`` — one local Villars device under the TPC-C logging workload
  of Fig. 9 (no replication; small and fast, the CI smoke target);
* ``chaos`` — a seeded :func:`repro.faults.scenario.run_chaos` run, so
  fault instants (torn writes, drops, retries) appear on the timeline.

Each run writes a Chrome trace-event JSON (load it at
https://ui.perfetto.dev) and, optionally, a per-stage latency summary as
JSON and/or CSV.  Everything derives from the scenario seed and the
simulated clock, so the same invocation produces byte-identical files.
"""

from repro.bench.stacks import TXN_CPU_NS, build_log_file, build_tpcc_database
from repro.cluster.topology import replicated_chain
from repro.core.metrics import device_snapshot
from repro.faults.scenario import chaos_config_factory, run_chaos
from repro.obs import (
    GaugeSampler,
    capture,
    format_summary,
    stage_summary,
    write_chrome_trace,
    write_summary_csv,
    write_summary_json,
)
from repro.sim import Engine
from repro.sim.rng import derive
from repro.workloads.tpcc import TpccWorkload

SCENARIOS = ("chain", "fig09", "chaos")

# Gauge sampling period for trace runs: fine enough to draw queue
# levels between destage events, coarse enough not to dominate the file.
SAMPLE_PERIOD_NS = 20_000.0


def _run_bounded(engine, done, deadline_ns, step_ns=1e6):
    """Step the clock until ``done`` triggers or the deadline passes.

    Reporter loops and gauge samplers keep the event heap non-empty, so
    an unbounded ``run()`` would never return; bounded steps (the
    chaos harness's pattern) let us stop as soon as the workload ends.
    """
    deadline = engine.now + deadline_ns
    while not done.triggered and engine.now < deadline:
        engine.run(until=min(engine.now + step_ns, deadline))
    return done.triggered


def _sample_cluster(engine, cluster, session):
    """Attach one gauge sampler per server; returns the sampler list."""
    samplers = []
    for name in cluster.order:
        server = cluster.servers[name]
        samplers.append(
            GaugeSampler(engine.tracer, server.device,
                         period_ns=SAMPLE_PERIOD_NS)
        )
    for sampler in samplers:
        sampler.start()
    return samplers


def run_chain_scenario(seed=7, secondaries=2, transactions=60,
                       duration_ns=8_000_000.0, key_space=8):
    """Replicated-chain trace scenario (no faults); returns metadata."""
    engine = Engine()
    cluster = replicated_chain(
        engine, chaos_config_factory(seed), secondaries=secondaries,
    )
    database = cluster.primary.with_database(
        group_commit_bytes=2048, group_commit_timeout_ns=15_000.0,
    )
    database.create_table("kv")
    workload_rng = derive(seed, "workload")

    def workload():
        for index in range(transactions):
            txn = database.begin()
            txn.write("kv", f"k{workload_rng.randrange(key_space)}",
                      f"v{index}")
            yield txn.commit()

    samplers = _sample_cluster(engine, cluster, None)
    done = engine.process(workload(), name="trace-workload")
    finished = _run_bounded(engine, done, duration_ns)
    for sampler in samplers:
        sampler.stop()
        sampler.sample()  # one closing sample at the final clock
    return {
        "scenario": "chain",
        "seed": seed,
        "secondaries": secondaries,
        "transactions": transactions,
        "workload_finished": finished,
        "commits": database.stats.commits,
        "time_ns": engine.now,
        "snapshots": {
            name: device_snapshot(server.device)
            for name, server in sorted(cluster.servers.items())
        },
    }


def run_fig09_scenario(seed=7, workers=2, transactions_per_worker=12,
                       duration_ns=60_000_000.0):
    """One local Villars device under the Fig. 9 TPC-C logging workload."""
    engine = Engine()
    log_file = build_log_file(engine, "villars-sram")
    database = build_tpcc_database(engine, log_file, workers)
    sampler = GaugeSampler(engine.tracer, log_file.device,
                           period_ns=SAMPLE_PERIOD_NS)
    sampler.start()
    done = []
    for worker_id in range(workers):
        done.append(
            database.run_worker(
                TpccWorkload(worker_id=worker_id),
                transactions=transactions_per_worker,
                txn_cpu_ns=TXN_CPU_NS,
                async_commit=True,
            )
        )
    all_done = engine.all_of(done)
    finished = _run_bounded(engine, all_done, duration_ns)
    sampler.stop()
    sampler.sample()
    return {
        "scenario": "fig09",
        "seed": seed,
        "workers": workers,
        "transactions_per_worker": transactions_per_worker,
        "workload_finished": finished,
        "commits": database.stats.commits,
        "time_ns": engine.now,
        "snapshots": {
            log_file.device.name: device_snapshot(log_file.device)
        },
    }


def run_chaos_scenario(seed=7, secondaries=2, duration_ns=8_000_000.0,
                       transactions=160, fault_events=6):
    """A seeded chaos run under the tracer; returns its result dict."""
    result = run_chaos(
        seed=seed, secondaries=secondaries, duration_ns=duration_ns,
        transactions=transactions, fault_events=fault_events,
        collect_snapshots=True,
    )
    result["scenario"] = "chaos"
    return result


def run_trace(scenario="chain", out_path="trace.json", summary_path=None,
              csv_path=None, seed=7, secondaries=2, transactions=None,
              duration_ns=None, quiet=False):
    """Capture one scenario and write the requested artifacts.

    Returns ``(metadata, summary)``; the summary's per-stage totals are
    computed from the captured tracers after the run completes.
    """
    if scenario not in SCENARIOS:
        raise ValueError(f"unknown trace scenario {scenario!r}")
    with capture() as session:
        if scenario == "chain":
            metadata = run_chain_scenario(
                seed=seed, secondaries=secondaries,
                transactions=transactions or 60,
                duration_ns=duration_ns or 8_000_000.0,
            )
        elif scenario == "fig09":
            metadata = run_fig09_scenario(
                seed=seed,
                transactions_per_worker=transactions or 12,
                duration_ns=duration_ns or 60_000_000.0,
            )
        else:
            metadata = run_chaos_scenario(
                seed=seed, secondaries=secondaries,
                transactions=transactions or 160,
                duration_ns=duration_ns or 8_000_000.0,
            )
    # Snapshots are for the summary sidecar, not the trace header.
    snapshots = metadata.pop("snapshots", None)
    write_chrome_trace(out_path, session.tracers, label=f"trace:{scenario}")
    summary = stage_summary(
        session.tracers,
        extra={"scenario": scenario, "seed": seed,
               "events_in_trace_file": session.events_recorded},
    )
    if snapshots is not None:
        summary["snapshots"] = snapshots
    if summary_path:
        write_summary_json(summary_path, summary)
    if csv_path:
        write_summary_csv(csv_path, summary)
    if not quiet:
        print(f"trace: {session.events_recorded} events -> {out_path}")
        print(format_summary(summary))
    return metadata, summary
