"""Fleet benchmark: throughput scaling and hot-shard rebalance convergence.

Two experiment families behind ``python -m repro.bench fleet``:

* **scaling** — one cell per device count: N replication chains under
  one engine, ``tenants_per_device`` mixed TPC-C/YCSB tenants per node
  (round-robin placement so the cells are load-symmetric), each tenant a
  closed loop through its shard's admission lane.  Reported as aggregate
  ktxn/s and scaling efficiency against the smallest cell — the
  near-linear line the single-chain layer could never draw.
* **hot-shard** — an open-loop fleet where one tenant's think time
  collapses mid-run.  A :class:`~repro.cluster.rebalance.FleetSupervisor`
  must notice the skew from admitted-byte rates alone, migrate load off
  the hot node, and level the fleet; the cell reports time-to-converge
  from the hot event to the supervisor's convergence mark.

Cells are independent and deterministic per seed, so ``--jobs`` fans
them over worker processes like every other figure.
"""

from repro.bench.parallel import run_cells
from repro.cluster import Fleet, FleetSupervisor
from repro.db.txn import TransactionAborted
from repro.faults.scenario import chaos_config_factory
from repro.health.errors import DeviceBusy
from repro.sim.engine import Engine
from repro.workloads.tpcc import TpccConfig, TpccWorkload
from repro.workloads.ycsb import YcsbConfig, YcsbWorkload

_TPCC_SCALE = dict(warehouses=2, preload_customers_per_district=4,
                   preload_items=16)
_YCSB_SCALE = dict(records=64, value_bytes=64, read_fraction=0.3)


def make_tenant(kind, seed, index):
    """One tenant's (workload iterator, shard bootstrap) pair.

    The bootstrap rebuilds the tenant's deterministic base state (schema
    plus populated rows) from config alone, so a migration destination
    can re-run it and receive only transactional deltas over the WAL.
    """
    if kind == "tpcc":
        config = TpccConfig(seed=seed * 1009 + index, **_TPCC_SCALE)
        workload = TpccWorkload(config, worker_id=index)

        def bootstrap(view, config=config, index=index):
            TpccWorkload.create_schema(view)
            TpccWorkload(config, worker_id=index).populate(view)

        return workload, bootstrap
    if kind == "ycsb":
        config = YcsbConfig(seed=seed * 1013 + index, **_YCSB_SCALE)
        workload = YcsbWorkload(config, worker_id=index)

        def bootstrap(view, config=config, index=index):
            YcsbWorkload.create_schema(view)
            YcsbWorkload(config, worker_id=index).populate(view)

        return workload, bootstrap
    raise ValueError(f"unknown tenant kind {kind!r}")


def tenant_loop(engine, shard, workload, deadline_ns, pace,
                start_delay_ns=0.0):
    """Drive one tenant until the deadline (a sim process).

    ``pace`` is a mutable ``{"think_ns": float}`` — the hot-shard cell
    mutates it mid-run to turn a steady tenant into a flash crowd.
    DeviceBusy backs off for the device's suggested delay; aborts retry
    with a fresh body (single-writer shards only self-conflict).
    ``start_delay_ns`` staggers colocated tenants so they don't fall
    into group-commit lockstep (every tenant riding the same batch
    cycle), which would quantize throughput.
    """
    if start_delay_ns > 0:
        yield engine.timeout(start_delay_ns)
    iterator = iter(workload)
    while engine.now < deadline_ns:
        body = next(iterator)
        while engine.now < deadline_ns:
            try:
                yield from shard.run_body(body)
                break
            except DeviceBusy as busy:
                yield engine.timeout(busy.retry_after_ns or 50_000.0)
            except TransactionAborted:
                break
        think_ns = pace["think_ns"]
        if think_ns > 0:
            yield engine.timeout(think_ns)


def _build_fleet(seed, devices, tenants_per_device, replicas, est_txn_bytes):
    """A fleet with round-robin tenant placement; returns (fleet, tenants).

    Round-robin (explicit ``node=``) keeps scaling cells load-symmetric;
    hash placement gets its workout in the placement property tests and
    the rebalance path, where imbalance is the *point*.
    """
    engine = Engine()
    fleet = Fleet(engine, chaos_config_factory(seed), replicas=replicas)
    fleet.add_nodes(devices)
    tenants = []
    for index in range(devices * tenants_per_device):
        # Kind and workload seed derive from the *slot within a node*
        # (index // devices): every node serves an identical tenant
        # population at every device count, so the scaling curve compares
        # equal offered load per node — not different workload mixes.
        slot = index // devices
        kind = "tpcc" if slot % 2 == 0 else "ycsb"
        workload, bootstrap = make_tenant(kind, seed, slot)
        shard = fleet.create_shard(
            f"tenant{index}", node=f"node{index % devices}",
            bootstrap=bootstrap, est_txn_bytes=est_txn_bytes,
        )
        tenants.append((shard, workload))
    return engine, fleet, tenants


def _fleet_cell(**cell):
    # run_cells splats each cell dict; re-bundle for the two cell bodies.
    if cell["kind"] == "scaling":
        return _scaling_cell(cell)
    return _hot_cell(cell)


def _scaling_cell(cell):
    engine, fleet, tenants = _build_fleet(
        cell["seed"], cell["devices"], cell["tenants_per_device"],
        cell["replicas"], cell["est_txn_bytes"],
    )
    deadline = engine.now + cell["duration_ns"]
    for slot, (shard, workload) in enumerate(tenants):
        # Same per-slot stagger at every device count (slot // devices is
        # the within-node position), so the cells stay comparable.
        delay = (slot // cell["devices"]) * 7_300.0
        engine.process(
            tenant_loop(engine, shard, workload, deadline,
                        {"think_ns": 0.0}, start_delay_ns=delay),
            name=f"tenant:{shard.shard_id}",
        )
    engine.run(until=deadline)
    commits = fleet.total_commits()
    rejections = sum(node.admission.rejections
                     for node in fleet.nodes.values())
    fleet.stop()
    return {
        "cell": "scaling",
        "devices": cell["devices"],
        "tenants": len(tenants),
        "commits": commits,
        "ktxn_per_s": commits / (cell["duration_ns"] / 1e9) / 1e3,
        "admission_rejections": rejections,
    }


def _hot_cell(cell):
    engine, fleet, tenants = _build_fleet(
        cell["seed"], cell["devices"], cell["tenants_per_device"],
        cell["replicas"], cell["est_txn_bytes"],
    )
    supervisor = FleetSupervisor(
        fleet,
        poll_ns=cell["poll_ns"],
        hot_ratio=cell["hot_ratio"],
        dwell_polls=2,
        cooldown_ns=cell["cooldown_ns"],
        converge_ratio=cell["converge_ratio"],
        migration_kw={"copy_rounds": 1, "round_wait_ns": 100_000.0},
    )
    deadline = engine.now + cell["duration_ns"]
    think_ns = cell["think_us"] * 1e3
    paces = []
    for shard, workload in tenants:
        pace = {"think_ns": think_ns}
        paces.append(pace)
        engine.process(
            tenant_loop(engine, shard, workload, deadline, pace),
            name=f"tenant:{shard.shard_id}",
        )

    hot_at = engine.now + cell["hot_at_ns"]

    def flash_crowd():
        yield engine.timeout(cell["hot_at_ns"])
        # Tenant 0 (on node0) goes hot: its think time collapses.
        paces[0]["think_ns"] = think_ns / cell["hot_multiplier"]

    engine.process(flash_crowd(), name="flash-crowd")
    supervisor.start()
    engine.run(until=deadline)
    supervisor.stop()
    commits = fleet.total_commits()
    converged = supervisor.converged_at_ns is not None
    row = {
        "cell": "hot-shard",
        "devices": cell["devices"],
        "tenants": len(tenants),
        "commits": commits,
        "hot_at_ms": hot_at / 1e6,
        "migrations": len(supervisor.migrations),
        "moves": list(fleet.moves),
        "converged": converged,
        "time_to_converge_ms": (
            (supervisor.converged_at_ns - hot_at) / 1e6 if converged
            else None
        ),
        "final_imbalance": round(supervisor.imbalance(), 3),
        "supervisor_events": [
            {k: v for k, v in event.items()}
            for event in supervisor.events
        ],
    }
    fleet.stop()
    return row


def run_fleet_bench(device_counts=(1, 2, 4), tenants_per_device=3,
                    duration_ms=2.0, seed=7, replicas=1,
                    est_txn_bytes=2048, hot=True, hot_devices=None,
                    hot_duration_ms=10.0, hot_at_ms=1.0, hot_multiplier=16.0,
                    think_us=200.0, poll_us=300.0, hot_ratio=1.6,
                    converge_ratio=1.5, cooldown_ms=1.0, jobs=None):
    """Run the fleet scaling sweep (and optionally the hot-shard cell).

    Returns a JSON-able dict: per-device-count scaling rows with
    efficiency relative to the smallest cell, plus the hot-shard
    convergence row.
    """
    device_counts = tuple(device_counts)
    if not device_counts:
        raise ValueError("need at least one device count")
    cells = [
        {
            "kind": "scaling", "seed": seed, "devices": devices,
            "tenants_per_device": tenants_per_device, "replicas": replicas,
            "duration_ns": duration_ms * 1e6,
            "est_txn_bytes": est_txn_bytes,
        }
        for devices in device_counts
    ]
    if hot:
        cells.append({
            "kind": "hot", "seed": seed,
            "devices": hot_devices or max(device_counts),
            "tenants_per_device": tenants_per_device, "replicas": replicas,
            "duration_ns": hot_duration_ms * 1e6,
            "est_txn_bytes": est_txn_bytes,
            "hot_at_ns": hot_at_ms * 1e6,
            "hot_multiplier": hot_multiplier,
            "think_us": think_us,
            "poll_ns": poll_us * 1e3,
            "hot_ratio": hot_ratio,
            "converge_ratio": converge_ratio,
            "cooldown_ns": cooldown_ms * 1e6,
        })
    rows = run_cells(_fleet_cell, cells, jobs)
    scaling = [row for row in rows if row["cell"] == "scaling"]
    hot_rows = [row for row in rows if row["cell"] == "hot-shard"]
    base = scaling[0]
    base_per_device = base["ktxn_per_s"] / base["devices"]
    for row in scaling:
        per_device = row["ktxn_per_s"] / row["devices"]
        row["efficiency"] = (
            per_device / base_per_device if base_per_device > 0 else 0.0
        )
    return {
        "seed": seed,
        "device_counts": list(device_counts),
        "tenants_per_device": tenants_per_device,
        "duration_ms": duration_ms,
        "scaling": scaling,
        "hot": hot_rows[0] if hot_rows else None,
    }
