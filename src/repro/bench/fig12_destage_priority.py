"""Experiment E4 / Fig. 12: opportunistic destaging under contention.

Section 6.4: a conventional workload sized at ~50% of the device's write
bandwidth runs alongside a fast-side workload swept from 30% to 60%.
With *neutral* priority the two interfere once their sum passes the
device's capacity — both lose bandwidth.  With *conventional* priority
the conventional stream keeps its 50% and the fast stream absorbs the
entire shortfall.

The bench offers both workloads open-loop (paced, not closed-loop) so
saturation shows up as completed-vs-offered shortfall, exactly like the
figure's y-axis (achieved bandwidth).
"""

from repro.bench.parallel import run_cells
from repro.bench.stacks import bench_ssd_config, nand_realistic_config
from repro.sim import Engine
from repro.ssd.device import ConventionalSsd
from repro.ssd.scheduler import SchedulingMode, Source, WriteRequest
from repro.workloads.synthetic import paced_append_stream

FAST_FRACTIONS = (0.30, 0.40, 0.50, 0.60)
MODES = {
    "neutral": SchedulingMode.NEUTRAL,
    "conventional-priority": SchedulingMode.CONVENTIONAL_PRIORITY,
    "destage-priority": SchedulingMode.DESTAGE_PRIORITY,
}


def run_one(mode_name, fast_fraction, conventional_fraction=0.5,
            duration_ns=40e6, backend="ideal"):
    """One contention cell; returns achieved bandwidth per source.

    ``backend`` picks the flash model: ``"ideal"`` is the classic
    one-op-per-die array; ``"realistic"`` enables the NAND realism pack
    (two planes, cache program, multi-plane batching, erase suspend) —
    the priority-mode ordering must survive either way.
    """
    engine = Engine()
    if backend == "realistic":
        config = nand_realistic_config(scheduling_mode=MODES[mode_name])
    elif backend == "ideal":
        config = bench_ssd_config(scheduling_mode=MODES[mode_name])
    else:
        raise ValueError(f"unknown backend {backend!r}")
    ssd = ConventionalSsd(engine, config).start()
    page = ssd.block_bytes
    capacity = ssd.write_bandwidth_ceiling()  # bytes/ns

    lba_counter = {"conv": 0, "dest": 1 << 20}

    def submit_conventional(nbytes):
        lba_counter["conv"] += 1
        return ssd.scheduler.enqueue(
            WriteRequest(Source.CONVENTIONAL, lba_counter["conv"],
                         "conv", nbytes)
        )

    def submit_destage(nbytes):
        lba_counter["dest"] += 1
        return ssd.scheduler.enqueue(
            WriteRequest(Source.DESTAGE, lba_counter["dest"], "fast", nbytes)
        )

    paced_append_stream(
        engine, submit_conventional,
        target_bytes_per_ns=conventional_fraction * capacity,
        write_bytes=page, duration_ns=duration_ns, seed=1,
    )
    paced_append_stream(
        engine, submit_destage,
        target_bytes_per_ns=fast_fraction * capacity,
        write_bytes=page, duration_ns=duration_ns, seed=2,
    )
    engine.run(until=duration_ns)
    elapsed = duration_ns
    conv_achieved = ssd.scheduler.bytes_written[Source.CONVENTIONAL] / elapsed
    fast_achieved = ssd.scheduler.bytes_written[Source.DESTAGE] / elapsed
    return {
        "mode": mode_name,
        "backend": backend,
        "fast_offered_pct": fast_fraction * 100,
        "conv_offered_pct": conventional_fraction * 100,
        "conv_achieved_pct": 100 * conv_achieved / capacity,
        "fast_achieved_pct": 100 * fast_achieved / capacity,
        "capacity_bytes_per_ns": capacity,
    }


def cells(modes=("neutral", "conventional-priority"),
          fast_fractions=FAST_FRACTIONS, duration_ns=40e6, backend="ideal"):
    """The figure's independent cells, in output order."""
    return [
        {"mode_name": mode_name, "fast_fraction": fraction,
         "duration_ns": duration_ns, "backend": backend}
        for mode_name in modes
        for fraction in fast_fractions
    ]


def run_fig12(modes=("neutral", "conventional-priority"),
              fast_fractions=FAST_FRACTIONS, duration_ns=40e6, jobs=None,
              backend="ideal"):
    return run_cells(
        run_one, cells(modes, fast_fractions, duration_ns, backend),
        jobs=jobs
    )
