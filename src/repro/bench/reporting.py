"""Text rendering for benchmark results: figure-shaped tables and series."""


def format_table(rows, columns, title=None):
    """Render ``rows`` (dicts) as a fixed-width text table.

    ``columns`` is a list of (key, header, format_spec) triples; e.g.
    ``("latency_us", "latency [us]", ".1f")``.
    """
    headers = [header for _key, header, _spec in columns]
    rendered = []
    for row in rows:
        cells = []
        for key, _header, spec in columns:
            value = row.get(key, "")
            cells.append(format(value, spec) if spec and value != "" else
                         str(value))
        rendered.append(cells)
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered)) if rendered
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for cells in rendered:
        lines.append("  ".join(c.rjust(w) for c, w in zip(cells, widths)))
    return "\n".join(lines)


def format_series(rows, x_key, y_key, series_key, y_spec=".1f"):
    """Render rows as one text block per series (a figure's line set)."""
    series = {}
    for row in rows:
        series.setdefault(row[series_key], []).append(row)
    lines = []
    for name in series:
        points = sorted(series[name], key=lambda row: row[x_key])
        rendered = ", ".join(
            f"{point[x_key]}: {format(point[y_key], y_spec)}"
            for point in points
        )
        lines.append(f"{str(name):24s} {rendered}")
    return "\n".join(lines)
