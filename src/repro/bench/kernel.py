"""Kernel microbenchmark: events/sec of the DES scheduling core.

Every figure and test is bottlenecked by the event kernel, so this module
tracks its throughput across PRs.  Three workloads exercise the paths that
matter:

* ``same-instant`` — a pre-wired chain of events, each one's callback
  triggering the next at the same instant, with a populated heap of
  far-future timeouts in the background.  This isolates the trigger→dispatch
  path: on the seed (heap-only) kernel every link pays a push+pop through
  the background heap; the two-tier kernel runs it entirely on the
  immediate deque.
* ``event-churn`` — the same-instant mix as it appears in real models:
  events and zero-delay timeouts are *allocated* inside the run, so event
  construction cost is included.
* ``timeout-heavy`` — a population of concurrent timers that each reschedule
  themselves with a strictly positive delay; all scheduling goes through
  the heap on both kernels, so this workload tracks pure run-loop overhead.
* ``timeout-cancel-heavy`` — the WAL group-commit / transport-retry race:
  every round schedules a long expiry timer and cancels it one round
  later, unexpired.  The seed kernel drags the dead entries through the
  heap; the wheel reclaims them via lazy drop + opportunistic compaction.
* ``fleet-scale`` — a sharded fleet's heartbeat plane: thousands of probes
  on a handful of aligned periods, every period tick landing on the same
  instant.  Probes use the engine's shared-instant API (``Engine.at``)
  when it exists, so the wheel kernel carries one entry per instant and
  delivers it in one callback sweep; the seed pays one heap round-trip
  per probe.

To keep the speedup measurable after the seed engine is gone, the module
carries a frozen replica of the seed's scheduling core (``SeedEngine``):
single global heap ordered by ``(time, sequence)``, every trigger —
same-instant or not — round-tripping through ``heapq``.  The replica is
used only here, for the ratio.  Current and seed repeats are interleaved
inside one process so the ratio is immune to host frequency drift between
the two measurement phases.
"""

import heapq
import time
from collections import deque
from itertools import count

from repro.sim import Engine

DEFAULT_EVENTS = 200_000
DEFAULT_BACKGROUND = 4_096
DEFAULT_TIMERS = 1_000
DEFAULT_PROBES = 4_096
DEFAULT_REPEAT = 3

WORKLOADS = ("same-instant", "event-churn", "timeout-heavy",
             "timeout-cancel-heavy", "fleet-scale")


# -- frozen seed kernel (baseline for the speedup ratio) -----------------------


class SeedEvent:
    """Seed-engine event: every trigger goes through the heap."""

    __slots__ = ("engine", "callbacks", "_value", "_exception", "triggered",
                 "_processed", "_cancelled")

    def __init__(self, engine):
        self.engine = engine
        self.callbacks = []
        self._value = None
        self._exception = None
        self.triggered = False
        self._processed = False
        self._cancelled = False

    def succeed(self, value=None):
        self.triggered = True
        self._value = value
        self.engine._push_at(self.engine._now, self)
        return self

    def cancel(self):
        # Faithful to the seed: the heap entry stays resident until the
        # run loop pops (and skips) it — cancelled garbage is the cost
        # this replica exists to measure.
        self._cancelled = True
        self.callbacks.clear()
        return self

    def then(self, callback):
        self.callbacks.append(callback)
        return self


class SeedTimeout(SeedEvent):
    __slots__ = ("delay",)

    def __init__(self, engine, delay, value=None):
        super().__init__(engine)
        self.delay = delay
        self.triggered = True
        self._value = value
        engine._push_at(engine._now + delay, self)


class SeedEngine:
    """The seed commit's scheduling core: one global ``(time, seq)`` heap."""

    def __init__(self):
        self._now = 0.0
        self._heap = []
        self._sequence = count()

    @property
    def now(self):
        return self._now

    def event(self):
        return SeedEvent(self)

    def timeout(self, delay, value=None):
        return SeedTimeout(self, delay, value)

    def _push_at(self, when, event):
        heapq.heappush(self._heap, (when, next(self._sequence), event))

    def run(self, until=None):
        while self._heap:
            when, _seq, event = self._heap[0]
            if event._cancelled:
                # Lazy drop at pop time; the entry sat in the heap (and
                # taxed every push/pop crossing it) until now.
                heapq.heappop(self._heap)
                continue
            if until is not None and when > until:
                self._now = until
                return self._now
            heapq.heappop(self._heap)
            self._now = when
            event._processed = True
            callbacks, event.callbacks = event.callbacks, []
            for callback in callbacks:
                callback(event)
        if until is not None:
            self._now = max(self._now, until)
        return self._now


# -- workloads (engine-agnostic: both kernels expose the same surface) ---------


def _arm_background(engine, background):
    """Fill the heap with far-future timeouts, as a busy simulation would."""
    for index in range(background):
        engine.timeout(1e12 + index)


def run_same_instant(engine_factory, events=DEFAULT_EVENTS,
                     background=DEFAULT_BACKGROUND):
    """Pre-wired same-instant trigger chain; returns (events/sec, count)."""
    engine = engine_factory()
    _arm_background(engine, background)
    chain = [engine.event() for _ in range(events)]
    for index in range(events - 1):
        nxt = chain[index + 1]
        chain[index].then(lambda _ev, nxt=nxt: nxt.succeed())
    started = time.perf_counter()
    chain[0].succeed()
    engine.run(until=0.0)
    elapsed = time.perf_counter() - started
    return events / elapsed, events


def run_event_churn(engine_factory, events=DEFAULT_EVENTS,
                    background=DEFAULT_BACKGROUND):
    """Same-instant chain with in-run allocation: alternating freshly created
    ``succeed()`` events and zero-delay timeouts; returns (events/sec, count).
    """
    engine = engine_factory()
    _arm_background(engine, background)
    remaining = [events]

    def kick(_event):
        if remaining[0]:
            remaining[0] -= 1
            if remaining[0] % 2:
                engine.event().then(kick).succeed()
            else:
                engine.timeout(0.0).then(kick)

    engine.event().then(kick).succeed()
    started = time.perf_counter()
    engine.run(until=0.0)
    elapsed = time.perf_counter() - started
    if remaining[0]:
        raise RuntimeError("event-churn chain did not complete")
    return (events + 1) / elapsed, events + 1


def run_timeout_heavy(engine_factory, events=DEFAULT_EVENTS,
                      timers=DEFAULT_TIMERS):
    """Concurrent self-rescheduling timers; returns (events/sec, count)."""
    engine = engine_factory()
    remaining = [events]

    def make_timer(step):
        def fire(_event):
            if remaining[0]:
                remaining[0] -= 1
                engine.timeout(step).then(fire)
        return fire

    for index in range(timers):
        step = 1.0 + (index % 97) * 0.25
        engine.timeout(step).then(make_timer(step))
    started = time.perf_counter()
    engine.run()
    elapsed = time.perf_counter() - started
    return (events + timers) / elapsed, events + timers


def run_timeout_cancel_heavy(engine_factory, events=DEFAULT_EVENTS,
                             timers=DEFAULT_TIMERS):
    """Schedule-then-cancel races (the WAL group-commit / transport-retry
    idiom): every firing reschedules itself *and* a long expiry timer,
    cancelling the previous round's expiry unexpired.  Returns
    (events/sec, count) over the fired events."""
    engine = engine_factory()
    remaining = [events]

    def make_worker(step):
        pending = [None]

        def fire(_event):
            expiry = pending[0]
            if expiry is not None:
                expiry.cancel()
            if remaining[0]:
                remaining[0] -= 1
                pending[0] = engine.timeout(step + 1000.0)
                engine.timeout(step).then(fire)

        return fire

    for index in range(timers):
        step = 1.0 + (index % 97) * 0.25
        engine.timeout(step).then(make_worker(step))
    started = time.perf_counter()
    engine.run()
    elapsed = time.perf_counter() - started
    return (events + timers) / elapsed, events + timers


def run_fleet_scale(engine_factory, events=DEFAULT_EVENTS,
                    probes=DEFAULT_PROBES):
    """A sharded fleet's heartbeat plane: ``probes`` periodic probes over
    eight aligned periods, so every period tick lands whole cohorts on one
    instant.  Probes ride the engine's shared-instant API (``at``) when it
    has one — one wheel entry and one callback sweep per instant — and
    fall back to per-probe timeouts (the seed's only option) otherwise.
    Returns (events/sec, count)."""
    engine = engine_factory()
    remaining = [events]
    at = getattr(engine, "at", None)

    def fire(_event):
        if remaining[0]:
            remaining[0] -= 1
            when = engine.now + 100.0 * (1 + remaining[0] % 8)
            if at is not None:
                at(when).then(fire)
            else:
                engine.timeout(when - engine.now).then(fire)

    for index in range(probes):
        period = 100.0 * (1 + index % 8)
        if at is not None:
            at(period).then(fire)
        else:
            engine.timeout(period).then(fire)
    started = time.perf_counter()
    engine.run()
    elapsed = time.perf_counter() - started
    return (events + probes) / elapsed, events + probes


_RUNNERS = {
    "same-instant": run_same_instant,
    "event-churn": run_event_churn,
    "timeout-heavy": run_timeout_heavy,
    "timeout-cancel-heavy": run_timeout_cancel_heavy,
    "fleet-scale": run_fleet_scale,
}


# -- the harness ---------------------------------------------------------------


def run_kernel_bench(events=DEFAULT_EVENTS, repeat=DEFAULT_REPEAT,
                     workloads=WORKLOADS, baseline=True):
    """Measure events/sec per workload; returns a list of result rows.

    Each row carries the current kernel's rate, the frozen seed kernel's
    rate (when ``baseline`` is true), and their ratio.  ``repeat`` runs are
    taken per engine and the best rate is kept (microbenchmarks measure the
    kernel, not the scheduler noise of the host machine).  Current and
    seed repeats alternate within the same process so a frequency shift
    mid-benchmark degrades both sides equally instead of skewing the
    ratio.
    """
    rows = []
    for name in workloads:
        runner = _RUNNERS[name]
        best_current = best_seed = (0.0, 0)
        for _ in range(repeat):
            best_current = max(best_current, runner(Engine, events))
            if baseline:
                best_seed = max(best_seed, runner(SeedEngine, events))
        rate, processed = best_current
        row = {
            "workload": name,
            "events": processed,
            "events_per_sec": rate,
            "events_per_sec_m": rate / 1e6,
        }
        if baseline:
            seed_rate = best_seed[0]
            row["seed_events_per_sec"] = seed_rate
            row["seed_events_per_sec_m"] = seed_rate / 1e6
            row["speedup_vs_seed"] = rate / seed_rate
        rows.append(row)
    return rows
