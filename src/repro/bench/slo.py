"""SLO bench: a compressed day of diurnal traffic, with and without the controller.

``python -m repro.bench slo`` runs the same seeded
:class:`~repro.workloads.diurnal.DiurnalTrafficModel` day twice — once
uncontrolled, once under :class:`~repro.slo.SloController` — over a
small fleet sized so the flash crowds genuinely overload it.  Latency is
measured where the tenant feels it: around the full commit attempt,
*including* admission-shed backoff and retries.

The day is then cut into equal windows and each window's p99 compared
against the target.  A window violates the SLO when its p99 exceeds the
target — or when nothing completed at all while commits were being
offered, a stall being worse than any measurable tail.  The headline
number is **SLO-minutes-violated**: violating windows scaled onto a
1440-minute day, reported for both runs side by side.

The two cells are independent engines fed identical offered traffic
(same seed, same crowd schedule), so the comparison isolates exactly one
variable: whether the control loop is closed.
"""

from repro.bench.parallel import run_cells
from repro.cluster.fleet import Fleet, run_shard_body
from repro.faults.scenario import chaos_config_factory
from repro.sim.engine import Engine
from repro.sim.stats import percentile
from repro.workloads.diurnal import DiurnalTrafficModel, bursty_tenant_stream

SIMULATED_DAY_MINUTES = 1440.0


def _slo_cell(**cell):
    """One full day, one engine; returns raw completion samples + audit."""
    engine = Engine()
    fleet = Fleet(
        engine, chaos_config_factory(cell["seed"]),
        group_commit_bytes=cell["group_commit_bytes"],
        group_commit_timeout_ns=cell["group_commit_timeout_ns"],
        max_inflight_flushes=1,
        admission_bytes=cell["admission_bytes"],
    )
    fleet.add_nodes(cell["nodes"])
    tenants = cell["tenants"]
    shards = [fleet.create_shard(f"tenant{i}") for i in range(tenants)]
    day_ns = cell["day_ns"]
    model = DiurnalTrafficModel(
        seed=cell["seed"], tenants=tenants, day_ns=day_ns,
        base_rate_per_ns=tenants / cell["mean_gap_ns"],
        crowd_rate_per_day=cell["crowd_rate_per_day"],
        crowd_amplitude=cell["crowd_amplitude"],
    )
    controller = None
    if cell["controlled"]:
        controller = fleet.enable_slo(
            target_p99_ns=cell["target_p99_ns"],
            poll_ns=cell["poll_ns"],
        )

    samples = []  # (completion time, perceived latency) pairs
    pad = "x" * cell["value_pad"]

    def make_submit(shard):
        counter = [0]

        def submit():
            counter[0] += 1
            seq = counter[0]

            def body(txn):
                for slot in range(3):
                    txn.write("kv", f"k{(seq + slot) % 8}",
                              f"{shard.shard_id}-v{seq}-{pad}")

            started = engine.now
            yield from run_shard_body(engine, shard, body)
            samples.append((engine.now, engine.now - started))

        return submit

    for index, shard in enumerate(shards):
        bursty_tenant_stream(engine, make_submit(shard), model, index,
                             day_ns)
    engine.run(until=day_ns)
    fleet.stop()
    # A bounded drain so commits in flight at midnight still count.
    engine.run(until=day_ns + cell["drain_ns"])

    row = {
        "controlled": cell["controlled"],
        "commits": fleet.total_commits(),
        "rejections": sum(node.admission.rejections
                          for node in fleet.nodes.values()),
        "samples": [(round(at, 3), round(latency, 3))
                    for at, latency in samples],
    }
    if controller is not None:
        row["audit_events"] = len(controller.events)
        row["escalations"] = sum(
            1 for event in controller.events
            if event["action"] == "escalate")
        row["deescalations"] = sum(
            1 for event in controller.events
            if event["action"] == "deescalate")
        row["invariant_violations"] = len(controller.invariant_violations)
        row["final_levels"] = {
            name: controller.level_of(name) for name in sorted(fleet.nodes)
        }
    return row


def _window_rows(samples, day_ns, windows, target_ns):
    """Per-window p99 and violation verdicts from raw completion samples."""
    buckets = [[] for _ in range(windows)]
    width = day_ns / windows
    for at, latency in samples:
        index = min(int(at / width), windows - 1)
        buckets[index].append(latency)
    rows = []
    for index, bucket in enumerate(buckets):
        p99 = percentile(bucket, 0.99) if bucket else None
        violated = p99 is None or p99 > target_ns
        rows.append({
            "window": index,
            "start_ns": round(index * width, 3),
            "completions": len(bucket),
            "p99_ns": round(p99, 3) if p99 is not None else None,
            "violated": violated,
        })
    return rows


def slo_minutes_violated(window_rows, windows):
    violated = sum(1 for row in window_rows if row["violated"])
    return round(violated * SIMULATED_DAY_MINUTES / windows, 3)


def run_slo_bench(nodes=2, tenants=12, day_ms=3.0, windows=12,
                  target_p99_us=150.0, seed=7, mean_gap_us=2.0,
                  crowd_rate_per_day=3.0, crowd_amplitude=8.0,
                  group_commit_bytes=384, group_commit_timeout_us=5.0,
                  admission_kib=6, value_pad=160, poll_us=40.0,
                  drain_ms=0.3, jobs=None):
    """The with/without-controller day; returns a JSON-able report.

    The default cell is deliberately overloaded at the crowd peaks: an
    uncontrolled fleet stalls through them, while the controller's
    ladder (bigger batches, destage priority, shedding, lazy
    replication) keeps windows completing.  ``--jobs 2`` runs the two
    cells in parallel.
    """
    day_ns = day_ms * 1e6
    target_ns = target_p99_us * 1e3
    base = {
        "seed": seed, "nodes": nodes, "tenants": tenants,
        "day_ns": day_ns, "mean_gap_ns": mean_gap_us * 1e3,
        "crowd_rate_per_day": crowd_rate_per_day,
        "crowd_amplitude": crowd_amplitude,
        "group_commit_bytes": group_commit_bytes,
        "group_commit_timeout_ns": group_commit_timeout_us * 1e3,
        "admission_bytes": admission_kib * 1024,
        "value_pad": value_pad,
        "target_p99_ns": target_ns,
        "poll_ns": poll_us * 1e3,
        "drain_ns": drain_ms * 1e6,
    }
    cells = [dict(base, controlled=False), dict(base, controlled=True)]
    baseline, controlled = run_cells(_slo_cell, cells, jobs)

    report = {
        "seed": seed,
        "nodes": nodes,
        "tenants": tenants,
        "day_ms": day_ms,
        "windows": windows,
        "target_p99_us": target_p99_us,
        "runs": {},
    }
    for label, row in (("baseline", baseline), ("controlled", controlled)):
        window_rows = _window_rows(row.pop("samples"), day_ns, windows,
                                   target_ns)
        row["windows"] = window_rows
        row["slo_minutes_violated"] = slo_minutes_violated(window_rows,
                                                           windows)
        row["violated_windows"] = sum(
            1 for window in window_rows if window["violated"])
        report["runs"][label] = row
    report["slo_minutes_saved"] = round(
        report["runs"]["baseline"]["slo_minutes_violated"]
        - report["runs"]["controlled"]["slo_minutes_violated"], 3,
    )
    return report
