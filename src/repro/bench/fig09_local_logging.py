"""Experiment E1 / Fig. 9: logging to local storage, five setups.

The paper's first experiment (Section 6.1): ERMIA-style TPC-C workers
generate WAL while the log device varies — No-Log, host NVDIMM
("Memory"), the conventional NVMe side, Villars-SRAM, Villars-DRAM.
The figure plots average transaction latency (log scale) and committed
transactions per second against the worker count {1, 2, 4, 8}.

Expected shape (asserted by the bench):
* latency: Memory ~= Villars-SRAM << NVMe (order of magnitude);
* latency falls as workers rise (the 16 KB group fills faster);
* throughput: all setups comparable at low worker counts; at 8 workers
  the NVMe path saturates around ~200 ktxn/s while the fast-side and
  memory setups keep scaling with the no-log curve.
"""

from repro.bench.parallel import run_cells
from repro.bench.stacks import TXN_CPU_NS, build_log_file, build_tpcc_database
from repro.sim import Engine
from repro.workloads.tpcc import TpccWorkload

SETUPS = ("no-log", "memory", "nvme", "villars-sram", "villars-dram")
WORKER_COUNTS = (1, 2, 4, 8)


def run_one(setup, workers, transactions_per_worker=150):
    """One cell of the figure; returns a result row."""
    engine = Engine()
    log_file = build_log_file(engine, setup)
    database = build_tpcc_database(engine, log_file, workers)
    done = []
    start = engine.now
    for worker_id in range(workers):
        done.append(
            database.run_worker(
                TpccWorkload(worker_id=worker_id),
                transactions=transactions_per_worker,
                txn_cpu_ns=TXN_CPU_NS,
                async_commit=True,
            )
        )
    engine.run(until=60e9)  # 60 simulated seconds: far beyond need
    if not all(event.triggered for event in done):
        raise RuntimeError(f"{setup}/{workers}w did not finish")
    # run(until=...) fast-forwards the clock after the heap drains, so
    # measure against the last commit's timestamp.
    elapsed = database.stats.last_commit_at - start
    return {
        "setup": setup,
        "workers": workers,
        "mean_latency_us": database.stats.mean_latency_ns / 1e3,
        "throughput_ktps": database.stats.throughput_per_s(elapsed) / 1e3,
        "commits": database.stats.commits,
        "aborts": database.stats.aborts,
    }


def cells(setups=SETUPS, worker_counts=WORKER_COUNTS,
          transactions_per_worker=150):
    """The figure's independent cells, in output order."""
    return [
        {"setup": setup, "workers": workers,
         "transactions_per_worker": transactions_per_worker}
        for setup in setups
        for workers in worker_counts
    ]


def run_fig09(setups=SETUPS, worker_counts=WORKER_COUNTS,
              transactions_per_worker=150, jobs=None):
    """The full figure: every setup x worker-count cell."""
    return run_cells(
        run_one,
        cells(setups, worker_counts, transactions_per_worker),
        jobs=jobs,
    )
