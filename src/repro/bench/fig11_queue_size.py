"""Experiment E3 / Fig. 11: group-commit size x CMB queue size (SRAM).

Section 6.3: the intake queue's size sets how much the database can write
before re-reading the credit counter.  The experiment sends group-commit-
sized writes (1 KB to 64 KB) through the fast side while the queue varies
(4 KB to 64 KB) and reports per-write latency and overall throughput.

Expected shape: once the queue is at least as big as the write, latency
is dominated by the write size itself; a 32 KB queue achieves the best
throughput across group-commit sizes (OLTP records stay under ~20 KB, so
32 KB absorbs a whole group without mid-write credit checks).
"""

from repro.bench.parallel import run_cells
from repro.bench.stacks import build_villars
from repro.host.api import XssdLogFile
from repro.sim import Engine
from repro.sim.stats import LatencyRecorder
from repro.sim.units import KIB

GROUP_SIZES = tuple(k * KIB for k in (1, 2, 4, 8, 16, 32, 64))
QUEUE_SIZES = tuple(k * KIB for k in (4, 8, 16, 32, 64))


def run_one(group_bytes, queue_bytes, writes=64):
    """One (group size, queue size) cell; returns latency + throughput."""
    engine = Engine()
    device = build_villars(engine, "sram", queue_bytes=queue_bytes,
                           cmb_capacity=max(256 * KIB, 4 * queue_bytes))
    log = XssdLogFile(device)
    latency = LatencyRecorder()

    def writer():
        for index in range(writes):
            start = engine.now
            yield log.x_pwrite(f"group-{index}", group_bytes)
            yield log.x_fsync()
            latency.record(engine.now - start)

    start = engine.now
    done = engine.process(writer())
    finished_at = {}

    def _mark(_event):
        finished_at["t"] = engine.now

    done.then(_mark)
    engine.run(until=120e9)
    if not done.triggered:
        raise RuntimeError(
            f"writer stalled (group={group_bytes}, queue={queue_bytes})"
        )
    elapsed = finished_at["t"] - start
    return {
        "group_kib": group_bytes // KIB,
        "queue_kib": queue_bytes // KIB,
        "mean_latency_us": latency.mean / 1e3,
        "throughput_mb_per_s": writes * group_bytes * 1e9 / elapsed / 1e6,
        "credit_checks": log.credit_checks,
    }


def cells(group_sizes=GROUP_SIZES, queue_sizes=QUEUE_SIZES, writes=64):
    """The figure's independent cells, in output order."""
    return [
        {"group_bytes": group_bytes, "queue_bytes": queue_bytes,
         "writes": writes}
        for queue_bytes in queue_sizes
        for group_bytes in group_sizes
    ]


def run_fig11(group_sizes=GROUP_SIZES, queue_sizes=QUEUE_SIZES, writes=64,
              jobs=None):
    return run_cells(
        run_one, cells(group_sizes, queue_sizes, writes), jobs=jobs
    )
