"""NAND realism bench: erase suspend/resume, aging, and write pipelining.

Three cells, each isolating one mechanism of the per-die resource
manager (:mod:`repro.nand.dies`):

* **suspend** — paced host reads against a die running back-to-back GC
  erases, with erase suspend/resume off and on.  The point of the
  feature is the read tail: without suspension a read can sit behind a
  full ~3 ms tBERS; with it the read pays the suspend latency plus its
  own service time.
* **aged** — the same read workload against a young device and one
  pre-aged past its rated endurance, with a wear-aware ECC model
  attached.  Aged blocks fail reads more, so the FTL's
  retry-then-retire path (read retries, then :class:`ReadRetired`)
  engages visibly on the aged variant and stays dormant on the young
  one.
* **pipeline** — a sequential one-die write stream under four issue
  modes (plain, cache program, multi-plane, cache + multi-plane),
  showing the per-page cost move from ``transfer + tPROG`` toward
  ``max(transfer, tPROG) / planes``.
"""

from repro.ftl.mapping import PageMappingFtl, ReadRetired
from repro.nand.channel import Channel
from repro.nand.dies import DieQos
from repro.nand.ecc import EccFaultModel, WearCurve
from repro.nand.geometry import Geometry
from repro.nand.timing import NandTiming
from repro.sim import Engine
from repro.sim.units import KIB, MICROS


def _percentile(values, fraction):
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


# -- cell 1: erase suspend/resume vs read tail -------------------------------------


def run_suspend_cell(suspend, reads=96, read_period_ns=500_000.0):
    """Read p50/p99 under continuous GC erase load, suspend off or on."""
    engine = Engine()
    geometry = Geometry(channels=1, ways_per_channel=1, blocks_per_die=8,
                        pages_per_block=32, page_bytes=4 * KIB)
    timing = NandTiming()
    qos = DieQos(suspend_for_reads=suspend, suspendable_classes=("gc",),
                 max_suspends_per_erase=8)
    channel = Channel(engine, geometry, timing, channel_id=0, qos=qos)

    def seed():
        for page in range(geometry.pages_per_block):
            yield channel.program(0, 0, page, f"page-{page}",
                                  geometry.page_bytes)

    engine.process(seed(), name="seed")
    engine.run()

    stop = {"done": False}

    def erase_churn():
        # GC hammering one spare block: the die is mid-erase essentially
        # always, so every read arrives against a suspendable erase.
        while not stop["done"]:
            yield channel.erase(0, 1, op_class="gc")

    latencies = []

    def reader():
        for i in range(reads):
            started = engine.now
            yield channel.read(0, 0, i % geometry.pages_per_block)
            latencies.append(engine.now - started)
            # Deterministic jitter: without it the reads lock into the
            # erase period and every latency is identical, which makes
            # the percentiles degenerate.
            yield engine.timeout(read_period_ns * (0.5 + (i % 9) / 8.0))
        stop["done"] = True

    engine.process(erase_churn(), name="erase-churn")
    engine.process(reader(), name="reader")
    engine.run()
    snapshot = channel.resources.snapshot()
    return {
        "cell": "suspend-on" if suspend else "suspend-off",
        "reads": len(latencies),
        "read_p50_us": _percentile(latencies, 0.50) / MICROS,
        "read_p99_us": _percentile(latencies, 0.99) / MICROS,
        "read_mean_us": sum(latencies) / len(latencies) / MICROS,
        "suspends": snapshot["suspends"],
        "resumes": snapshot["resumes"],
    }


# -- cell 2: wear-driven ECC failures and retire rate ------------------------------

#: Deliberately compressed wear curve: an end-of-life block fails about
#: half its reads, so a few hundred reads exercise retry *and* retire
#: without simulating billions of operations.
AGED_CURVE = dict(base_ber=1e-7, max_ber=1e-4, endurance=1_000,
                  disturb_reads=50_000, uncorrectable_scale=5_000.0)


def run_aged_cell(aged, reads=400, lbas=32, seed=11):
    """Retry/retire counters for a young vs pre-aged device."""
    engine = Engine()
    geometry = Geometry(channels=1, ways_per_channel=1, blocks_per_die=16,
                        pages_per_block=16, page_bytes=4 * KIB)
    fault = EccFaultModel(seed=seed, wear_curve=WearCurve(**AGED_CURVE))
    channel = Channel(engine, geometry, NandTiming(), channel_id=0,
                      fault_model=fault)
    ftl = PageMappingFtl(engine, [channel], geometry, read_retry_limit=3)

    def fill():
        for lba in range(lbas):
            yield ftl.write(lba, f"payload-{lba}", geometry.page_bytes)

    engine.process(fill(), name="fill")
    engine.run()
    if aged:
        # Age the whole die past its rated endurance in one stroke — the
        # bench measures the ECC/FTL response to wear, not the years of
        # churn that produce it.
        for block in channel.die(0).blocks:
            block.erase_count = 1_200

    outcomes = {"ok": 0, "retired": 0}

    def hammer():
        for i in range(reads):
            try:
                yield ftl.read(i % lbas)
            except ReadRetired:
                outcomes["retired"] += 1
            else:
                outcomes["ok"] += 1

    engine.process(hammer(), name="hammer")
    engine.run()
    return {
        "cell": "aged" if aged else "young",
        "reads": reads,
        "reads_ok": outcomes["ok"],
        "read_retries": ftl.read_retries,
        "read_retirements": ftl.read_retirements,
        "blocks_retired": len(ftl.allocator.bad_blocks),
        "ecc_errors": fault.errors_raised,
    }


# -- cell 3: cache-program and multi-plane write pipelining ------------------------

PIPELINE_MODES = ("plain", "cache", "multiplane", "cache+multiplane")


def run_pipeline_cell(mode, pages=32):
    """Sequential one-die write stream; returns per-page cost and rate.

    A slow bus (transfer comparable to tPROG) makes the pipelining
    visible: cache program hides the transfer behind the previous cell
    phase, multi-plane halves the cell phases, and together they
    approach ``max(transfer, tPROG)`` per two pages.
    """
    engine = Engine()
    geometry = Geometry(channels=1, ways_per_channel=1, blocks_per_die=8,
                        pages_per_block=32, page_bytes=16 * KIB,
                        planes_per_die=2)
    timing = NandTiming(bus_bandwidth=0.05)  # 327 us transfer vs 600 us tPROG
    channel = Channel(engine, geometry, timing, channel_id=0)
    page_bytes = geometry.page_bytes
    events = []
    if "multiplane" in mode:
        for page in range(pages // 2):
            ops = [(0, page, f"a-{page}", page_bytes),
                   (1, page, f"b-{page}", page_bytes)]
            events.append(channel.program_multi(0, ops,
                                                cache="cache" in mode))
    else:
        for page in range(pages):
            events.append(channel.program(0, 0, page, f"p-{page}",
                                          page_bytes, cache=mode == "cache"))

    def waiter():
        for event in events:
            yield event

    engine.process(waiter(), name="waiter")
    engine.run()
    elapsed = engine.now
    return {
        "cell": mode,
        "pages": pages,
        "total_us": elapsed / MICROS,
        "per_page_us": elapsed / pages / MICROS,
        "throughput_mb_per_s": pages * page_bytes / elapsed * 1e3,
    }


# -- assembly ----------------------------------------------------------------------


def run_nand_bench(reads=96, aged_reads=400, pages=32):
    """All three cells; returns ``{"suspend": [...], "aged": [...],
    "pipeline": [...]}``."""
    return {
        "suspend": [run_suspend_cell(False, reads=reads),
                    run_suspend_cell(True, reads=reads)],
        "aged": [run_aged_cell(False, reads=aged_reads),
                 run_aged_cell(True, reads=aged_reads)],
        "pipeline": [run_pipeline_cell(mode, pages=pages)
                     for mode in PIPELINE_MODES],
    }
