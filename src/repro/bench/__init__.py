"""The benchmark harness: one experiment per paper figure.

Each experiment module builds the full simulated stack, runs the workload
the paper describes, and returns structured rows (plus a text rendering
shaped like the figure's series).  The ``benchmarks/`` directory wraps
these in pytest-benchmark entry points; the ``examples/`` scripts reuse
them directly.
"""

from repro.bench.reporting import format_series, format_table
from repro.bench.parallel import run_cells
from repro.bench.chaos import load_plan, run_chaos_bench
from repro.bench.dr import run_dr_bench
from repro.bench.fleet import run_fleet_bench
from repro.bench.kernel import run_kernel_bench
from repro.bench.nand import run_nand_bench
from repro.bench.slo import run_slo_bench
from repro.bench.fig09_local_logging import run_fig09
from repro.bench.fig10_write_combining import run_fig10
from repro.bench.fig11_queue_size import run_fig11
from repro.bench.fig12_destage_priority import run_fig12
from repro.bench.fig13_replication_delay import run_fig13

__all__ = [
    "format_table",
    "format_series",
    "run_cells",
    "load_plan",
    "run_chaos_bench",
    "run_dr_bench",
    "run_fleet_bench",
    "run_kernel_bench",
    "run_nand_bench",
    "run_slo_bench",
    "run_fig09",
    "run_fig10",
    "run_fig11",
    "run_fig12",
    "run_fig13",
]
