"""Diurnal, bursty multi-tenant traffic: the shape real fleets serve.

The synthetic streams in :mod:`repro.workloads.synthetic` offer load at
a *fixed* rate — fine for saturation microbenchmarks, useless for
studying graceful degradation, where what matters is how the system
behaves while the offered load moves.  This module models the three
phenomena a day of production traffic is made of:

* **regional day/night waves** — each tenant belongs to a region whose
  load follows a sinusoid over the simulated day, phase-shifted per
  region so the fleet's aggregate never quite sleeps;
* **flash crowds** — Poisson-arriving surges that multiply one tenant's
  rate and decay exponentially (a product launch, a celebrity link);
* **heavy-tailed tenant sizes** — tenant base rates follow a Zipf law,
  so a handful of tenants dominate and the long tail is wide.

Everything is derived from one seed through :func:`repro.sim.rng.derive`
(one child stream per concern), so two runs with the same seed produce
byte-identical traffic — the property the SLO bench's with/without
controller comparison and the checker's replays both rest on.

The model itself is pure (``rate_at(tenant, t)`` is a closed-form
function of precomputed crowds); only the *generator* processes draw
interarrival jitter, each from its own derived stream.
"""

import math

from repro.sim.rng import derive

TWO_PI = 2.0 * math.pi


def zipf_weights(count, alpha=1.1):
    """Normalized Zipf(alpha) weights for ``count`` tenants, largest first.

    ``alpha`` around 1 gives the classic "few whales, long tail" shape;
    weights sum to 1.0 so they distribute a fleet-wide base rate.
    """
    if count < 1:
        raise ValueError("need at least one tenant")
    raw = [1.0 / (rank ** alpha) for rank in range(1, count + 1)]
    total = sum(raw)
    return [value / total for value in raw]


class FlashCrowd:
    """One surge: starts at ``at_ns``, multiplies a tenant's rate by
    ``1 + amplitude * exp(-(t - at_ns) / decay_ns)`` while active."""

    __slots__ = ("tenant_index", "at_ns", "amplitude", "decay_ns")

    def __init__(self, tenant_index, at_ns, amplitude, decay_ns):
        self.tenant_index = tenant_index
        self.at_ns = at_ns
        self.amplitude = amplitude
        self.decay_ns = decay_ns

    def multiplier(self, now_ns):
        if now_ns < self.at_ns:
            return 1.0
        age = now_ns - self.at_ns
        if age > 8.0 * self.decay_ns:  # fully decayed; skip the exp()
            return 1.0
        return 1.0 + self.amplitude * math.exp(-age / self.decay_ns)

    def as_dict(self):
        return {
            "tenant_index": self.tenant_index,
            "at_ns": self.at_ns,
            "amplitude": self.amplitude,
            "decay_ns": self.decay_ns,
        }


class DiurnalTrafficModel:
    """Deterministic per-tenant offered rate over one compressed day.

    ``base_rate_per_ns`` is the fleet-wide mean transaction rate; each
    tenant's share of it is Zipf-weighted.  ``regions`` spreads tenants
    round-robin over evenly phase-shifted sinusoids of depth
    ``diurnal_depth`` (0 = flat, 1 = full day/night swing).  Flash
    crowds arrive Poisson at ``crowd_rate_per_day`` per tenant-day,
    each with amplitude and decay drawn from the crowd stream.

    The model never touches the engine: ``rate_at`` is a pure function,
    so probes, benches, and the checker see identical traffic.
    """

    def __init__(self, seed, tenants, day_ns, base_rate_per_ns,
                 regions=3, diurnal_depth=0.6, zipf_alpha=1.1,
                 crowd_rate_per_day=1.0, crowd_amplitude=6.0,
                 crowd_decay_fraction=0.04, min_rate_fraction=0.05):
        if tenants < 1:
            raise ValueError("need at least one tenant")
        if day_ns <= 0:
            raise ValueError("the day must have positive length")
        if base_rate_per_ns <= 0:
            raise ValueError("base rate must be positive")
        self.seed = seed
        self.tenants = tenants
        self.day_ns = float(day_ns)
        self.base_rate_per_ns = float(base_rate_per_ns)
        self.regions = max(1, int(regions))
        self.diurnal_depth = float(diurnal_depth)
        self.min_rate_fraction = float(min_rate_fraction)
        self.weights = zipf_weights(tenants, zipf_alpha)
        self.crowds = self._spawn_crowds(
            crowd_rate_per_day, crowd_amplitude, crowd_decay_fraction,
        )

    def _spawn_crowds(self, rate_per_day, amplitude, decay_fraction):
        """Poisson crowd arrivals per tenant, exponentially spaced."""
        crowds = []
        for tenant in range(self.tenants):
            rng = derive(self.seed, "flash-crowds", tenant)
            if rate_per_day <= 0:
                continue
            mean_gap = self.day_ns / rate_per_day
            at = rng.exponential_ns(mean_gap)
            while at < self.day_ns:
                crowds.append(FlashCrowd(
                    tenant, at,
                    amplitude=amplitude * (0.5 + rng.random()),
                    decay_ns=self.day_ns * decay_fraction
                    * (0.5 + rng.random()),
                ))
                at += rng.exponential_ns(mean_gap)
        crowds.sort(key=lambda crowd: (crowd.at_ns, crowd.tenant_index))
        return crowds

    def region_of(self, tenant_index):
        return tenant_index % self.regions

    def diurnal_factor(self, tenant_index, now_ns):
        """The tenant's region sinusoid at ``now_ns``, in (0, 1+depth]."""
        phase = TWO_PI * self.region_of(tenant_index) / self.regions
        wave = math.sin(TWO_PI * (now_ns % self.day_ns) / self.day_ns
                        + phase)
        return 1.0 + self.diurnal_depth * wave

    def crowd_factor(self, tenant_index, now_ns):
        factor = 1.0
        for crowd in self.crowds:
            if crowd.tenant_index == tenant_index:
                factor *= crowd.multiplier(now_ns)
        return factor

    def rate_at(self, tenant_index, now_ns):
        """Offered transactions per ns for one tenant at one instant."""
        base = self.base_rate_per_ns * self.weights[tenant_index]
        rate = (base * self.diurnal_factor(tenant_index, now_ns)
                * self.crowd_factor(tenant_index, now_ns))
        floor = base * self.min_rate_fraction
        return max(rate, floor)

    def fleet_rate_at(self, now_ns):
        return sum(self.rate_at(tenant, now_ns)
                   for tenant in range(self.tenants))

    def peak_tenant(self, now_ns):
        """The hottest tenant right now (the lane-weight actuator's cue)."""
        return max(range(self.tenants),
                   key=lambda tenant: self.rate_at(tenant, now_ns))

    def describe(self):
        return {
            "tenants": self.tenants,
            "day_ns": self.day_ns,
            "regions": self.regions,
            "weights": list(self.weights),
            "crowds": [crowd.as_dict() for crowd in self.crowds],
        }


def bursty_tenant_stream(engine, submit, model, tenant_index, duration_ns,
                         stop=None):
    """Drive one tenant's load through ``submit`` (a sim process).

    ``submit()`` must be a generator function executing one transaction
    (e.g. a closure over :func:`repro.cluster.fleet.run_shard_body`);
    it is driven to completion — closed-loop per tenant, so an overloaded
    node back-pressures its tenants instead of queueing unboundedly —
    while the *interarrival gaps* track the model's time-varying rate:
    each gap is exponential with mean ``1 / rate_at(tenant, now)``,
    re-sampled at the instant the previous transaction finished, which
    is how a flash crowd raises pressure mid-stream.

    Returns the completion event; its value is the tenant's stats dict.
    ``stop`` (a dict with a ``"now"`` flag) allows early shutdown.
    """
    rng = derive(model.seed, "bursty-stream", tenant_index)
    stats = {"offered": 0, "completed": 0, "tenant": tenant_index}

    def _proc():
        deadline = engine.now + duration_ns
        while engine.now < deadline:
            if stop is not None and stop.get("now"):
                break
            rate = model.rate_at(tenant_index, engine.now)
            gap = rng.exponential_ns(1.0 / rate)
            yield engine.timeout(min(gap, max(deadline - engine.now, 1.0)))
            if engine.now >= deadline:
                break
            stats["offered"] += 1
            yield from submit()
            stats["completed"] += 1
        return stats

    return engine.process(_proc(), name=f"bursty-tenant-{tenant_index}")
