"""Workload generators driving the benchmarks.

* :mod:`repro.workloads.tpcc` — a TPC-C-shaped transactional workload
  (five transaction types, standard mix, warehouse scaling) producing the
  log-record profile the paper's Fig. 9 and 11 experiments rely on;
* :mod:`repro.workloads.ycsb` — a key/value update workload with zipfian
  skew, for broader coverage;
* :mod:`repro.workloads.synthetic` — raw append streams with controlled
  write sizes and rates, used by the microbenchmarks (Figs. 10-13);
* :mod:`repro.workloads.diurnal` — bursty multi-tenant traffic (regional
  day/night sinusoids, Poisson flash crowds, Zipf tenant sizes) driving
  the SLO control-plane experiments.
"""

from repro.workloads.diurnal import (
    DiurnalTrafficModel,
    FlashCrowd,
    bursty_tenant_stream,
    zipf_weights,
)
from repro.workloads.synthetic import AppendStream, paced_append_stream
from repro.workloads.tpcc import TpccConfig, TpccWorkload
from repro.workloads.ycsb import YcsbConfig, YcsbWorkload

__all__ = [
    "TpccConfig",
    "TpccWorkload",
    "YcsbConfig",
    "YcsbWorkload",
    "AppendStream",
    "paced_append_stream",
    "DiurnalTrafficModel",
    "FlashCrowd",
    "bursty_tenant_stream",
    "zipf_weights",
]
