"""Workload generators driving the benchmarks.

* :mod:`repro.workloads.tpcc` — a TPC-C-shaped transactional workload
  (five transaction types, standard mix, warehouse scaling) producing the
  log-record profile the paper's Fig. 9 and 11 experiments rely on;
* :mod:`repro.workloads.ycsb` — a key/value update workload with zipfian
  skew, for broader coverage;
* :mod:`repro.workloads.synthetic` — raw append streams with controlled
  write sizes and rates, used by the microbenchmarks (Figs. 10-13).
"""

from repro.workloads.synthetic import AppendStream, paced_append_stream
from repro.workloads.tpcc import TpccConfig, TpccWorkload
from repro.workloads.ycsb import YcsbConfig, YcsbWorkload

__all__ = [
    "TpccConfig",
    "TpccWorkload",
    "YcsbConfig",
    "YcsbWorkload",
    "AppendStream",
    "paced_append_stream",
]
