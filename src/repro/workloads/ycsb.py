"""A YCSB-style key/value workload with zipfian key skew.

Used for coverage beyond TPC-C: uniform-or-skewed single-record updates
with a configurable read fraction and value size — a useful stress for
the log path because every update transaction emits exactly one data
record plus a commit record.
"""

import math
from dataclasses import dataclass

from repro.sim.rng import derive


@dataclass(frozen=True)
class YcsbConfig:
    records: int = 10_000
    value_bytes: int = 100
    read_fraction: float = 0.5
    zipf_theta: float = 0.99  # 0 disables skew
    seed: int = 7

    def __post_init__(self):
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError("read_fraction outside [0, 1]")
        if self.records < 1:
            raise ValueError("need at least one record")


class ZipfGenerator:
    """Classic Gray et al. zipfian index generator over [0, n)."""

    def __init__(self, n, theta, rng):
        self.n = n
        self.theta = theta
        self.rng = rng
        self.zetan = sum(1.0 / math.pow(i + 1, theta) for i in range(n))
        self.alpha = 1.0 / (1.0 - theta)
        zeta2 = sum(1.0 / math.pow(i + 1, theta) for i in range(2))
        self.eta = (1 - math.pow(2.0 / n, 1 - theta)) / (
            1 - zeta2 / self.zetan
        )

    def next(self):
        u = self.rng.random()
        uz = u * self.zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + math.pow(0.5, self.theta):
            return 1
        return int(self.n * math.pow(self.eta * u - self.eta + 1, self.alpha))


class YcsbWorkload:
    """Generates YCSB transaction bodies for Database.run_worker."""

    TABLE = "usertable"

    def __init__(self, config=None, worker_id=0):
        self.config = config or YcsbConfig()
        self.rng = derive(self.config.seed, "ycsb", worker_id)
        if self.config.zipf_theta > 0:
            self._zipf = ZipfGenerator(
                min(self.config.records, 1000),  # bounded zeta computation
                self.config.zipf_theta,
                self.rng,
            )
        else:
            self._zipf = None
        self.reads = 0
        self.updates = 0

    @classmethod
    def create_schema(cls, database):
        database.create_table(cls.TABLE)

    def populate(self, database, records=None):
        count = records if records is not None else min(
            self.config.records, 1000
        )
        for key in range(count):
            database.table(self.TABLE).install(
                key, "x" * self.config.value_bytes, 0
            )

    def _key(self):
        if self._zipf is not None:
            return self._zipf.next()
        return self.rng.randint(0, min(self.config.records, 1000) - 1)

    def __iter__(self):
        return self

    def __next__(self):
        key = self._key()
        if self.rng.random() < self.config.read_fraction:
            self.reads += 1

            def body(txn, key=key):
                txn.read(self.TABLE, key)

            return body
        self.updates += 1
        value = "v" * self.config.value_bytes

        def body(txn, key=key, value=value):
            txn.write(self.TABLE, key, value)

        return body
