"""Synthetic append streams for the microbenchmarks.

The Figs. 10-13 experiments do not need a database: they drive the fast
side (or the conventional side) with controlled byte streams — fixed
write sizes, fixed offered rates, optional group-commit-style batching.
These helpers produce such streams as simulation processes.
"""

from repro.sim.rng import derive


class AppendStream:
    """A writer pushing fixed-size appends through an x_pwrite-style file.

    ``think_time_ns`` spaces the writes (0 = closed loop at full speed).
    Statistics: per-write latency samples and total bytes pushed.
    """

    def __init__(self, engine, log_file, write_bytes, count=None,
                 think_time_ns=0.0, fsync_every=1):
        if write_bytes <= 0:
            raise ValueError("write size must be positive")
        if fsync_every < 1:
            raise ValueError("fsync_every must be >= 1")
        self.engine = engine
        self.log_file = log_file
        self.write_bytes = write_bytes
        self.count = count
        self.think_time_ns = think_time_ns
        self.fsync_every = fsync_every
        self.latencies = []
        self.bytes_written = 0
        self.writes_done = 0
        self._stop = False

    def stop(self):
        self._stop = True

    def run(self):
        """Start the writer; returns its completion event."""
        return self.engine.process(self._run(), name="append-stream")

    def _run(self):
        index = 0
        while not self._stop and (self.count is None or index < self.count):
            start = self.engine.now
            yield self.log_file.x_pwrite(f"append-{index}", self.write_bytes)
            if (index + 1) % self.fsync_every == 0:
                yield self.log_file.x_fsync()
            self.latencies.append(self.engine.now - start)
            self.bytes_written += self.write_bytes
            self.writes_done += 1
            if self.think_time_ns:
                yield self.engine.timeout(self.think_time_ns)
            index += 1
        return self.writes_done

    def throughput_bytes_per_s(self, elapsed_ns):
        if elapsed_ns <= 0:
            return 0.0
        return self.bytes_written * 1e9 / elapsed_ns


def paced_append_stream(engine, submit, target_bytes_per_ns, write_bytes,
                        duration_ns, seed=0):
    """Offer load at a fixed rate through an arbitrary ``submit`` callable.

    ``submit(nbytes)`` must return a completion event (it is *not* waited
    on before the next submission — this is an open-loop generator, which
    is what saturation experiments like Fig. 12 need).  Returns a process
    whose value is a dict of offered/completed counters.
    """
    if target_bytes_per_ns <= 0:
        raise ValueError("target rate must be positive")
    rng = derive(seed, "paced-stream")
    stats = {"offered_bytes": 0, "completed_bytes": 0, "inflight_peak": 0}
    inflight = {"now": 0}

    def _proc():
        interval = write_bytes / target_bytes_per_ns
        deadline = engine.now + duration_ns
        while engine.now < deadline:
            stats["offered_bytes"] += write_bytes
            inflight["now"] += 1
            stats["inflight_peak"] = max(stats["inflight_peak"],
                                         inflight["now"])
            done = submit(write_bytes)

            def _completed(_event):
                stats["completed_bytes"] += write_bytes
                inflight["now"] -= 1

            done.then(_completed)
            # Jitter +/-10% keeps pathological phase-locking away.
            jitter = interval * (0.9 + 0.2 * rng.random())
            yield engine.timeout(jitter)
        return stats

    return engine.process(_proc(), name="paced-stream")
