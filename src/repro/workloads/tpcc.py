"""A TPC-C-shaped transactional workload.

This implements the order-processing schema and the five transaction
types of the TPC-C benchmark at the fidelity the storage experiments
need: the standard transaction mix, warehouse/district scaling, NURand
key skew, and — most importantly — the per-transaction *log footprint*
(how many rows each transaction type touches and how big the resulting
WAL records are).  The paper runs 16 warehouses on ERMIA; that is the
default here.

The generator produces transaction bodies compatible with
:meth:`repro.db.engine.Database.run_worker`.
"""

from dataclasses import dataclass

from repro.sim.rng import derive

# Standard transaction mix (fractions of the workload).
MIX = (
    ("new_order", 0.45),
    ("payment", 0.43),
    ("order_status", 0.04),
    ("delivery", 0.04),
    ("stock_level", 0.04),
)

TABLES = (
    "warehouse",
    "district",
    "customer",
    "stock",
    "item",
    "orders",
    "order_line",
    "new_orders",
    "history",
)

DISTRICTS_PER_WAREHOUSE = 10
CUSTOMERS_PER_DISTRICT = 3000
ITEMS = 100_000


@dataclass(frozen=True)
class TpccConfig:
    """Workload parameters (paper defaults: 16 warehouses)."""

    warehouses: int = 16
    seed: int = 42
    # Scaled-down population for simulation memory friendliness; key
    # *ranges* stay spec-shaped, only pre-loaded rows are sparse.
    preload_customers_per_district: int = 30
    preload_items: int = 1000


class TpccWorkload:
    """Generates transaction bodies with TPC-C's shape."""

    def __init__(self, config=None, worker_id=0):
        self.config = config or TpccConfig()
        self.rng = derive(self.config.seed, "tpcc", worker_id)
        self.worker_id = worker_id
        self.home_warehouse = 1 + worker_id % self.config.warehouses
        self.generated = {name: 0 for name, _weight in MIX}

    # -- schema / population --------------------------------------------------------

    @staticmethod
    def create_schema(database):
        for table in TABLES:
            database.create_table(table)

    def populate(self, database):
        """Pre-load a sparse but spec-shaped population (no logging)."""
        cfg = self.config
        for warehouse in range(1, cfg.warehouses + 1):
            database.table("warehouse").install(
                warehouse, {"ytd": 0.0, "tax": 0.1}, 0
            )
            for district in range(1, DISTRICTS_PER_WAREHOUSE + 1):
                database.table("district").install(
                    (warehouse, district),
                    {"ytd": 0.0, "tax": 0.1, "next_o_id": 3001},
                    0,
                )
                for customer in range(1, cfg.preload_customers_per_district + 1):
                    database.table("customer").install(
                        (warehouse, district, customer),
                        {"balance": 0.0, "ytd_payment": 0.0, "data": "C" * 64},
                        0,
                    )
        for item in range(1, cfg.preload_items + 1):
            database.table("item").install(
                item, {"price": 9.99, "name": f"item-{item}"}, 0
            )
            for warehouse in range(1, cfg.warehouses + 1):
                database.table("stock").install(
                    (warehouse, item), {"quantity": 100, "ytd": 0}, 0
                )

    # -- key generators ----------------------------------------------------------------

    def _district(self):
        return self.rng.randint(1, DISTRICTS_PER_WAREHOUSE)

    def _customer(self):
        c = self.rng.nonuniform(1023, 1, CUSTOMERS_PER_DISTRICT)
        # Map into the preloaded sparse range, preserving skew.
        return 1 + c % self.config.preload_customers_per_district

    def _item(self):
        i = self.rng.nonuniform(8191, 1, ITEMS)
        return 1 + i % self.config.preload_items

    # -- transaction bodies ---------------------------------------------------------------

    def __iter__(self):
        return self

    def __next__(self):
        """Draw the next transaction body per the standard mix."""
        roll = self.rng.random()
        cumulative = 0.0
        for name, weight in MIX:
            cumulative += weight
            if roll < cumulative:
                self.generated[name] += 1
                return getattr(self, f"_{name}")()
        self.generated[MIX[-1][0]] += 1
        return self._stock_level()

    def _new_order(self):
        warehouse = self.home_warehouse
        district = self._district()
        customer = self._customer()
        lines = self.rng.randint(5, 15)
        items = [self._item() for _ in range(lines)]
        quantities = [self.rng.randint(1, 10) for _ in range(lines)]

        def body(txn):
            # The order id is the district's counter (D_NEXT_O_ID), read
            # and advanced transactionally — so retries after an abort
            # allocate a fresh id and the per-district arithmetic holds.
            district_row = txn.read("district", (warehouse, district)) or {
                "next_o_id": 3001, "ytd": 0.0, "tax": 0.1
            }
            order_id = district_row["next_o_id"]
            txn.write(
                "district", (warehouse, district),
                {**district_row, "next_o_id": order_id + 1},
            )
            txn.write(
                "orders", (warehouse, district, order_id),
                {"customer": customer, "lines": lines, "carrier": None},
            )
            txn.write("new_orders", (warehouse, district, order_id), True)
            for line, (item, quantity) in enumerate(zip(items, quantities), 1):
                stock = txn.read("stock", (warehouse, item)) or {
                    "quantity": 100, "ytd": 0
                }
                new_quantity = stock["quantity"] - quantity
                if new_quantity < 10:
                    new_quantity += 91
                txn.write(
                    "stock", (warehouse, item),
                    {"quantity": new_quantity, "ytd": stock["ytd"] + quantity},
                )
                txn.write(
                    "order_line",
                    (warehouse, district, order_id, line),
                    {"item": item, "quantity": quantity,
                     "amount": quantity * 9.99, "info": "S" * 24},
                )

        return body

    def _payment(self):
        warehouse = self.home_warehouse
        district = self._district()
        customer = self._customer()
        amount = self.rng.uniform(1.0, 5000.0)

        def body(txn):
            warehouse_row = txn.read("warehouse", warehouse) or {
                "ytd": 0.0, "tax": 0.1
            }
            txn.write(
                "warehouse", warehouse,
                {**warehouse_row, "ytd": warehouse_row["ytd"] + amount},
            )
            district_row = txn.read("district", (warehouse, district)) or {
                "ytd": 0.0, "tax": 0.1, "next_o_id": 1
            }
            txn.write(
                "district", (warehouse, district),
                {**district_row, "ytd": district_row["ytd"] + amount},
            )
            customer_row = txn.read(
                "customer", (warehouse, district, customer)
            ) or {"balance": 0.0, "ytd_payment": 0.0, "data": ""}
            txn.write(
                "customer", (warehouse, district, customer),
                {**customer_row,
                 "balance": customer_row["balance"] - amount,
                 "ytd_payment": customer_row["ytd_payment"] + amount},
            )
            txn.write(
                "history",
                (warehouse, district, customer, txn.txn_id),
                {"amount": amount, "data": "H" * 24},
            )

        return body

    def _order_status(self):
        warehouse = self.home_warehouse
        district = self._district()
        customer = self._customer()

        def body(txn):
            txn.read("customer", (warehouse, district, customer))
            district_row = txn.read("district", (warehouse, district))
            if district_row is not None:
                last_order = district_row["next_o_id"] - 1
                txn.read("orders", (warehouse, district, last_order))

        return body

    def _delivery(self):
        warehouse = self.home_warehouse
        carrier = self.rng.randint(1, 10)

        def body(txn):
            for district in range(1, DISTRICTS_PER_WAREHOUSE + 1):
                district_row = txn.read("district", (warehouse, district))
                if district_row is None:
                    continue
                # Deliver the oldest plausibly-undelivered order: walk a
                # few ids back from the district's counter.
                for order_id in range(
                    max(3001, district_row["next_o_id"] - 5),
                    district_row["next_o_id"],
                ):
                    order = txn.read("orders",
                                     (warehouse, district, order_id))
                    if order is None or order.get("carrier") is not None:
                        continue
                    txn.write(
                        "orders", (warehouse, district, order_id),
                        {**order, "carrier": carrier},
                    )
                    txn.write("new_orders",
                              (warehouse, district, order_id), None)
                    break

        return body

    def _stock_level(self):
        warehouse = self.home_warehouse
        items = [self._item() for _ in range(20)]

        def body(txn):
            for item in items:
                txn.read("stock", (warehouse, item))

        return body
