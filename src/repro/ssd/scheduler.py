"""The storage-controller write scheduler and its priority modes.

The scheduler decides, whenever flash bandwidth frees up, whether the next
program comes from the *conventional* pool (data-buffer pages) or the
*destage* pool (CMB log pages).  Section 4.3 defines three modes:

* **Neutral** — divide writing opportunities equally (round-robin while
  both pools have work);
* **DestagePriority** — destage pages first; conventional pages ride only
  in the gaps;
* **ConventionalPriority** — the reverse: destage pages are opportunistic.

"Opportunistic" here means the low-priority pool is dispatched only when
the high-priority pool has nothing pending — the scheduler never preempts
an issued flash program (flash programs are not preemptible), which is why
the mode matters most under saturation (Fig. 12).
"""

import enum
from collections import deque
from dataclasses import dataclass, field, fields
from itertools import count

from repro.nand.dies import DieQos

_request_ids = count(1)


class SchedulingMode(enum.Enum):
    NEUTRAL = "neutral"
    DESTAGE_PRIORITY = "destage"
    CONVENTIONAL_PRIORITY = "conventional"


class Source(enum.Enum):
    CONVENTIONAL = "conventional"
    DESTAGE = "destage"


@dataclass
class WriteRequest:
    """One page's worth of data waiting for flash."""

    source: Source
    lba: int
    payload: object
    nbytes: int
    completion: object = None  # Event to succeed with the physical address
    request_id: int = field(default_factory=lambda: next(_request_ids))


class WriteScheduler:
    """Arbitrates flash writes between the conventional and destage pools.

    The scheduler runs ``parallelism`` dispatch workers (one per concurrent
    flash program the array can absorb, typically channels x ways) that
    pull requests according to the active mode and drive them through the
    FTL.  Mode can be changed at runtime via an admin command.
    """

    def __init__(self, engine, ftl, mode=SchedulingMode.NEUTRAL,
                 parallelism=None, name="scheduler"):
        self.engine = engine
        self.ftl = ftl
        self.mode = mode
        self.name = name
        if parallelism is None:
            geometry = ftl.geometry
            parallelism = geometry.channels * geometry.ways_per_channel
        self.parallelism = parallelism
        self._pools = {
            Source.CONVENTIONAL: deque(),
            Source.DESTAGE: deque(),
        }
        self._work_available = engine.event()
        self._running = False
        self.dispatched = {Source.CONVENTIONAL: 0, Source.DESTAGE: 0}
        self.bytes_written = {Source.CONVENTIONAL: 0, Source.DESTAGE: 0}
        self.striped_dispatches = 0

    # -- QoS ----------------------------------------------------------------------

    @property
    def qos(self):
        """The :class:`~repro.nand.dies.DieQos` shared with the channels."""
        return self.ftl.qos

    def set_qos(self, **changes):
        """Mutate the shared die QoS policy in place (admin knob).

        The object is shared with every channel's resource manager, so
        changes take effect for operations issued after this call.
        """
        valid = {f.name for f in fields(DieQos)}
        qos = self.qos
        for key, value in changes.items():
            if key not in valid:
                raise ValueError(f"unknown QoS knob {key!r}")
            setattr(qos, key, value)
        return qos

    # -- intake -------------------------------------------------------------------

    def enqueue(self, request):
        """Queue ``request``; returns an event firing at program completion."""
        if request.completion is None:
            request.completion = self.engine.event()
        tracer = self.engine.tracer
        if tracer.enabled:
            # Span covers queue wait + flash program; destage payloads
            # carry a stream offset that becomes the causality flow id.
            request.trace_token = tracer.begin(
                self.name, f"{request.source.value}-write",
                flow=getattr(request.payload, "stream_offset", None),
                lba=request.lba, nbytes=request.nbytes,
            )
            tracer.counter(self.name, f"pending:{request.source.value}",
                           len(self._pools[request.source]) + 1)
        self._pools[request.source].append(request)
        self._signal()
        return request.completion

    def submit(self, source, lba, payload, nbytes):
        """Convenience: build and enqueue a request."""
        return self.enqueue(
            WriteRequest(source=source, lba=lba, payload=payload,
                         nbytes=nbytes)
        )

    def _signal(self):
        if not self._work_available.triggered:
            self._work_available.succeed()

    # -- policy --------------------------------------------------------------------

    def _pick_source(self):
        """Choose which pool feeds the next free flash slot, or None."""
        conventional = self._pools[Source.CONVENTIONAL]
        destage = self._pools[Source.DESTAGE]
        if not conventional and not destage:
            return None
        if not conventional:
            return Source.DESTAGE
        if not destage:
            return Source.CONVENTIONAL
        if self.mode is SchedulingMode.DESTAGE_PRIORITY:
            return Source.DESTAGE
        if self.mode is SchedulingMode.CONVENTIONAL_PRIORITY:
            return Source.CONVENTIONAL
        # Neutral: a traditional device has one mixed queue — serve in
        # arrival order, which degrades both streams proportionally to
        # their offered load under saturation (the Fig. 12 left shape).
        if conventional[0].request_id <= destage[0].request_id:
            return Source.CONVENTIONAL
        return Source.DESTAGE

    def pending(self, source):
        return len(self._pools[source])

    # -- dispatch ------------------------------------------------------------------

    def start(self):
        """Launch the dispatch workers."""
        if self._running:
            raise RuntimeError("scheduler already started")
        self._running = True
        return [
            self.engine.process(self._worker(), name=f"sched-worker-{i}")
            for i in range(self.parallelism)
        ]

    def stop(self):
        self._running = False
        self._signal()

    def _worker(self):
        while self._running:
            source = self._pick_source()
            if source is None:
                # Sleep until new work arrives.
                event = self._work_available
                if event.triggered:
                    self._work_available = self.engine.event()
                    continue
                yield event
                continue
            pool = self._pools[source]
            batch = [pool.popleft()]
            if self.qos.multi_plane_writes:
                # Same-source requests ride one multi-plane program when
                # the allocator has an aligned stripe open.
                planes = self.ftl.geometry.planes_per_die
                while pool and len(batch) < planes:
                    batch.append(pool.popleft())
            tracer = self.engine.tracer
            tokens = [getattr(r, "trace_token", None) for r in batch]
            try:
                if len(batch) > 1:
                    addresses = yield self.ftl.write_striped(
                        [(r.lba, r.payload, r.nbytes) for r in batch],
                        op_class=source.value,
                    )
                    self.striped_dispatches += 1
                else:
                    addresses = [(yield self.ftl.write(
                        batch[0].lba, batch[0].payload, batch[0].nbytes,
                        op_class=source.value,
                    ))]
            except Exception as error:  # modeled fault -> propagate to waiters
                for request, token in zip(batch, tokens):
                    if tracer.enabled and token is not None:
                        tracer.end(token, failed=type(error).__name__)
                    request.completion.fail(error)
                continue
            for request, token, address in zip(batch, tokens, addresses):
                self.dispatched[source] += 1
                self.bytes_written[source] += request.nbytes
                if tracer.enabled and token is not None:
                    tracer.end(token)
                request.completion.succeed(address)
