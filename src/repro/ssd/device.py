"""The assembled conventional SSD.

Wires the pieces of Figure 2 (bottom) together: PCIe link, HIC, firmware,
FTL, channels, data buffer, scheduler, GC.  The host talks to the device
through :meth:`ConventionalSsd.submit` (driver-level) or the blocking
helpers :meth:`write`, :meth:`read`, :meth:`flush` (used by the host API
layer in :mod:`repro.host`).
"""

from dataclasses import dataclass, field

from repro.ftl.gc import GarbageCollector
from repro.ftl.mapping import PageMappingFtl
from repro.nand.channel import Channel
from repro.nand.dies import DieQos
from repro.nand.geometry import Geometry
from repro.nand.timing import NandTiming
from repro.pcie.dma import DmaEngine
from repro.pcie.link import PcieLink
from repro.sim.units import MIB
from repro.ssd.data_buffer import DataBuffer
from repro.ssd.firmware import Firmware
from repro.ssd.hic import HostInterfaceController
from repro.ssd.nvme import (
    CompletionQueue,
    NvmeCommand,
    NvmeStatus,
    Opcode,
    SubmissionQueue,
)
from repro.ssd.scheduler import SchedulingMode, WriteScheduler


@dataclass
class SsdConfig:
    """Knobs for building a conventional SSD (Cosmos+-shaped defaults)."""

    geometry: Geometry = field(default_factory=Geometry)
    timing: NandTiming = field(default_factory=NandTiming)
    pcie_lanes: int = 4
    pcie_gen: int = 2
    data_buffer_bytes: int = 64 * MIB
    data_buffer_bandwidth: float = 2.0  # GB/s (DDR3 over 64-bit bus)
    queue_depth: int = 64
    scheduling_mode: SchedulingMode = SchedulingMode.NEUTRAL
    hic_pumps: int = 8
    gc_enabled: bool = True
    program_fault_model: object = None
    read_fault_model: object = None
    # Die QoS policy (erase suspend/resume, cache program, multi-plane
    # writes) shared by every channel and the scheduler; None builds the
    # all-off default, which reproduces the idealized backend exactly.
    qos: object = None


class ConventionalSsd:
    """A complete NVMe block device on a PCIe link."""

    def __init__(self, engine, config=None, name="ssd"):
        self.engine = engine
        self.config = config or SsdConfig()
        self.name = name
        cfg = self.config

        self.link = PcieLink(engine, lanes=cfg.pcie_lanes, gen=cfg.pcie_gen,
                             name=f"{name}.pcie")
        self.dma = DmaEngine(engine, self.link)
        self.qos = cfg.qos if cfg.qos is not None else DieQos()
        self.channels = [
            Channel(engine, cfg.geometry, cfg.timing, channel_id=i,
                    fault_model=cfg.read_fault_model,
                    qos=self.qos,
                    name=f"{name}.ch{i}")
            for i in range(cfg.geometry.channels)
        ]
        self.ftl = PageMappingFtl(
            engine, self.channels, cfg.geometry,
            program_fault_model=cfg.program_fault_model,
            name=f"{name}.ftl",
        )
        self.data_buffer = DataBuffer(
            engine, cfg.data_buffer_bytes,
            bandwidth=cfg.data_buffer_bandwidth,
        )
        self.scheduler = WriteScheduler(engine, self.ftl,
                                        mode=cfg.scheduling_mode,
                                        name=f"{name}.scheduler")
        self.firmware = Firmware(
            engine, self.ftl, self.data_buffer, self.scheduler,
            block_bytes=cfg.geometry.page_bytes,
        )
        self.submission_queue = SubmissionQueue(engine, depth=cfg.queue_depth)
        self.completion_queue = CompletionQueue(engine)
        self.hic = HostInterfaceController(
            engine, self.link, self.dma, self.submission_queue,
            self.completion_queue, self.firmware,
        )
        self.gc = GarbageCollector(engine, self.ftl, name=f"{name}.gc")
        self._started = False

    @property
    def block_bytes(self):
        """The device's logical block size (one flash page)."""
        return self.config.geometry.page_bytes

    def start(self):
        """Spin up the HIC pumps, scheduler workers, and GC."""
        if self._started:
            raise RuntimeError(f"{self.name} already started")
        self._started = True
        self.hic.start(pumps=self.config.hic_pumps)
        self.scheduler.start()
        if self.config.gc_enabled:
            self.gc.start()
        return self

    # -- driver-level interface ---------------------------------------------------

    def submit(self, command):
        """Submit an NVMe command; event value is the NvmeCompletion."""
        if not self._started:
            raise RuntimeError(f"{self.name} not started")
        done = self.completion_queue.expect(command.command_id)
        self.submission_queue.submit(command)
        return done

    # -- blocking helpers (used by the host API layer) ------------------------------

    def write(self, lba, payload, nblocks=1):
        """Durable block write; event value is the completion."""
        return self.submit(
            NvmeCommand(Opcode.WRITE, lba=lba, nblocks=nblocks,
                        payload=payload)
        )

    def read(self, lba, nblocks=1):
        """Block read; event value is the completion (result = payload)."""
        return self.submit(
            NvmeCommand(Opcode.READ, lba=lba, nblocks=nblocks)
        )

    def flush(self):
        return self.submit(NvmeCommand(Opcode.FLUSH))

    def admin(self, opcode, **arguments):
        """Issue an admin (possibly vendor-specific) command."""
        return self.submit(NvmeCommand(opcode, arguments=arguments))

    # -- introspection ---------------------------------------------------------------

    def write_bandwidth_ceiling(self):
        """Aggregate sustained program bandwidth of the array, bytes/ns.

        Per die: one page every (bus transfer + tPROG); dies overlap except
        on the shared channel bus.  The min of cell-limited and bus-limited
        throughput bounds the device — the 100% reference line of Fig. 12.

        With the NAND realism pack on, the per-die cost reflects it:
        cache program overlaps the transfer with the previous cell phase
        (``max`` instead of sum) and multi-plane batching amortizes one
        cell phase over ``planes_per_die`` pages.
        """
        geometry = self.config.geometry
        timing = self.config.timing
        page = geometry.page_bytes
        planes = (geometry.planes_per_die
                  if self.qos.multi_plane_writes else 1)
        transfer = timing.transfer_time(page) * planes
        cell = timing.t_program * (
            timing.multiplane_program_factor if planes > 1 else 1.0
        )
        if self.qos.cache_program:
            per_stripe = max(transfer, cell)
        else:
            per_stripe = transfer + cell
        per_die = page * planes / per_stripe
        cell_limit = per_die * geometry.dies
        bus_limit = timing.bus_bandwidth * geometry.channels
        return min(cell_limit, bus_limit)
