"""Firmware: the coordination layer between NVMe commands and flash.

The firmware owns the FTL, the data buffer, and the write scheduler.  A
write command stages its payload in the buffer and enqueues a request with
the scheduler; the command completes once the data is durable on flash
(the Cosmos+ platform carries no power-protected write cache, so the
conventional side acks only at program completion — which is exactly the
latency the fast side exists to avoid).  A read command checks the buffer
first, then falls back to the FTL.

Admin commands are dispatched to registered handlers; the X-SSD modules
register their vendor-specific handlers here (Section 4.2).
"""

from repro.ssd.nvme import AdminOpcode, Opcode
from repro.ssd.scheduler import Source, WriteRequest


class Firmware:
    """Executes NVMe commands over the device's internals."""

    def __init__(self, engine, ftl, data_buffer, scheduler, block_bytes):
        self.engine = engine
        self.ftl = ftl
        self.data_buffer = data_buffer
        self.scheduler = scheduler
        self.block_bytes = block_bytes
        self._admin_handlers = {}
        self.writes = 0
        self.reads = 0
        self.flushes = 0

    def register_admin_handler(self, opcode, handler):
        """Install ``handler(command) -> result`` for an admin opcode.

        Handlers may be plain functions or generators (for timed work).
        """
        if not isinstance(opcode, AdminOpcode):
            raise TypeError("admin handlers attach to AdminOpcode values")
        self._admin_handlers[opcode] = handler

    def execute(self, command):
        """Run ``command``; returns an event with the command's result."""
        return self.engine.process(
            self._execute_proc(command), name=f"fw {command.opcode}"
        )

    # -- internals -------------------------------------------------------------

    def _execute_proc(self, command):
        if command.is_admin:
            result = yield from self._admin(command)
            return result
        if command.opcode is Opcode.WRITE:
            result = yield from self._write(command)
            return result
        if command.opcode is Opcode.READ:
            result = yield from self._read(command)
            return result
        if command.opcode is Opcode.FLUSH:
            result = yield from self._flush(command)
            return result
        raise ValueError(f"unknown opcode {command.opcode}")

    def _admin(self, command):
        handler = self._admin_handlers.get(command.opcode)
        if handler is None:
            raise ValueError(f"no handler for admin opcode {command.opcode}")
        result = handler(command)
        if hasattr(result, "__next__"):  # generator handler: run timed
            result = yield self.engine.process(result)
        else:
            yield self.engine.timeout(0.0)
        return result

    def _write(self, command):
        nbytes = command.nblocks * self.block_bytes
        yield self.data_buffer.insert(command.lba, command.payload, nbytes)
        done = self.scheduler.enqueue(
            WriteRequest(
                source=Source.CONVENTIONAL,
                lba=command.lba,
                payload=command.payload,
                nbytes=nbytes,
            )
        )
        address = yield done
        self.data_buffer.evict(command.lba)
        self.writes += 1
        return address

    def _read(self, command):
        hit = self.data_buffer.lookup(command.lba)
        if hit is not None:
            payload, nbytes = hit
            yield self.data_buffer.port.transfer(nbytes)
            self.reads += 1
            return payload
        payload = yield self.ftl.read(command.lba)
        self.reads += 1
        return payload

    def _flush(self, command):
        """Wait until every currently staged write has reached flash."""
        self.flushes += 1
        pending = list(self.data_buffer.dirty_lbas())
        # Poll: the scheduler completes requests independently; flush
        # semantics only require the *currently dirty* set to drain.
        while any(lba in self.data_buffer for lba in pending):
            yield self.engine.timeout(1_000.0)
        return len(pending)
