"""The conventional SSD: NVMe protocol, HIC, firmware, buffer, scheduler.

This package assembles the traditional block device of Section 2.2 — the
"conventional side" that a X-SSD device contains unchanged.  The pieces
mirror Figure 2 (bottom) of the paper:

* :mod:`repro.ssd.nvme` — the command vocabulary, queues, and doorbells;
* :mod:`repro.ssd.hic` — the Host Interface Controller that fetches
  commands, DMAs data, and posts completions;
* :mod:`repro.ssd.data_buffer` — the DRAM staging area for in-flight data;
* :mod:`repro.ssd.scheduler` — the storage-controller write scheduler,
  including the Neutral / DestagePriority / ConventionalPriority modes
  that implement *opportunistic destaging* (Section 4.3, Fig. 12);
* :mod:`repro.ssd.firmware` — command-to-flash coordination over the FTL;
* :mod:`repro.ssd.device` — the assembled device.
"""

from repro.ssd.data_buffer import DataBuffer
from repro.ssd.device import ConventionalSsd, SsdConfig
from repro.ssd.hic import HostInterfaceController
from repro.ssd.nvme import (
    AdminOpcode,
    CompletionQueue,
    NvmeCommand,
    NvmeCompletion,
    NvmeStatus,
    Opcode,
    SubmissionQueue,
)
from repro.ssd.scheduler import SchedulingMode, WriteScheduler, WriteRequest

__all__ = [
    "NvmeCommand",
    "NvmeCompletion",
    "NvmeStatus",
    "Opcode",
    "AdminOpcode",
    "SubmissionQueue",
    "CompletionQueue",
    "HostInterfaceController",
    "DataBuffer",
    "SchedulingMode",
    "WriteScheduler",
    "WriteRequest",
    "ConventionalSsd",
    "SsdConfig",
]
