"""NVMe: commands, queues, doorbells, completions.

The model covers what the data path needs: I/O reads and writes with LBA
addressing, flush, and the *vendor-specific* admin commands the Villars
device adds for transport-mode control (Section 4.2: "changing the
networking mode ... is done via software", through the standard driver's
vendor-specific passthrough).
"""

import enum
from dataclasses import dataclass, field
from itertools import count

from repro.sim.resources import Store

_command_ids = count(1)


class Opcode(enum.Enum):
    """NVMe I/O command opcodes the device implements."""

    READ = "read"
    WRITE = "write"
    FLUSH = "flush"


class AdminOpcode(enum.Enum):
    """Admin opcodes, including the Villars vendor-specific extensions."""

    IDENTIFY = "identify"
    # Vendor-specific (Section 4.2 / 7.1): transport role management.
    XSSD_SET_STANDALONE = "xssd-set-standalone"
    XSSD_SET_PRIMARY = "xssd-set-primary"
    XSSD_SET_SECONDARY = "xssd-set-secondary"
    XSSD_ADD_PEER = "xssd-add-peer"
    XSSD_REMOVE_PEER = "xssd-remove-peer"
    XSSD_CONFIGURE = "xssd-configure"
    XSSD_QUERY_STATUS = "xssd-query-status"


class NvmeStatus(enum.Enum):
    SUCCESS = "success"
    MEDIA_ERROR = "media-error"
    INVALID_FIELD = "invalid-field"


@dataclass
class NvmeCommand:
    """One submission-queue entry.

    ``payload`` carries the data identity for writes (the simulator moves
    sizes over the wires and objects through the state).  ``arguments``
    carries admin parameters.
    """

    opcode: object
    lba: int = 0
    nblocks: int = 0
    payload: object = None
    arguments: dict = field(default_factory=dict)
    command_id: int = field(default_factory=lambda: next(_command_ids))
    submitted_at: float = 0.0

    @property
    def is_admin(self):
        return isinstance(self.opcode, AdminOpcode)


@dataclass
class NvmeCompletion:
    """One completion-queue entry."""

    command_id: int
    status: NvmeStatus = NvmeStatus.SUCCESS
    result: object = None


class SubmissionQueue:
    """Host-side command queue with a doorbell.

    The driver appends commands and rings the doorbell; the HIC awaits the
    doorbell and fetches.  Fetching a command costs one read round trip on
    the link (the HIC pays it), which is part of why the conventional path
    has the latency it has.
    """

    def __init__(self, engine, depth=64):
        self.engine = engine
        self.depth = depth
        self._entries = Store(engine, capacity=depth)

    def submit(self, command):
        """Append ``command``; event fires when the SQ slot is taken."""
        command.submitted_at = self.engine.now
        return self._entries.put(command)

    def fetch(self):
        """Device side: event whose value is the next command."""
        return self._entries.get()

    def __len__(self):
        return len(self._entries)


class CompletionQueue:
    """Device-to-host completions with interrupt delivery latency."""

    # MSI-X interrupt delivery + driver ISR cost, ns.
    INTERRUPT_NS = 2_000.0

    def __init__(self, engine):
        self.engine = engine
        self._waiters = {}  # command_id -> Event

    def expect(self, command_id):
        """Host side: event that fires when ``command_id`` completes."""
        if command_id in self._waiters:
            raise ValueError(f"already waiting on command {command_id}")
        event = self.engine.event()
        self._waiters[command_id] = event
        return event

    def post(self, completion):
        """Device side: deliver ``completion`` after the interrupt delay."""
        def _deliver(_event):
            waiter = self._waiters.pop(completion.command_id, None)
            if waiter is not None:
                waiter.succeed(completion)

        self.engine.timeout(self.INTERRUPT_NS).then(_deliver)
