"""The device DRAM data buffer.

Incoming write payloads land here before the scheduler moves them to flash
(Section 2.2, "the data is placed into a temporary Data Buffer area").  The
buffer also serves read hits.  Capacity is finite: when full, command
intake stalls — which is how a slow flash backend back-pressures the host.

The buffer's DRAM port is a shared :class:`~repro.sim.resources.BandwidthPipe`;
a DRAM-backed CMB can share this same port, creating the contention the
paper observes between fast-side intake and regular buffering activity.
"""

from repro.sim.resources import BandwidthPipe, Container


class DataBuffer:
    """A finite write-back cache keyed by LBA."""

    def __init__(self, engine, capacity_bytes, bandwidth=2.0,
                 access_latency_ns=80.0):
        if capacity_bytes <= 0:
            raise ValueError("buffer capacity must be positive")
        self.engine = engine
        self.capacity_bytes = capacity_bytes
        self.port = BandwidthPipe(
            engine, bandwidth, latency=access_latency_ns, name="data-buffer"
        )
        self._space = Container(engine, capacity=capacity_bytes,
                                init=capacity_bytes)
        self._entries = {}  # lba -> (payload, nbytes)
        self.hits = 0
        self.misses = 0

    def insert(self, lba, payload, nbytes):
        """Stage a write; event fires once space is reserved and data copied.

        Blocks (asynchronously) while the buffer is full.
        """
        if nbytes < 0:
            raise ValueError("negative size")
        return self.engine.process(
            self._insert_proc(lba, payload, nbytes), name=f"buf-insert {lba}"
        )

    def _insert_proc(self, lba, payload, nbytes):
        old = self._entries.get(lba)
        if old is not None:
            # Overwrite in place: reuse the old reservation, adjust delta.
            delta = nbytes - old[1]
            if delta > 0:
                yield self._space.get(delta)
            elif delta < 0:
                self._space.put(-delta)
        else:
            yield self._space.get(nbytes)
        yield self.port.transfer(nbytes)
        self._entries[lba] = (payload, nbytes)
        return lba

    def lookup(self, lba):
        """Read hit check; returns (payload, nbytes) or None."""
        entry = self._entries.get(lba)
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def evict(self, lba):
        """Drop an entry after its flash program completed; frees space."""
        entry = self._entries.pop(lba, None)
        if entry is None:
            return None
        self._space.put(entry[1])
        return entry

    def dirty_lbas(self):
        """LBAs currently staged (the scheduler's conventional work pool)."""
        return list(self._entries.keys())

    @property
    def used_bytes(self):
        return self.capacity_bytes - self._space.level

    def __contains__(self, lba):
        return lba in self._entries
