"""The Host Interface Controller: NVMe front end of the device.

The HIC fetches commands from the submission queue (paying the command
fetch round trip), DMAs write payloads into the device, hands commands to
the firmware, and posts completions back (Section 2.2's step-by-step
"Life of a Log Write").
"""

from repro.ssd.nvme import NvmeCompletion, NvmeStatus

# Size of one submission-queue entry on the wire.
SQE_BYTES = 64
# Fixed command decode / dispatch cost inside the controller, ns.
DECODE_NS = 300.0


class HostInterfaceController:
    """Front-end pump: SQ fetch -> DMA -> firmware -> CQ post."""

    def __init__(self, engine, link, dma, submission_queue, completion_queue,
                 firmware):
        self.engine = engine
        self.link = link
        self.dma = dma
        self.submission_queue = submission_queue
        self.completion_queue = completion_queue
        self.firmware = firmware
        self.commands_fetched = 0
        self._running = False

    def start(self, pumps=4):
        """Launch command pump processes (one per outstanding command slot)."""
        if self._running:
            raise RuntimeError("HIC already started")
        self._running = True
        return [
            self.engine.process(self._pump(), name=f"hic-pump-{i}")
            for i in range(pumps)
        ]

    def stop(self):
        self._running = False

    def _pump(self):
        while self._running:
            command = yield self.submission_queue.fetch()
            if not self._running:
                # The controller lost power while this pump was parked on
                # the fetch: the command vanishes into the dead device and
                # its completion never posts (which is what lets probe
                # timeouts detect the loss).
                return
            self.commands_fetched += 1
            # Fetch the SQE itself over the link (read round trip).
            yield self.link.read_roundtrip(SQE_BYTES)
            yield self.engine.timeout(DECODE_NS)
            if command.opcode.__class__.__name__ == "Opcode" and (
                command.opcode.value == "write"
            ):
                # Pull the payload from host memory before firmware sees it.
                yield self.dma.pull(command.nblocks * self.firmware.block_bytes)
            try:
                result = yield self.firmware.execute(command)
                status = NvmeStatus.SUCCESS
            except Exception as error:
                result = error
                status = NvmeStatus.MEDIA_ERROR
            if command.opcode.__class__.__name__ == "Opcode" and (
                command.opcode.value == "read"
            ) and status is NvmeStatus.SUCCESS:
                # Push the data back to host memory.
                yield self.dma.push(command.nblocks * self.firmware.block_bytes)
            self.completion_queue.post(
                NvmeCompletion(command.command_id, status=status,
                               result=result)
            )
