"""DR-tier crash schedules: total fleet loss and archive lag.

The fleet checker asks "does a migration ever lose an ack?".  This tier
asks the disaster question: **when every node is lost, does the remote
archive restore exactly what it promised — at every committed
transaction boundary?**  Every schedule runs a small fleet with per-node
WAL archivers shipping to a fault-modeled grid, then destroys the whole
fleet and audits only what the grid holds:

* ``dr-total-loss`` — no grid perturbations; the terminal fleet-wide
  power loss lands at candidate times bracketing the archiver's own
  events (segment ships, snapshots, and the gaps between them), so the
  restore is audited at every archive-lag posture a crash can produce.
* ``dr-archive-lag`` — the grid partitions and heals, or a torn upload
  lands mid-stream, while the workload keeps committing; the run goes to
  the full horizon (the archiver must retry, detect the torn object by
  readback, and catch up) before the same total loss and audit.

Oracles, judged against each shard's :class:`ReferenceModel` and the
node's :class:`~repro.dr.restore.Archive`:

* **archive-verify** — every manifest entry has its object, landed
  checksums match intended ones, and consecutive segments are
  LSN-contiguous.  A silently dropped segment (the seeded
  ``drop_segment`` bug) fails here twice over: missing object and gap;
* **archived-prefix** — the archived COMMIT records, projected onto a
  writer, form a submission-order prefix
  (:meth:`~repro.check.model.ReferenceModel.diff_commit_prefix` with the
  ack floor waived — archive lag legitimately trails acks);
* **pitr** — the PITR oracle: for *every* committed transaction boundary
  ``k`` in the archived prefix, restoring to that commit's LSN yields
  exactly ``prefix_state(writer, k)``.  This is the "point-in-time
  recovery to any committed txn" promise, checked at every point;
* **restore-state** — the full restore (snapshots may extend past the
  segment frontier; that is what they are for) equals ``prefix_state(k)``
  for some ``k`` at or beyond the segment-archived prefix: prefix-ness,
  no fabricated rows, and nothing the archive covered may be lost.
"""

import copy

from repro.check.model import ReferenceModel
from repro.check.runner import CheckReport, Outcome
from repro.check.schedules import CrashSchedule
from repro.check.shrink import shrink_schedule, write_reproducer
from repro.cluster.fleet import Fleet
from repro.db.txn import TransactionAborted
from repro.dr.grid import GridFaultDriver, RemoteGrid
from repro.dr.restore import Archive, restore_state
from repro.faults.injector import ChaosInjector
from repro.faults.plan import GRID_SITED_KINDS, FaultKind, FaultPlan, \
    FaultSpec
from repro.faults.scenario import chaos_config_factory
from repro.health.errors import DeviceBusy
from repro.sim.rng import derive

DR_FAMILIES = ("dr-total-loss", "dr-archive-lag")

# Archive-lag schedules run to the full horizon (partition + heal +
# catch-up all take wall time), so they sample every HEAVY_STRIDE-th
# candidate like the fleet tier's heavy families.
HEAVY_STRIDE = 2


class DrCheckConfig:
    """The DR checker scenario's knobs (``scenario`` is always "dr").

    A tiny archived fleet: two nodes, one shard each, ten transactions
    per shard, segments small enough that several seal mid-run.
    ``drop_segment`` seeds the silently-dropped-segment archiver bug
    (segment 0 is sealed, manifested, and counted — never uploaded) so
    the mutation tests can prove the family catches what it claims to.
    """

    def __init__(self, seed=0, nodes=2, replicas=1, shards_per_node=1,
                 transactions=10, key_space=4, group_commit_bytes=384,
                 group_commit_timeout_ns=5_000.0, think_ns=12_000.0,
                 duration_ns=2_000_000.0, poll_ns=30_000.0,
                 segment_bytes=512, snapshot_every_ns=700_000.0,
                 retry_ns=60_000.0, grid_latency_ns=20_000.0,
                 grid_bandwidth=1.0, heal_delay_ns=300_000.0,
                 grace_ns=400_000.0, drop_segment=False):
        if nodes < 1:
            raise ValueError("the dr scenario needs at least one node")
        self.scenario = "dr"
        self.seed = seed
        self.nodes = nodes
        self.replicas = replicas
        self.shards_per_node = shards_per_node
        self.transactions = transactions
        self.key_space = key_space
        self.group_commit_bytes = group_commit_bytes
        self.group_commit_timeout_ns = group_commit_timeout_ns
        self.think_ns = float(think_ns)
        self.duration_ns = float(duration_ns)
        self.poll_ns = float(poll_ns)
        self.segment_bytes = int(segment_bytes)
        self.snapshot_every_ns = float(snapshot_every_ns)
        self.retry_ns = float(retry_ns)
        self.grid_latency_ns = float(grid_latency_ns)
        self.grid_bandwidth = float(grid_bandwidth)
        self.heal_delay_ns = float(heal_delay_ns)
        self.grace_ns = float(grace_ns)
        self.drop_segment = drop_segment

    @property
    def shard_ids(self):
        return [f"s{i}" for i in range(self.nodes * self.shards_per_node)]

    def as_dict(self):
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "nodes": self.nodes,
            "replicas": self.replicas,
            "shards_per_node": self.shards_per_node,
            "transactions": self.transactions,
            "key_space": self.key_space,
            "group_commit_bytes": self.group_commit_bytes,
            "group_commit_timeout_ns": self.group_commit_timeout_ns,
            "think_ns": self.think_ns,
            "duration_ns": self.duration_ns,
            "poll_ns": self.poll_ns,
            "segment_bytes": self.segment_bytes,
            "snapshot_every_ns": self.snapshot_every_ns,
            "retry_ns": self.retry_ns,
            "grid_latency_ns": self.grid_latency_ns,
            "grid_bandwidth": self.grid_bandwidth,
            "heal_delay_ns": self.heal_delay_ns,
            "grace_ns": self.grace_ns,
            "drop_segment": self.drop_segment,
        }

    @classmethod
    def from_dict(cls, data):
        data = dict(data)
        scenario = data.pop("scenario", "dr")
        if scenario != "dr":
            raise ValueError(f"not a dr config: scenario={scenario!r}")
        return cls(**data)


class _DrScenario:
    """One built DR run: engine, fleet, grid, per-shard models."""

    def __init__(self, engine, fleet, grid, models, start_ns):
        self.engine = engine
        self.fleet = fleet
        self.grid = grid
        self.models = models  # shard_id -> ReferenceModel (writer == shard)
        self.start_ns = start_ns


def _build(config):
    from repro.sim import Engine

    engine = Engine()
    fleet = Fleet(
        engine, chaos_config_factory(config.seed),
        replicas=config.replicas,
        group_commit_bytes=config.group_commit_bytes,
        group_commit_timeout_ns=config.group_commit_timeout_ns,
        max_inflight_flushes=1,
    )
    fleet.add_nodes(config.nodes)
    grid = RemoteGrid(engine, base_latency_ns=config.grid_latency_ns,
                      bandwidth_bytes_per_ns=config.grid_bandwidth)
    fleet.enable_dr(
        grid,
        poll_ns=config.poll_ns,
        segment_bytes=config.segment_bytes,
        snapshot_every_ns=config.snapshot_every_ns,
        retry_ns=config.retry_ns,
        drop_segment_seqs=(0,) if config.drop_segment else (),
    )
    models = {}
    scenario = _DrScenario(engine, fleet, grid, models, engine.now)
    for index, shard_id in enumerate(config.shard_ids):
        fleet.create_shard(shard_id, node=f"node{index % config.nodes}")
        models[shard_id] = ReferenceModel()
        rng = derive(config.seed, f"dr-writer-{shard_id}")
        engine.process(_writer(config, scenario, shard_id, rng),
                       name=f"dr-writer-{shard_id}")
    return scenario


def _writer(config, scenario, shard_id, rng):
    """One shard's tenant (the fleet checker's writer, sans migration)."""
    engine = scenario.engine
    shard = scenario.fleet.shards[shard_id]
    model = scenario.models[shard_id]
    for seq in range(config.transactions):
        key = f"k{rng.randrange(config.key_space)}"
        value = f"{shard_id}-v{seq}"

        def body(txn, key=key, value=value):
            txn.write("kv", key, value)
            model.committed(shard_id, txn.txn_id, [(key, value)])

        while True:
            try:
                yield from shard.run_body(body)
                break
            except DeviceBusy as busy:
                yield engine.timeout(busy.retry_after_ns or 20_000.0)
            except TransactionAborted:
                model.aborted(shard_id)
        model.acknowledged(shard_id)
        if config.think_ns > 0:
            yield engine.timeout(config.think_ns)


# -- crash-candidate probing ---------------------------------------------------------


def probe_dr_candidates(config):
    """Fault-free run → ``(time_ns, label)`` total-loss candidates.

    Candidates bracket the archiver's own event stream: just after the
    workload starts (nothing archived yet), at every segment ship and
    snapshot (archive exactly at a frontier), between consecutive events
    (mid-lag), and at the horizon (fully caught up, modulo the buffer).
    """
    scenario = _build(config)
    horizon = scenario.start_ns + config.duration_ns
    scenario.engine.run(until=horizon)
    events = []
    for name in sorted(scenario.fleet.nodes):
        archiver = scenario.fleet.nodes[name].archiver
        for event in archiver.events:
            events.append((event["time_ns"],
                           f"{event['action']}-{name}-{event['seq']}"))
    events.sort()
    candidates = [
        (scenario.start_ns + config.duration_ns * 0.05, "early"),
    ]
    for index, (time_ns, label) in enumerate(events):
        candidates.append((time_ns, label))
        next_ns = (events[index + 1][0] if index + 1 < len(events)
                   else horizon)
        if next_ns > time_ns:
            candidates.append(((time_ns + next_ns) / 2, f"{label}-mid"))
    candidates.append((horizon, "end"))
    deduped = {}
    for time_ns, label in candidates:
        deduped.setdefault(round(time_ns, 3), (time_ns, label))
    return [deduped[key] for key in sorted(deduped)]


# -- schedule enumeration ------------------------------------------------------------


def enumerate_dr_schedules(config, candidates):
    """Every DR schedule over the probed candidates, round-robin mixed.

    Grid faults carry site ``"grid"``; the executor routes them to a
    :class:`~repro.dr.grid.GridFaultDriver` while any node-sited spec
    goes to that node's chain injector, fleet-style.
    """
    if not candidates:
        return []
    horizon = max(time_ns for time_ns, _label in candidates)
    heavy = candidates[::HEAVY_STRIDE] or candidates[:1]

    families = [
        [
            CrashSchedule("dr-total-loss", label, "fleet", time_ns)
            for time_ns, label in candidates
        ],
        [
            CrashSchedule(
                "dr-archive-lag", label, "grid", horizon,
                FaultPlan([
                    FaultSpec(time_ns, "grid", FaultKind.GRID_DOWN),
                    FaultSpec(time_ns + config.heal_delay_ns, "grid",
                              FaultKind.GRID_UP),
                ]),
            )
            for time_ns, label in heavy
        ],
        [
            CrashSchedule(
                "dr-archive-lag", f"torn-{label}", "grid", horizon,
                FaultPlan([
                    FaultSpec(time_ns, "grid", FaultKind.GRID_TORN_UPLOAD,
                              {"count": 1}),
                ]),
            )
            for time_ns, label in heavy
        ],
    ]
    interleaved = []
    seen = set()
    cursor = 0
    while any(cursor < len(family) for family in families):
        for family in families:
            if cursor < len(family):
                schedule = family[cursor]
                key = schedule.key()
                if key not in seen:
                    seen.add(key)
                    interleaved.append(schedule)
        cursor += 1
    return interleaved


# -- executing one schedule ----------------------------------------------------------


def run_dr_schedule(config, schedule, with_trace=False):
    if with_trace:
        from repro.obs import capture
        from repro.check.runner import TRACE_TAIL_LINES

        with capture() as session:
            outcome = _execute(config, schedule)
        outcome.trace_tail = session.tail(TRACE_TAIL_LINES)
        return outcome
    return _execute(config, schedule)


def _site_node(site):
    return site.split(".", 1)[0]


def _local_site(site):
    node, _dot, local = site.partition(".")
    if local.startswith("bridge-"):
        return local
    return site


def _execute(config, schedule):
    violations = {}
    stats = {"family": schedule.family, "end_time_ns": schedule.end_time_ns}
    try:
        scenario = _build(config)
        engine = scenario.engine
        fleet = scenario.fleet
        if len(schedule.plan):
            grid_specs = [spec for spec in schedule.plan
                          if spec.kind in GRID_SITED_KINDS]
            node_specs = [spec for spec in schedule.plan
                          if spec.kind not in GRID_SITED_KINDS]
            if grid_specs:
                GridFaultDriver(engine, scenario.grid,
                                FaultPlan(grid_specs)).start()
            by_node = {}
            for spec in node_specs:
                by_node.setdefault(_site_node(spec.site), []).append(spec)
            for node_name, specs in sorted(by_node.items()):
                local_plan = FaultPlan([
                    FaultSpec(spec.time_ns, _local_site(spec.site),
                              spec.kind, spec.params)
                    for spec in specs
                ])
                ChaosInjector(
                    engine, fleet.nodes[node_name].cluster, local_plan,
                    grace_ns=config.grace_ns,
                ).start()
        engine.run(until=max(schedule.end_time_ns, engine.now + 1.0))

        # Total loss: freeze the archivers, cut power everywhere.  From
        # here on, the grid is the only surviving copy of anything.
        for node in fleet.nodes.values():
            node.archiver.stop()
        reports = {
            name: node.cluster.primary.crash()
            for name, node in fleet.nodes.items()
        }
        models = {
            shard_id: copy.deepcopy(model)
            for shard_id, model in scenario.models.items()
        }
        owners = {
            shard_id: shard.node.name
            for shard_id, shard in fleet.shards.items()
        }

        archives = {}
        for name in fleet.nodes:
            archive = Archive.load_sync(scenario.grid, name)
            archives[name] = archive
            violations[f"archive-verify:{name}"] = archive.verify()

        archived_prefixes = {}
        for shard_id, model in models.items():
            owner = owners[shard_id]
            archive = archives[owner]
            table = f"{shard_id}.kv"
            commit_lsn_of = dict(
                (txn_id, lsn)
                for lsn, txn_id in archive.commit_boundaries()
            )
            ids = model.sequence_ids(shard_id)

            violations[f"archived-prefix:{shard_id}"] = (
                model.diff_commit_prefix(commit_lsn_of, require_acked=False)
            )

            prefix = 0
            while prefix < len(ids) and ids[prefix] in commit_lsn_of:
                prefix += 1
            archived_prefixes[shard_id] = prefix

            violations[f"pitr:{shard_id}"] = _pitr_violations(
                shard_id, archive, model, ids[:prefix], commit_lsn_of, table,
            )
            violations[f"restore-state:{shard_id}"] = (
                _final_restore_violations(shard_id, archive, model, prefix,
                                          table)
            )

        stats.update({
            "commits_submitted": sum(
                model.total_committed() for model in models.values()
            ),
            "commits_acked": sum(
                model.total_acked() for model in models.values()
            ),
            "owners": owners,
            "archived_prefixes": archived_prefixes,
            "reserve_energy_ok": all(
                report.reserve_energy_ok for report in reports.values()
            ),
            "archiver": {
                name: node.archiver.stats()
                for name, node in sorted(fleet.nodes.items())
            },
            "grid": scenario.grid.stats(),
        })
    except Exception as error:  # noqa: BLE001 — a harness crash IS a finding
        violations.setdefault("harness", []).append(
            f"harness: dr schedule execution raised {error!r}"
        )
    return Outcome(schedule, violations, stats)


def _pitr_violations(shard_id, archive, model, archived_ids, commit_lsn_of,
                     table):
    """Restore at every archived commit boundary; diff against the model.

    Boundary ``k`` (1-based over the writer's archived prefix) restores
    the archive to that commit's LSN; the shard's table slice must equal
    ``prefix_state(writer, k)`` exactly.  Boundary 0 (before the first
    commit) must restore the shard to empty.
    """
    violations = []
    boundaries = [(0, None)] + [
        (k + 1, commit_lsn_of[txn_id])
        for k, txn_id in enumerate(archived_ids)
    ]
    for k, upto_lsn in boundaries:
        if upto_lsn is None:
            # Restore strictly before the writer's first commit: any LSN
            # below it (0 = empty archive view) — but other shards'
            # earlier commits must not bleed into this shard's slice.
            upto_lsn = 0
        state, _versions = restore_state(archive, upto_lsn=upto_lsn)
        slice_ = state.get(table, {})
        expected = model.prefix_state(shard_id, k)
        if slice_ != expected:
            missing = sorted(
                key for key in expected if slice_.get(key) != expected[key]
            )
            extra = sorted(key for key in slice_ if key not in expected)
            violations.append(
                f"pitr: {shard_id} boundary {k} (lsn<={upto_lsn}) restored "
                f"{len(slice_)} rows != model prefix ({len(expected)} rows); "
                f"divergent={missing[:3]} extra={extra[:3]}"
            )
            break  # later boundaries diverge too; one witness suffices
    return violations


def _final_restore_violations(shard_id, archive, model, floor, table):
    """The full restore must be a commit prefix at/beyond the floor.

    Snapshots legitimately carry the state past the last archived
    segment (they are cut from the live database), so the final state
    may be a *longer* prefix than the segment-archived one — but it must
    still be exactly some prefix, and never shorter than the floor.
    """
    state, _versions = restore_state(archive)
    slice_ = state.get(table, {})
    total = len(model.sequence_ids(shard_id))
    matched = [
        k for k in range(total + 1)
        if model.prefix_state(shard_id, k) == slice_
    ]
    if any(k >= floor for k in matched):
        return []
    if matched:
        return [
            f"restore-state: {shard_id} restored only prefix "
            f"{max(matched)} but segments archived {floor} commits"
        ]
    return [
        f"restore-state: {shard_id} restored state matches no commit "
        f"prefix (segment-archived prefix {floor} of {total} submitted)"
    ]


# -- the driver ----------------------------------------------------------------------


def run_dr_check(config, budget=60, exhaustive=False, out_dir=None,
                 max_reproducers=3, log=None):
    """Probe, enumerate, run, and (on failure) shrink + dump reproducers.

    The DR analogue of :func:`repro.check.fleet.run_fleet_check`;
    returns the same :class:`~repro.check.runner.CheckReport` shape.
    """
    emit = log or (lambda message: None)
    candidates = probe_dr_candidates(config)
    schedules = enumerate_dr_schedules(config, candidates)
    selected = schedules if exhaustive else schedules[:budget]
    emit(f"probed {len(candidates)} archive crash points; enumerated "
         f"{len(schedules)} schedules; running {len(selected)}")
    outcomes = []
    failures = []
    for index, schedule in enumerate(selected):
        outcome = run_dr_schedule(config, schedule)
        outcomes.append(outcome)
        if not outcome.ok:
            failures.append(outcome)
        if (index + 1) % 10 == 0:
            emit(f"  {index + 1}/{len(selected)} schedules run "
                 f"({len(failures)} failing)")
    reproducers = []
    for outcome in failures[:max_reproducers]:
        minimal, trials = shrink_schedule(
            outcome.schedule,
            lambda trial: not run_dr_schedule(config, trial).ok,
        )
        final = run_dr_schedule(config, minimal, with_trace=True)
        entry = {
            "family": minimal.family,
            "fault_events": len(minimal.plan),
            "shrink_trials": trials,
            "violations": (final.flat_violations()
                           or outcome.flat_violations()),
        }
        if out_dir is not None:
            path = write_reproducer(out_dir, config, final)
            entry["path"] = str(path)
            emit(f"reproducer written: {path}")
        reproducers.append(entry)
    return CheckReport(config, selected, outcomes, failures, reproducers,
                       enumerated=len(schedules))
