"""The reference model: an executable spec of X-SSD's durability promise.

What the paper guarantees a database (Sections 4.1, 4.2, 5):

1. **Prefix durability** — after a crash with working reserve energy,
   what survives is the state produced by some *prefix* of each writer's
   commit sequence, in submission order.  No holes (a later commit
   visible while an earlier one is lost), no fabricated values.
2. **Ack coverage** — that prefix covers every commit that was
   acknowledged to the client.  A failed supercap waives coverage (the
   ablation the paper rules out) but never prefix-ness of what survived.
3. **Chain prefix** — a replica never holds a contiguous log frontier
   beyond what its chain predecessor ever contiguously received: replicas
   are prefixes of their upstream, so failover cannot resurrect bytes the
   rest of the chain disowned.

The model tracks, per writer, the commit sequence and the ack count —
nothing else — and diffs recovered state against *every* admissible
prefix.  It deliberately knows nothing about batches, pages, credits, or
rings: if the simulated machinery and this ~hundred-line spec disagree,
one of them is wrong, and the spec is small enough to audit by eye.
"""


class ReferenceModel:
    """Per-writer commit sequences plus ack counts; diffs recovered state.

    Writers must own disjoint key sets (the multiwriter scenario gives
    each worker its own key prefix); ``committed`` enforces this, because
    cross-writer overwrites would make "per-writer prefix" ill-defined.
    """

    def __init__(self):
        self._sequences = {}  # writer -> [(txn_id, [(key, value), ...]), ...]
        self._acked = {}  # writer -> count of acknowledged commits
        self._owner = {}  # key -> writer
        self._values = {}  # key -> set of every value ever written

    # -- recording the workload ----------------------------------------------------

    def committed(self, writer, txn_id, writes):
        """Record one commit *submission* (before the ack arrives)."""
        sequence = self._sequences.setdefault(writer, [])
        self._acked.setdefault(writer, 0)
        for key, value in writes:
            owner = self._owner.setdefault(key, writer)
            if owner != writer:
                raise ValueError(
                    f"key {key!r} written by both {owner!r} and {writer!r}; "
                    f"the model needs disjoint key sets per writer"
                )
            self._values.setdefault(key, set()).add(value)
        sequence.append((txn_id, list(writes)))
        return len(sequence) - 1

    def acknowledged(self, writer):
        """Record that the writer's next unacked commit was acknowledged."""
        self._acked[writer] += 1

    def aborted(self, writer):
        """Retract the writer's most recent submission (commit refused)."""
        self._sequences[writer].pop()

    # -- introspection -------------------------------------------------------------

    def writers(self):
        return list(self._sequences)

    def sequence_ids(self, writer):
        """Submission-order transaction ids for ``writer``.

        The PITR oracle joins these against the archive's COMMIT records
        to locate each commit boundary's LSN.
        """
        return [txn_id for txn_id, _writes in self._sequences.get(writer, [])]

    def total_committed(self):
        return sum(len(seq) for seq in self._sequences.values())

    def total_acked(self):
        return sum(self._acked.values())

    def prefix_state(self, writer, length):
        """The key/value state after the first ``length`` commits."""
        state = {}
        for _txn_id, writes in self._sequences.get(writer, [])[:length]:
            for key, value in writes:
                state[key] = value
        return state

    # -- the differential oracles --------------------------------------------------

    def diff_recovered(self, recovered, require_acked=True):
        """Violations of prefix durability in a recovered key/value dict.

        ``recovered`` holds the post-recovery table contents across all
        writers.  For each writer, the slice of ``recovered`` over that
        writer's keys must equal ``prefix_state(writer, k)`` for some
        ``k`` — at least the ack count when ``require_acked`` (reserve
        energy worked), any ``k`` otherwise.
        """
        violations = []
        for key, value in recovered.items():
            if key not in self._owner:
                violations.append(
                    f"model: recovered key {key!r} was never written"
                )
            elif value not in self._values[key]:
                violations.append(
                    f"model: recovered {key!r}={value!r} was never written"
                )
        for writer, sequence in self._sequences.items():
            slice_ = {
                key: value for key, value in recovered.items()
                if self._owner.get(key) == writer
            }
            total = len(sequence)
            acked = self._acked[writer]
            floor = acked if require_acked else 0
            matched = [
                k for k in range(total + 1)
                if self.prefix_state(writer, k) == slice_
            ]
            if any(k >= floor for k in matched):
                continue
            if matched:
                violations.append(
                    f"model: {writer} recovered only {max(matched)} of "
                    f"{acked} acknowledged commits (of {total} submitted)"
                )
            else:
                expected = self.prefix_state(writer, floor)
                missing = sorted(
                    key for key in expected if slice_.get(key) != expected[key]
                )
                violations.append(
                    f"model: {writer} state matches no commit prefix "
                    f"(acked={acked}, submitted={total}; first divergent "
                    f"keys: {missing[:3]})"
                )
        return violations

    def diff_commit_prefix(self, durable_txn_ids, require_acked=True):
        """Violations of commit *ordering* in the durable log itself.

        ``durable_txn_ids`` come from the recovered log (COMMIT records in
        LSN order).  Projected onto each writer, they must be exactly
        that writer's submission-order prefix — a durable commit whose
        predecessor is missing means acks could outrun durability — and
        the prefix must cover the ack count when reserve energy held.
        """
        violations = []
        durable = set(durable_txn_ids)
        for writer, sequence in self._sequences.items():
            ids = [txn_id for txn_id, _writes in sequence]
            prefix = 0
            while prefix < len(ids) and ids[prefix] in durable:
                prefix += 1
            stragglers = [txn_id for txn_id in ids[prefix:] if txn_id in durable]
            if stragglers:
                violations.append(
                    f"model: {writer} commit {stragglers[0]} durable but "
                    f"predecessor {ids[prefix]} is not (prefix rule broken)"
                )
            if require_acked and prefix < self._acked[writer]:
                violations.append(
                    f"model: {writer} acked {self._acked[writer]} commits "
                    f"but only {prefix} are durable"
                )
        return violations


def chain_frontier_violations(order, frontiers, received, dirty_sites=()):
    """No replica holds a contiguous frontier its predecessor never had.

    ``order`` is the final chain order (dead, spliced-out servers already
    removed); ``frontiers[name]`` is each server's contiguous persisted
    frontier (credit counter, or crash-report durable offset for a downed
    server); ``received[name]`` is the contiguous byte frontier the
    server ever *received* (stream-recorder coverage from offset 0).  A
    predecessor that suffered a dirty crash (``dirty_sites``) legitimately
    lost data its successors still hold — that is what replication is
    for — so those pairs are waived.
    """
    violations = []
    for pred, succ in zip(order, order[1:]):
        if pred in dirty_sites:
            continue
        if frontiers.get(succ, 0) > received.get(pred, 0):
            violations.append(
                f"chain-prefix: {succ} persisted {frontiers[succ]:.0f} "
                f"bytes but predecessor {pred} only ever received a "
                f"contiguous {received[pred]:.0f}"
            )
    return violations
