"""Fleet-tier crash schedules: migration under crash, partition, failover.

The single-chain checker asks "does one node keep its durability
promise?".  This family asks the fleet-tier question: **does a shard
migration ever lose an acknowledged transaction?**  Every schedule runs
a small multi-node fleet (one replication chain per node, multiple
shards per node) with one shard migrating mid-run, then cuts power to
*every* node's primary and audits the wreckage:

* ``fleet-cutover-crash`` — no perturbations; the terminal crash lands
  at candidate times spanning the migration's phases (probed from a
  fault-free run's :meth:`~repro.cluster.rebalance.ShardMigration.events`):
  before the copy, mid-copy, during drain and catchup, right at
  cutover, and after.
* ``fleet-partition`` — the destination node's NTB bridge severs and
  heals while the migration's replay traffic crosses it.
* ``fleet-failover`` — the destination chain loses a secondary
  mid-migration; the chain reconfigures (injector splice, or the node's
  :class:`~repro.health.supervisor.ChainSupervisor` when ``supervised``)
  while replayed transactions keep committing.

Oracles, per shard, judged against the shard's *owner at crash time*
(the fleet directory — after cutover that is the destination chain):

* **model-state** — the recovered shard slice must be a commit prefix
  covering every acknowledged transaction
  (:meth:`~repro.check.model.ReferenceModel.diff_recovered`);
* **acked-durability** — every acknowledged sequence number must appear
  as a committed, durable data record on the owner.  This is the oracle
  that catches the seeded ``early_cutover`` bug even when later
  overwrites happen to make the folded *state* look like a full prefix;
* **commit-seq-order** — the shard's committed data records, in log
  order, carry strictly increasing sequence numbers: replay must
  preserve source commit order on the destination chain;
* **model-commit-prefix** — for shards that never migrated (replay
  issues fresh transaction ids, so raw id comparison is only sound on
  unmigrated shards);
* per node: tolerant page readback and FTL integrity.

Transaction ids do not survive migration, so the acked-durability and
seq-order oracles key on the workload's self-describing values
(``"<shard>-v<seq>"``) instead.  Both are skipped when the migration
fell back to a state top-up (a diff copy carries only each key's latest
value, legitimately skipping intermediate sequence numbers).
"""

import copy

from repro.check.model import ReferenceModel
from repro.check.runner import (
    CheckReport,
    Outcome,
    _collect_pages_tolerant,
)
from repro.check.schedules import CrashSchedule
from repro.check.shrink import shrink_schedule, write_reproducer
from repro.cluster.fleet import Fleet
from repro.db.engine import Database
from repro.db.log_record import RecordKind
from repro.db.recovery import durable_commit_ids, extract_records, \
    recover_from_pages
from repro.db.txn import TransactionAborted
from repro.faults.injector import ChaosInjector
from repro.faults.oracles import check_ftl_integrity
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.faults.scenario import chaos_config_factory
from repro.health.errors import DeviceBusy
from repro.host.baselines import NoLogFile
from repro.sim import Engine
from repro.sim.rng import derive

FLEET_FAMILIES = ("fleet-cutover-crash", "fleet-partition", "fleet-failover")

# Partition/failover families take every HEAVY_STRIDE-th candidate: they
# run to the full horizon, so density costs real wall time.
HEAVY_STRIDE = 2


class FleetCheckConfig:
    """The fleet checker scenario's knobs (``scenario`` is always "fleet").

    A deliberately tiny fleet — two nodes, two shards each, a dozen
    transactions per shard — so one schedule runs in tens of
    milliseconds.  ``max_inflight_flushes`` is pinned to 1 for the same
    prefix-oracle soundness reason as the single-chain checker.
    ``early_cutover`` seeds the ack-ordering bug in
    :class:`~repro.cluster.rebalance.ShardMigration`; it exists so the
    mutation tests (and ``--seed-cutover-bug``) can prove the family
    actually catches what it claims to.
    """

    def __init__(self, seed=0, nodes=2, replicas=1, shards_per_node=2,
                 transactions=12, key_space=5, group_commit_bytes=384,
                 group_commit_timeout_ns=5_000.0, think_ns=12_000.0,
                 migrate_at_ns=250_000.0, duration_ns=2_500_000.0,
                 copy_rounds=1, round_wait_ns=100_000.0,
                 heal_delay_ns=300_000.0, grace_ns=400_000.0,
                 supervised=False, early_cutover=False):
        if nodes < 2:
            raise ValueError("the fleet scenario needs at least two nodes")
        if shards_per_node < 1:
            raise ValueError("need at least one shard per node")
        self.scenario = "fleet"
        self.seed = seed
        self.nodes = nodes
        self.replicas = replicas
        self.shards_per_node = shards_per_node
        self.transactions = transactions
        self.key_space = key_space
        self.group_commit_bytes = group_commit_bytes
        self.group_commit_timeout_ns = group_commit_timeout_ns
        self.think_ns = float(think_ns)
        self.migrate_at_ns = float(migrate_at_ns)
        self.duration_ns = float(duration_ns)
        self.copy_rounds = copy_rounds
        self.round_wait_ns = float(round_wait_ns)
        self.heal_delay_ns = float(heal_delay_ns)
        self.grace_ns = float(grace_ns)
        self.supervised = supervised
        self.early_cutover = early_cutover

    @property
    def shard_ids(self):
        return [f"s{i}" for i in range(self.nodes * self.shards_per_node)]

    @property
    def migrate_shard(self):
        return "s0"  # placed on node0 by the round-robin layout

    @property
    def dest(self):
        return "node1"

    def as_dict(self):
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "nodes": self.nodes,
            "replicas": self.replicas,
            "shards_per_node": self.shards_per_node,
            "transactions": self.transactions,
            "key_space": self.key_space,
            "group_commit_bytes": self.group_commit_bytes,
            "group_commit_timeout_ns": self.group_commit_timeout_ns,
            "think_ns": self.think_ns,
            "migrate_at_ns": self.migrate_at_ns,
            "duration_ns": self.duration_ns,
            "copy_rounds": self.copy_rounds,
            "round_wait_ns": self.round_wait_ns,
            "heal_delay_ns": self.heal_delay_ns,
            "grace_ns": self.grace_ns,
            "supervised": self.supervised,
            "early_cutover": self.early_cutover,
        }

    @classmethod
    def from_dict(cls, data):
        data = dict(data)
        scenario = data.pop("scenario", "fleet")
        if scenario != "fleet":
            raise ValueError(f"not a fleet config: scenario={scenario!r}")
        return cls(**data)


class _FleetScenario:
    """One built fleet run: engine, fleet, per-shard models, migration."""

    def __init__(self, engine, fleet, models, acked_seqs, start_ns):
        self.engine = engine
        self.fleet = fleet
        self.models = models  # shard_id -> ReferenceModel (writer == shard)
        self.acked_seqs = acked_seqs  # shard_id -> [seq acked, in order]
        self.start_ns = start_ns  # sim time when workload processes begin
        self.migration = None


def _build(config):
    engine = Engine()
    fleet = Fleet(
        engine, chaos_config_factory(config.seed),
        replicas=config.replicas,
        group_commit_bytes=config.group_commit_bytes,
        group_commit_timeout_ns=config.group_commit_timeout_ns,
        max_inflight_flushes=1,
        supervise=config.supervised,
    )
    fleet.add_nodes(config.nodes)
    models = {}
    acked_seqs = {}
    scenario = _FleetScenario(engine, fleet, models, acked_seqs, engine.now)
    for index, shard_id in enumerate(config.shard_ids):
        fleet.create_shard(shard_id, node=f"node{index % config.nodes}")
        models[shard_id] = ReferenceModel()
        acked_seqs[shard_id] = []
        rng = derive(config.seed, f"fleet-writer-{shard_id}")
        engine.process(_writer(config, scenario, shard_id, rng),
                       name=f"fleet-writer-{shard_id}")
    engine.process(_migrate_later(config, scenario), name="fleet-migrate")
    return scenario


def _writer(config, scenario, shard_id, rng):
    """One shard's tenant: sequence-stamped single-key commits.

    Values are self-describing (``"<shard>-v<seq>"``) because replay
    rewrites transaction ids; the acked-durability and seq-order oracles
    recover the sequence number from the value itself.
    """
    engine = scenario.engine
    shard = scenario.fleet.shards[shard_id]
    model = scenario.models[shard_id]
    for seq in range(config.transactions):
        key = f"k{rng.randrange(config.key_space)}"
        value = f"{shard_id}-v{seq}"

        def body(txn, key=key, value=value):
            txn.write("kv", key, value)
            model.committed(shard_id, txn.txn_id, [(key, value)])

        while True:
            try:
                yield from shard.run_body(body)
                break
            except DeviceBusy as busy:
                yield engine.timeout(busy.retry_after_ns or 20_000.0)
            except TransactionAborted:
                # Single-writer shards cannot conflict in practice, but
                # the model must never count a refused commit.
                model.aborted(shard_id)
        model.acknowledged(shard_id)
        scenario.acked_seqs[shard_id].append(seq)
        if config.think_ns > 0:
            yield engine.timeout(config.think_ns)


def _migrate_later(config, scenario):
    yield scenario.engine.timeout(config.migrate_at_ns)
    migration = scenario.fleet.migrate(
        config.migrate_shard, config.dest,
        copy_rounds=config.copy_rounds,
        round_wait_ns=config.round_wait_ns,
        early_cutover=config.early_cutover,
    )
    scenario.migration = migration
    try:
        yield migration._process
    except BaseException:  # noqa: BLE001 — the autopsy judges the aftermath
        pass


# -- crash-candidate probing ---------------------------------------------------------


def probe_fleet_candidates(config):
    """Fault-free run → ``(time_ns, label)`` crash candidates.

    Candidates bracket the migration: before it starts, at each phase
    entry, between consecutive phases, just after completion, and the
    end of the run — so the cutover-crash family lands the power loss
    exactly at (and exactly between) protocol steps.
    """
    scenario = _build(config)
    horizon = scenario.start_ns + config.duration_ns
    scenario.engine.run(until=horizon)
    candidates = [
        (scenario.start_ns + config.migrate_at_ns / 2, "pre-copy"),
    ]
    migration = scenario.migration
    if migration is not None:
        events = [(event["time_ns"], event["phase"])
                  for event in migration.events]
        for index, (time_ns, phase) in enumerate(events):
            candidates.append((time_ns, phase))
            next_ns = (events[index + 1][0] if index + 1 < len(events)
                       else min(time_ns + 150_000.0, horizon))
            if next_ns > time_ns:
                candidates.append(((time_ns + next_ns) / 2, f"{phase}-mid"))
        if migration.done:
            done_ns = events[-1][0]
            candidates.append(
                (min(done_ns + 300_000.0, horizon), "post-cutover")
            )
    candidates.append((horizon, "end"))
    deduped = {}
    for time_ns, label in candidates:
        deduped.setdefault(round(time_ns, 3), (time_ns, label))
    return [deduped[key] for key in sorted(deduped)]


# -- schedule enumeration ------------------------------------------------------------


def enumerate_fleet_schedules(config, candidates):
    """Every fleet schedule over the probed candidates, round-robin mixed.

    Fault sites are fleet-scoped names (``"node1.bridge-0"``,
    ``"node1.secondary-1"``): the node prefix routes the spec to that
    node's injector, and server sites keep the full name because a
    node's cluster registers its servers under fleet-wide names.
    """
    if not candidates:
        return []
    horizon = max(time_ns for time_ns, _label in candidates)
    heavy = candidates[::HEAVY_STRIDE] or candidates[:1]
    dest = config.dest
    bridge = f"{dest}.bridge-0"
    secondary = f"{dest}.secondary-1"

    families = [
        [
            CrashSchedule("fleet-cutover-crash", label, "fleet", time_ns)
            for time_ns, label in candidates
        ],
        [
            CrashSchedule(
                "fleet-partition", label, bridge, horizon,
                FaultPlan([
                    FaultSpec(time_ns, bridge, FaultKind.LINK_DOWN),
                    FaultSpec(time_ns + config.heal_delay_ns, bridge,
                              FaultKind.LINK_UP),
                ]),
            )
            for time_ns, label in heavy
        ],
        [
            CrashSchedule(
                "fleet-failover", label, secondary, horizon,
                FaultPlan([
                    FaultSpec(time_ns, secondary, FaultKind.REPLICA_CRASH),
                ]),
            )
            for time_ns, label in heavy
        ],
    ]
    interleaved = []
    seen = set()
    cursor = 0
    while any(cursor < len(family) for family in families):
        for family in families:
            if cursor < len(family):
                schedule = family[cursor]
                key = schedule.key()
                if key not in seen:
                    seen.add(key)
                    interleaved.append(schedule)
        cursor += 1
    return interleaved


def _site_node(site):
    return site.split(".", 1)[0]


def _local_site(site):
    """Strip the node prefix from bridge sites only.

    A node's :class:`~repro.cluster.topology.Cluster` keys its servers
    by their fleet-wide names (``"node1.secondary-1"``) but its bridges
    by position (``"bridge-0"``), so only bridge sites need rewriting
    before the per-node :class:`ChaosInjector` resolves them.
    """
    node, _dot, local = site.partition(".")
    if local.startswith("bridge-"):
        return local
    return site


# -- executing one schedule ----------------------------------------------------------


def run_fleet_schedule(config, schedule, with_trace=False):
    if with_trace:
        from repro.obs import capture
        from repro.check.runner import TRACE_TAIL_LINES

        with capture() as session:
            outcome = _execute(config, schedule)
        outcome.trace_tail = session.tail(TRACE_TAIL_LINES)
        return outcome
    return _execute(config, schedule)


def _execute(config, schedule):
    violations = {}
    stats = {"family": schedule.family, "end_time_ns": schedule.end_time_ns}
    try:
        scenario = _build(config)
        engine = scenario.engine
        fleet = scenario.fleet
        if len(schedule.plan):
            by_node = {}
            for spec in schedule.plan:
                by_node.setdefault(_site_node(spec.site), []).append(spec)
            for node_name, specs in sorted(by_node.items()):
                local_plan = FaultPlan([
                    FaultSpec(spec.time_ns, _local_site(spec.site),
                              spec.kind, spec.params)
                    for spec in specs
                ])
                injector = ChaosInjector(
                    engine, fleet.nodes[node_name].cluster, local_plan,
                    grace_ns=config.grace_ns,
                    auto_reconfigure=not config.supervised,
                )
                injector.start()
        engine.run(until=max(schedule.end_time_ns, engine.now + 1.0))

        # Freeze the control plane, then cut power to every node's
        # primary before any page collection: no writer may observe a
        # post-crash ack, and no supervisor may react to the autopsy.
        for node in fleet.nodes.values():
            if node.supervisor is not None:
                node.supervisor.stop()
        reports = {
            name: node.cluster.primary.crash()
            for name, node in fleet.nodes.items()
        }
        models = {
            shard_id: copy.deepcopy(model)
            for shard_id, model in scenario.models.items()
        }
        acked_seqs = {
            shard_id: list(seqs)
            for shard_id, seqs in scenario.acked_seqs.items()
        }
        owners = {
            shard_id: shard.node.name
            for shard_id, shard in fleet.shards.items()
        }
        migration = scenario.migration
        topped_up = migration is not None and migration.topped_up_keys > 0

        recovered_dbs = {}
        durable_ids = {}
        pages_by_node = {}
        for name, node in fleet.nodes.items():
            pages, page_errors = _collect_pages_tolerant(engine, node.device)
            pages_by_node[name] = pages
            violations[f"page-read:{name}"] = page_errors
            fresh = Engine()
            recovered = Database(fresh, NoLogFile(fresh))
            for shard_id in config.shard_ids:
                recovered.create_table(f"{shard_id}.kv")
            recover_from_pages(recovered, pages)
            recovered_dbs[name] = recovered
            durable_ids[name] = durable_commit_ids(pages)
            violations[f"ftl-integrity:{name}"] = check_ftl_integrity(
                node.device
            )

        require_acked = all(
            report.reserve_energy_ok for report in reports.values()
        )
        for shard_id, model in models.items():
            owner = owners[shard_id]
            table = f"{shard_id}.kv"
            slice_ = dict(recovered_dbs[owner].table(table).scan())
            violations[f"model-state:{shard_id}"] = model.diff_recovered(
                slice_, require_acked=require_acked
            )
            if shard_id != config.migrate_shard:
                # Replay issues fresh transaction ids, so raw-id prefix
                # comparison is only sound for unmigrated shards.
                violations[f"model-commit-prefix:{shard_id}"] = (
                    model.diff_commit_prefix(
                        durable_ids[owner], require_acked=require_acked
                    )
                )
            if not topped_up:
                seqs = _durable_seqs(pages_by_node[owner], table)
                violations[f"commit-seq-order:{shard_id}"] = (
                    _seq_order_violations(shard_id, seqs)
                )
                if require_acked:
                    violations[f"acked-durability:{shard_id}"] = (
                        _acked_durability_violations(
                            shard_id, owner, acked_seqs[shard_id], seqs
                        )
                    )

        stats.update({
            "commits_submitted": sum(
                model.total_committed() for model in models.values()
            ),
            "commits_acked": sum(
                model.total_acked() for model in models.values()
            ),
            "owners": owners,
            "migration_phase": (
                migration.phase if migration is not None else None
            ),
            "migration_replayed": (
                migration.replayed_txns if migration is not None else 0
            ),
            "migration_topped_up": (
                migration.topped_up_keys if migration is not None else 0
            ),
            "durable_commits": {
                name: len(ids) for name, ids in durable_ids.items()
            },
        })
    except Exception as error:  # noqa: BLE001 — a harness crash IS a finding
        violations.setdefault("harness", []).append(
            f"harness: fleet schedule execution raised {error!r}"
        )
    return Outcome(schedule, violations, stats)


def _durable_seqs(pages, table):
    """Sequence numbers of the table's committed data records, log order."""
    records = extract_records(pages)
    committed = {
        record.txn_id for record in records
        if record.kind is RecordKind.COMMIT
    }
    data = sorted(
        (record for record in records
         if record.is_data() and record.table == table
         and record.txn_id in committed),
        key=lambda record: record.lsn,
    )
    seqs = []
    for record in data:
        value = record.value
        if isinstance(value, str) and "-v" in value:
            seqs.append(int(value.rsplit("-v", 1)[1]))
    return seqs


def _seq_order_violations(shard_id, seqs):
    """Committed records must carry strictly increasing sequence numbers."""
    for earlier, later in zip(seqs, seqs[1:]):
        if later <= earlier:
            return [
                f"seq-order: {shard_id} committed v{later} after v{earlier} "
                f"in the owner's durable log (replay broke commit order)"
            ]
    return []


def _acked_durability_violations(shard_id, owner, acked, seqs):
    """Every acked sequence number must be durable on the owner chain."""
    missing = sorted(set(acked) - set(seqs))
    if not missing:
        return []
    return [
        f"acked-durability: {shard_id} acked seqs "
        f"{missing[:5]}{'...' if len(missing) > 5 else ''} are not durable "
        f"on owner {owner} ({len(missing)} of {len(acked)} acked lost)"
    ]


# -- the driver ----------------------------------------------------------------------


def run_fleet_check(config, budget=60, exhaustive=False, out_dir=None,
                    max_reproducers=3, log=None):
    """Probe, enumerate, run, and (on failure) shrink + dump reproducers.

    The fleet analogue of :func:`repro.check.runner.run_check`; returns
    the same :class:`~repro.check.runner.CheckReport` shape, so the CLI
    and CI surfaces need no special casing.
    """
    emit = log or (lambda message: None)
    candidates = probe_fleet_candidates(config)
    schedules = enumerate_fleet_schedules(config, candidates)
    selected = schedules if exhaustive else schedules[:budget]
    emit(f"probed {len(candidates)} migration crash points; enumerated "
         f"{len(schedules)} schedules; running {len(selected)}")
    outcomes = []
    failures = []
    for index, schedule in enumerate(selected):
        outcome = run_fleet_schedule(config, schedule)
        outcomes.append(outcome)
        if not outcome.ok:
            failures.append(outcome)
        if (index + 1) % 10 == 0:
            emit(f"  {index + 1}/{len(selected)} schedules run "
                 f"({len(failures)} failing)")
    reproducers = []
    for outcome in failures[:max_reproducers]:
        minimal, trials = shrink_schedule(
            outcome.schedule,
            lambda trial: not run_fleet_schedule(config, trial).ok,
        )
        final = run_fleet_schedule(config, minimal, with_trace=True)
        entry = {
            "family": minimal.family,
            "fault_events": len(minimal.plan),
            "shrink_trials": trials,
            "violations": (final.flat_violations()
                           or outcome.flat_violations()),
        }
        if out_dir is not None:
            path = write_reproducer(out_dir, config, final)
            entry["path"] = str(path)
            emit(f"reproducer written: {path}")
        reproducers.append(entry)
    return CheckReport(config, selected, outcomes, failures, reproducers,
                       enumerated=len(schedules))
