"""Pipeline transitions: mining the tracer for crash-point candidates.

A probe run (no faults, tracing on) emits the full event stream of the
write pipeline.  Each stage's boundary shows up as a specific tracer
emission, which this module maps back to a symbolic stage name:

==================  ==============================================
stage               tracer evidence
==================  ==============================================
host-submit         ``x_pwrite`` span begin on a ``host:*`` track
cmb-ack             ``credit`` counter sample (CMB persisted bytes)
destage-dispatch    ``page-program`` span begin
nand-program        ``page-program`` span end
destage-ack         ``destage-ack`` instant (prefix publication)
replica-ack         ``shadow:*`` counter sample on the transport
wal-commit          ``flush`` span end on the ``wal`` track
==================  ==============================================

Crashing *at* each transition time and *between* each adjacent pair
(midpoints) covers every interleaving of one crash against the pipeline
— the "no crash point between CMB ack and NAND program loses a committed
record" style of claim the checker discharges.
"""

from repro.obs.trace import CounterSample, Instant, Span

STAGES = (
    "host-submit",
    "cmb-ack",
    "destage-dispatch",
    "nand-program",
    "destage-ack",
    "replica-ack",
    "wal-commit",
)


def extract_transitions(tracers):
    """Sorted, deduplicated ``(time_ns, stage)`` pairs from a probe trace."""
    seen = set()
    for tracer in tracers:
        for event in tracer.events:
            if isinstance(event, Span):
                if event.name == "x_pwrite" and event.track.startswith("host:"):
                    seen.add((event.start_ns, "host-submit"))
                elif event.name == "page-program":
                    seen.add((event.start_ns, "destage-dispatch"))
                    if event.end_ns is not None:
                        seen.add((event.end_ns, "nand-program"))
                elif event.name == "flush" and event.track == "wal":
                    if event.end_ns is not None:
                        seen.add((event.end_ns, "wal-commit"))
            elif isinstance(event, CounterSample):
                if event.name == "credit":
                    seen.add((event.ts_ns, "cmb-ack"))
                elif event.name.startswith("shadow:"):
                    seen.add((event.ts_ns, "replica-ack"))
            elif isinstance(event, Instant):
                if event.name == "destage-ack":
                    seen.add((event.ts_ns, "destage-ack"))
    return sorted(seen)


def crash_candidates(transitions):
    """Candidate crash instants: every transition plus every midpoint.

    Returns ``(time_ns, label)`` pairs, time-sorted.  The simulation
    clock is inclusive at ``run(until=t)``, so a crash at a transition's
    exact time lands *after* that transition's events — and the midpoint
    between two distinct instants lands strictly between them.  Same-time
    transitions share one candidate labelled with every stage involved.
    """
    by_time = {}
    for time_ns, stage in transitions:
        by_time.setdefault(time_ns, []).append(stage)
    times = sorted(by_time)
    candidates = []
    for index, time_ns in enumerate(times):
        label = "+".join(sorted(set(by_time[time_ns])))
        candidates.append((time_ns, label))
        if index + 1 < len(times):
            midpoint = (time_ns + times[index + 1]) / 2.0
            if time_ns < midpoint < times[index + 1]:
                candidates.append((midpoint, f"after-{label}"))
    return candidates


def stage_coverage(transitions):
    """Which of the seven pipeline stages the probe actually exercised."""
    present = {stage for _time, stage in transitions}
    return [stage for stage in STAGES if stage in present]
