"""Greedy schedule shrinking and re-runnable reproducer dumps.

A failing combo schedule may carry half a dozen perturbations of which
one or two actually matter.  ``shrink_schedule`` is classic delta
debugging in its greedy one-at-a-time form: repeatedly try dropping each
fault event, keep any drop that still fails, restart the sweep after a
successful drop, stop at a fixed point.  The implicit primary crash
(``end_time_ns``) is not a plan event, so the shrinker can never remove
the crash itself — the minimum is always "these fault events plus the
final power loss".

Dropped events land in the plan's ``excluded`` list, so the reproducer
records not just the minimal plan but what shrinking ruled out.
"""

import json
from pathlib import Path

MAX_SHRINK_TRIALS = 64


def shrink_schedule(schedule, still_fails, max_trials=MAX_SHRINK_TRIALS):
    """Greedily minimize ``schedule`` under the ``still_fails`` predicate.

    ``still_fails(candidate)`` must return True when the candidate
    schedule still exhibits the violation.  Returns ``(minimal, trials)``
    where ``trials`` counts predicate evaluations.
    """
    current = schedule
    trials = 0
    improved = True
    while improved and trials < max_trials:
        improved = False
        for index in range(len(current.plan)):
            if trials >= max_trials:
                break
            candidate = current.with_plan(current.plan.without(index))
            trials += 1
            if still_fails(candidate):
                current = candidate
                improved = True
                break  # indices shifted; restart the sweep
    return current, trials


def write_reproducer(out_dir, config, outcome):
    """Dump a failing outcome as canonical, re-runnable JSON.

    The file contains everything ``replay_reproducer`` needs: the full
    checker config, the (minimal) schedule with its fault plan and
    excluded events, the violations observed, run stats, and the trace
    tail from the instrumented re-run.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    schedule = outcome.schedule
    stem = (f"{config.scenario}-{schedule.family}-"
            f"{schedule.end_time_ns:.0f}ns-seed{config.seed}")
    path = out_dir / f"{stem}.json"
    payload = {
        "config": config.as_dict(),
        "schedule": schedule.as_dict(),
        "violations": {
            name: list(entries)
            for name, entries in sorted(outcome.violations.items())
            if entries
        },
        "stats": outcome.stats,
        "trace_tail": list(outcome.trace_tail or ()),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def replay_reproducer(path):
    """Re-run a dumped reproducer; returns the fresh :class:`Outcome`.

    Determinism is the contract: the same config and schedule rebuild the
    same engine timeline, so a genuine violation fails again and a fixed
    one passes.
    """
    from repro.check.runner import CheckConfig, run_schedule
    from repro.check.schedules import CrashSchedule

    data = json.loads(Path(path).read_text())
    schedule = CrashSchedule.from_dict(data["schedule"])
    if data["config"].get("scenario") == "fleet":
        from repro.check.fleet import FleetCheckConfig, run_fleet_schedule

        return run_fleet_schedule(
            FleetCheckConfig.from_dict(data["config"]), schedule
        )
    if data["config"].get("scenario") == "dr":
        from repro.check.dr import DrCheckConfig, run_dr_schedule

        return run_dr_schedule(
            DrCheckConfig.from_dict(data["config"]), schedule
        )
    if data["config"].get("scenario") == "slo":
        from repro.check.slo import SloCheckConfig, run_slo_schedule

        return run_slo_schedule(
            SloCheckConfig.from_dict(data["config"]), schedule
        )
    config = CheckConfig.from_dict(data["config"])
    return run_schedule(config, schedule)
