"""SLO-tier crash schedules: durability across controller transitions.

The fleet tier asks whether migration loses acknowledged work; this tier
asks the control-plane question: **can any SLO actuation — escalation or
de-escalation, alone or racing a fault — skip or reorder acked
durability work?**  Every schedule runs a small overloaded fleet with an
:class:`~repro.slo.SloController` closed-loop (tight admission ceiling,
zero think time, fat values: the controller *will* walk its ladder),
then cuts power to every node's primary and audits the wreckage:

* ``slo-overload`` — no perturbations; the terminal crash lands at
  candidate times bracketing the controller's audit events (probed from
  a fault-free run): before the first actuation, at each knob turn,
  between consecutive turns, and at the end — so power loss hits
  exactly at (and exactly between) ladder transitions.
* ``slo-adaptation`` — a chain fault (secondary crash, or an NTB link
  down/up blip) lands at those same instants, forcing the controller's
  transitions to race failover and partition healing to the horizon.

Oracles, per shard, judged against the shard's owner (same recovery
path as the fleet tier — tolerant page readback, fresh-engine replay):
model-state, model-commit-prefix (no shard migrates here, so raw-id
prefix comparison is sound for all of them), commit-seq-order and
acked-durability over the self-describing ``"<shard>-v<seq>"`` values,
FTL integrity — plus a **controller-sanity** oracle: the durability
fence must be clean, the ladder must move one rung at a time inside
[0, MAX_LEVEL], and every knob must sit inside its configured bounds.

``seed_shed_acked_bug`` arms the controller's deliberate violation
(acking commit waiters without durability on a rung-3 shed, outside the
fenced window); the acked-durability oracle — not the fence — must
catch it, proving the tier checks durability end to end rather than
trusting the controller's own bookkeeping.
"""

import copy

from repro.check.model import ReferenceModel
from repro.check.runner import (
    CheckReport,
    Outcome,
    _collect_pages_tolerant,
)
from repro.check.schedules import CrashSchedule
from repro.check.shrink import shrink_schedule, write_reproducer
from repro.check.fleet import (
    _acked_durability_violations,
    _durable_seqs,
    _local_site,
    _seq_order_violations,
    _site_node,
)
from repro.cluster.fleet import Fleet
from repro.db.engine import Database
from repro.db.recovery import durable_commit_ids, recover_from_pages
from repro.db.txn import TransactionAborted
from repro.faults.injector import ChaosInjector
from repro.faults.oracles import check_ftl_integrity
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.faults.scenario import chaos_config_factory
from repro.health.errors import DeviceBusy
from repro.host.baselines import NoLogFile
from repro.sim import Engine
from repro.sim.rng import derive
from repro.slo.controller import MAX_LEVEL

SLO_FAMILIES = ("slo-overload", "slo-adaptation")

# Adaptation schedules run to the full horizon; take every other
# candidate so density does not cost quadratic wall time.
HEAVY_STRIDE = 2


class SloCheckConfig:
    """The SLO checker scenario's knobs (``scenario`` is always "slo").

    The workload is shaped to *force* the ladder: every shard writes
    padded values back to back through a deliberately small admission
    ceiling against a low p99 target, so a fault-free probe run already
    walks the controller through shedding.  ``max_inflight_flushes`` is
    pinned to 1 for prefix-oracle soundness, as in the other tiers.
    ``seed_shed_acked_bug`` arms the controller's seeded mutation.
    """

    def __init__(self, seed=0, nodes=2, replicas=1, shards_per_node=3,
                 transactions=24, key_space=5, group_commit_bytes=384,
                 group_commit_timeout_ns=5_000.0, value_pad=128,
                 admission_bytes=4096, target_p99_ns=15_000.0,
                 poll_ns=25_000.0, enter_polls=1, exit_polls=3,
                 duration_ns=1_500_000.0, heal_delay_ns=300_000.0,
                 grace_ns=400_000.0, seed_shed_acked_bug=False):
        if nodes < 1:
            raise ValueError("the slo scenario needs at least one node")
        if shards_per_node < 1:
            raise ValueError("need at least one shard per node")
        self.scenario = "slo"
        self.seed = seed
        self.nodes = nodes
        self.replicas = replicas
        self.shards_per_node = shards_per_node
        self.transactions = transactions
        self.key_space = key_space
        self.group_commit_bytes = group_commit_bytes
        self.group_commit_timeout_ns = group_commit_timeout_ns
        self.value_pad = value_pad
        self.admission_bytes = admission_bytes
        self.target_p99_ns = float(target_p99_ns)
        self.poll_ns = float(poll_ns)
        self.enter_polls = enter_polls
        self.exit_polls = exit_polls
        self.duration_ns = float(duration_ns)
        self.heal_delay_ns = float(heal_delay_ns)
        self.grace_ns = float(grace_ns)
        self.seed_shed_acked_bug = seed_shed_acked_bug

    @property
    def shard_ids(self):
        return [f"s{i}" for i in range(self.nodes * self.shards_per_node)]

    def as_dict(self):
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "nodes": self.nodes,
            "replicas": self.replicas,
            "shards_per_node": self.shards_per_node,
            "transactions": self.transactions,
            "key_space": self.key_space,
            "group_commit_bytes": self.group_commit_bytes,
            "group_commit_timeout_ns": self.group_commit_timeout_ns,
            "value_pad": self.value_pad,
            "admission_bytes": self.admission_bytes,
            "target_p99_ns": self.target_p99_ns,
            "poll_ns": self.poll_ns,
            "enter_polls": self.enter_polls,
            "exit_polls": self.exit_polls,
            "duration_ns": self.duration_ns,
            "heal_delay_ns": self.heal_delay_ns,
            "grace_ns": self.grace_ns,
            "seed_shed_acked_bug": self.seed_shed_acked_bug,
        }

    @classmethod
    def from_dict(cls, data):
        data = dict(data)
        scenario = data.pop("scenario", "slo")
        if scenario != "slo":
            raise ValueError(f"not an slo config: scenario={scenario!r}")
        return cls(**data)


class _SloScenario:
    """One built run: engine, fleet, controller, per-shard models."""

    def __init__(self, engine, fleet, controller, models, acked_seqs,
                 start_ns):
        self.engine = engine
        self.fleet = fleet
        self.controller = controller
        self.models = models  # shard_id -> ReferenceModel
        self.acked_seqs = acked_seqs  # shard_id -> [seq acked, in order]
        self.start_ns = start_ns


def _build(config):
    engine = Engine()
    fleet = Fleet(
        engine, chaos_config_factory(config.seed),
        replicas=config.replicas,
        group_commit_bytes=config.group_commit_bytes,
        group_commit_timeout_ns=config.group_commit_timeout_ns,
        max_inflight_flushes=1,
        admission_bytes=config.admission_bytes,
    )
    fleet.add_nodes(config.nodes)
    controller = fleet.enable_slo(
        target_p99_ns=config.target_p99_ns,
        poll_ns=config.poll_ns,
        enter_polls=config.enter_polls,
        exit_polls=config.exit_polls,
        seed_shed_acked_bug=config.seed_shed_acked_bug,
    )
    models = {}
    acked_seqs = {}
    scenario = _SloScenario(engine, fleet, controller, models, acked_seqs,
                            engine.now)
    for index, shard_id in enumerate(config.shard_ids):
        fleet.create_shard(shard_id, node=f"node{index % config.nodes}")
        models[shard_id] = ReferenceModel()
        acked_seqs[shard_id] = []
        rng = derive(config.seed, f"slo-writer-{shard_id}")
        engine.process(_writer(config, scenario, shard_id, rng),
                       name=f"slo-writer-{shard_id}")
    return scenario


def _writer(config, scenario, shard_id, rng):
    """One shard's tenant: back-to-back padded, sequence-stamped commits.

    No think time — the point is to overload the node so the controller
    actually walks its ladder while the schedule's crash/faults land.
    Values stay self-describing (``"<shard>-v<seq>-<pad>"``) for the
    acked-durability and seq-order oracles.
    """
    engine = scenario.engine
    shard = scenario.fleet.shards[shard_id]
    model = scenario.models[shard_id]
    # Padding sits *before* the "-v<seq>" marker so the shared
    # _durable_seqs parser still recovers the sequence number.
    pad = "x" * config.value_pad
    for seq in range(config.transactions):
        key = f"k{rng.randrange(config.key_space)}"
        body_id = f"{shard_id}-{pad}" if pad else shard_id
        value = f"{body_id}-v{seq}"

        def body(txn, key=key, value=value):
            txn.write("kv", key, value)
            model.committed(shard_id, txn.txn_id, [(key, value)])

        while True:
            try:
                yield from shard.run_body(body)
                break
            except DeviceBusy as busy:
                yield engine.timeout(busy.retry_after_ns or 20_000.0)
            except TransactionAborted:
                model.aborted(shard_id)
        model.acknowledged(shard_id)
        scenario.acked_seqs[shard_id].append(seq)


# -- crash-candidate probing ---------------------------------------------------------


def probe_slo_candidates(config):
    """Fault-free run → ``(time_ns, label)`` crash candidates.

    Candidates bracket the controller's audit timeline: before the first
    possible actuation, at every knob turn, between consecutive turns,
    and at the horizon — power loss lands exactly at (and exactly
    between) ladder transitions.
    """
    scenario = _build(config)
    horizon = scenario.start_ns + config.duration_ns
    scenario.engine.run(until=horizon)
    candidates = [
        (scenario.start_ns + config.poll_ns / 2, "pre-control"),
    ]
    events = [
        (event["time_ns"], f"{event['action']}-L{event['level']}")
        for event in scenario.controller.events
    ]
    for index, (time_ns, label) in enumerate(events):
        candidates.append((time_ns, label))
        next_ns = (events[index + 1][0] if index + 1 < len(events)
                   else min(time_ns + 150_000.0, horizon))
        if next_ns > time_ns:
            candidates.append(((time_ns + next_ns) / 2, f"{label}-mid"))
    candidates.append((horizon, "end"))
    deduped = {}
    for time_ns, label in candidates:
        deduped.setdefault(round(time_ns, 3), (time_ns, label))
    return [deduped[key] for key in sorted(deduped)]


# -- schedule enumeration ------------------------------------------------------------


def enumerate_slo_schedules(config, candidates):
    """Every SLO schedule over the probed candidates, round-robin mixed.

    Adaptation faults target node0 — the first shard lands there, so it
    carries the overload the controller is reacting to; sites use the
    fleet-scoped naming the per-node injector routing expects.
    """
    if not candidates:
        return []
    horizon = max(time_ns for time_ns, _label in candidates)
    heavy = candidates[::HEAVY_STRIDE] or candidates[:1]
    secondary = "node0.secondary-1"
    bridge = "node0.bridge-0"

    adaptation = []
    for time_ns, label in heavy:
        adaptation.append(CrashSchedule(
            "slo-adaptation", label, secondary, horizon,
            FaultPlan([
                FaultSpec(time_ns, secondary, FaultKind.REPLICA_CRASH),
            ]),
        ))
        adaptation.append(CrashSchedule(
            "slo-adaptation", f"{label}-blip", bridge, horizon,
            FaultPlan([
                FaultSpec(time_ns, bridge, FaultKind.LINK_DOWN),
                FaultSpec(time_ns + config.heal_delay_ns, bridge,
                          FaultKind.LINK_UP),
            ]),
        ))
    families = [
        [
            CrashSchedule("slo-overload", label, "fleet", time_ns)
            for time_ns, label in candidates
        ],
        adaptation,
    ]
    interleaved = []
    seen = set()
    cursor = 0
    while any(cursor < len(family) for family in families):
        for family in families:
            if cursor < len(family):
                schedule = family[cursor]
                key = schedule.key()
                if key not in seen:
                    seen.add(key)
                    interleaved.append(schedule)
        cursor += 1
    return interleaved


# -- executing one schedule ----------------------------------------------------------


def run_slo_schedule(config, schedule, with_trace=False):
    if with_trace:
        from repro.obs import capture
        from repro.check.runner import TRACE_TAIL_LINES

        with capture() as session:
            outcome = _execute(config, schedule)
        outcome.trace_tail = session.tail(TRACE_TAIL_LINES)
        return outcome
    return _execute(config, schedule)


def _execute(config, schedule):
    violations = {}
    stats = {"family": schedule.family, "end_time_ns": schedule.end_time_ns}
    try:
        scenario = _build(config)
        engine = scenario.engine
        fleet = scenario.fleet
        if len(schedule.plan):
            by_node = {}
            for spec in schedule.plan:
                by_node.setdefault(_site_node(spec.site), []).append(spec)
            for node_name, specs in sorted(by_node.items()):
                local_plan = FaultPlan([
                    FaultSpec(spec.time_ns, _local_site(spec.site),
                              spec.kind, spec.params)
                    for spec in specs
                ])
                injector = ChaosInjector(
                    engine, fleet.nodes[node_name].cluster, local_plan,
                    grace_ns=config.grace_ns, auto_reconfigure=True,
                )
                injector.start()
        engine.run(until=max(schedule.end_time_ns, engine.now + 1.0))

        # Freeze the control plane before the autopsy: the controller
        # must not actuate against a crashed device, and no writer may
        # observe a post-crash ack.
        scenario.controller.stop()
        reports = {
            name: node.cluster.primary.crash()
            for name, node in fleet.nodes.items()
        }
        models = {
            shard_id: copy.deepcopy(model)
            for shard_id, model in scenario.models.items()
        }
        acked_seqs = {
            shard_id: list(seqs)
            for shard_id, seqs in scenario.acked_seqs.items()
        }
        owners = {
            shard_id: shard.node.name
            for shard_id, shard in fleet.shards.items()
        }

        violations["controller-sanity"] = _controller_violations(
            scenario.controller, config
        )

        recovered_dbs = {}
        durable_ids = {}
        pages_by_node = {}
        for name, node in fleet.nodes.items():
            pages, page_errors = _collect_pages_tolerant(engine, node.device)
            pages_by_node[name] = pages
            violations[f"page-read:{name}"] = page_errors
            fresh = Engine()
            recovered = Database(fresh, NoLogFile(fresh))
            for shard_id in config.shard_ids:
                recovered.create_table(f"{shard_id}.kv")
            recover_from_pages(recovered, pages)
            recovered_dbs[name] = recovered
            durable_ids[name] = durable_commit_ids(pages)
            violations[f"ftl-integrity:{name}"] = check_ftl_integrity(
                node.device
            )

        require_acked = all(
            report.reserve_energy_ok for report in reports.values()
        )
        for shard_id, model in models.items():
            owner = owners[shard_id]
            table = f"{shard_id}.kv"
            slice_ = dict(recovered_dbs[owner].table(table).scan())
            violations[f"model-state:{shard_id}"] = model.diff_recovered(
                slice_, require_acked=require_acked
            )
            # No shard migrates in this tier, so raw-id prefix
            # comparison is sound for every shard.
            violations[f"model-commit-prefix:{shard_id}"] = (
                model.diff_commit_prefix(
                    durable_ids[owner], require_acked=require_acked
                )
            )
            seqs = _durable_seqs(pages_by_node[owner], table)
            violations[f"commit-seq-order:{shard_id}"] = (
                _seq_order_violations(shard_id, seqs)
            )
            if require_acked:
                violations[f"acked-durability:{shard_id}"] = (
                    _acked_durability_violations(
                        shard_id, owner, acked_seqs[shard_id], seqs
                    )
                )

        controller = scenario.controller
        stats.update({
            "commits_submitted": sum(
                model.total_committed() for model in models.values()
            ),
            "commits_acked": sum(
                model.total_acked() for model in models.values()
            ),
            "owners": owners,
            "controller_events": len(controller.events),
            "controller_levels": {
                name: controller.level_of(name)
                for name in sorted(fleet.nodes)
            },
            "fence_violations": len(controller.invariant_violations),
            "durable_commits": {
                name: len(ids) for name, ids in durable_ids.items()
            },
        })
    except Exception as error:  # noqa: BLE001 — a harness crash IS a finding
        violations.setdefault("harness", []).append(
            f"harness: slo schedule execution raised {error!r}"
        )
    return Outcome(schedule, violations, stats)


def _controller_violations(controller, config):
    """The control plane's own contract, judged from its audit trail.

    * the durability fence recorded no breach;
    * the ladder moved one rung at a time, inside [0, MAX_LEVEL]
      (knob events within one rung share the rung's level);
    * every knob sits inside its configured bounds after the run.
    """
    errors = []
    for breach in controller.invariant_violations:
        errors.append(
            f"durability-fence: {breach['site']} {breach['transition']} "
            f"changed WAL state {breach['before']} -> {breach['after']}"
        )
    levels = {}
    for event in controller.events:
        if event["action"] not in ("escalate", "deescalate"):
            continue
        site = event["site"]
        last = levels.get(site, 0)
        level = event["level"]
        if not 0 <= level <= MAX_LEVEL:
            errors.append(
                f"ladder-bounds: {site} audit level {level} outside "
                f"[0, {MAX_LEVEL}]"
            )
        if event["action"] == "escalate" and level not in (last, last + 1):
            errors.append(
                f"ladder-step: {site} escalated {last} -> {level} "
                f"(must climb one rung at a time)"
            )
        if event["action"] == "deescalate" and level not in (last, last - 1):
            errors.append(
                f"ladder-step: {site} de-escalated {last} -> {level} "
                f"(must descend one rung at a time)"
            )
        levels[site] = level
    cap = config.group_commit_bytes * controller.group_commit_max_factor
    for name in sorted(controller.fleet.nodes):
        node = controller.fleet.nodes[name]
        log_manager = node.database.log_manager
        if not (config.group_commit_bytes
                <= log_manager.group_commit_bytes <= cap):
            errors.append(
                f"knob-bounds: {name} group_commit_bytes "
                f"{log_manager.group_commit_bytes} outside "
                f"[{config.group_commit_bytes}, {cap}]"
            )
        admission = node.admission
        floor = int(admission.baseline_max_outstanding_bytes
                    * controller.min_ceiling_fraction)
        if not (floor <= admission.max_outstanding_bytes
                <= admission.baseline_max_outstanding_bytes):
            errors.append(
                f"knob-bounds: {name} admission ceiling "
                f"{admission.max_outstanding_bytes} outside "
                f"[{floor}, {admission.baseline_max_outstanding_bytes}]"
            )
    return errors


# -- the driver ----------------------------------------------------------------------


def run_slo_check(config, budget=60, exhaustive=False, out_dir=None,
                  max_reproducers=3, log=None):
    """Probe, enumerate, run, and (on failure) shrink + dump reproducers.

    The SLO analogue of :func:`repro.check.fleet.run_fleet_check`;
    returns the same :class:`~repro.check.runner.CheckReport` shape.
    """
    emit = log or (lambda message: None)
    candidates = probe_slo_candidates(config)
    schedules = enumerate_slo_schedules(config, candidates)
    selected = schedules if exhaustive else schedules[:budget]
    emit(f"probed {len(candidates)} controller transition points; "
         f"enumerated {len(schedules)} schedules; running {len(selected)}")
    outcomes = []
    failures = []
    for index, schedule in enumerate(selected):
        outcome = run_slo_schedule(config, schedule)
        outcomes.append(outcome)
        if not outcome.ok:
            failures.append(outcome)
        if (index + 1) % 10 == 0:
            emit(f"  {index + 1}/{len(selected)} schedules run "
                 f"({len(failures)} failing)")
    reproducers = []
    for outcome in failures[:max_reproducers]:
        minimal, trials = shrink_schedule(
            outcome.schedule,
            lambda trial: not run_slo_schedule(config, trial).ok,
        )
        final = run_slo_schedule(config, minimal, with_trace=True)
        entry = {
            "family": minimal.family,
            "fault_events": len(minimal.plan),
            "shrink_trials": trials,
            "violations": (final.flat_violations()
                           or outcome.flat_violations()),
        }
        if out_dir is not None:
            path = write_reproducer(out_dir, config, final)
            entry["path"] = str(path)
            emit(f"reproducer written: {path}")
        reproducers.append(entry)
    return CheckReport(config, selected, outcomes, failures, reproducers,
                       enumerated=len(schedules))
