"""CLI for the crash-consistency checker.

Examples::

    python -m repro.check --scenario chain --budget 500
    python -m repro.check --scenario multiwriter --budget 200 --seed 7
    python -m repro.check --scenario local --exhaustive
    python -m repro.check --fleet --budget 30
    python -m repro.check --slo --budget 20
    python -m repro.check --replay reproducers/chain-combo-2500000ns-seed0.json

Exit status 0 when every schedule passes (or a replayed reproducer no
longer fails), 1 on violations.
"""

import argparse
import json
import sys

from repro.check.runner import CheckConfig, run_check
from repro.check.shrink import replay_reproducer


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="Crash-consistency model checker for the X-SSD stack.",
    )
    parser.add_argument("--scenario", choices=CheckConfig.SCENARIOS,
                        default="chain",
                        help="workload/topology to check (default: chain)")
    parser.add_argument("--budget", type=int, default=200,
                        help="max schedules to run (default: 200)")
    parser.add_argument("--seed", type=int, default=0,
                        help="base seed for workload and combo faults")
    parser.add_argument("--exhaustive", action="store_true",
                        help="run every enumerated schedule, ignoring "
                             "--budget (bounded-exhaustive mode)")
    parser.add_argument("--secondaries", type=int, default=2,
                        help="chain length behind the primary (default: 2)")
    parser.add_argument("--supervised", action="store_true",
                        help="attach a ChainSupervisor and disable the "
                             "injector's auto-splice: every reconfiguration "
                             "is the control plane's (adds the "
                             "supervised-failover schedule family)")
    parser.add_argument("--fleet", action="store_true",
                        help="check the fleet tier instead: a multi-node "
                             "fleet with one shard migrating mid-run, under "
                             "the fleet-cutover-crash / fleet-partition / "
                             "fleet-failover schedule families")
    parser.add_argument("--nodes", type=int, default=2,
                        help="fleet size for --fleet (default: 2)")
    parser.add_argument("--seed-cutover-bug", action="store_true",
                        help="validate the fleet checker: seed the "
                             "early-cutover ack-ordering bug in the "
                             "migration protocol and expect failures")
    parser.add_argument("--dr", action="store_true",
                        help="check the disaster-recovery tier instead: a "
                             "fleet with per-node WAL archivers shipping to "
                             "a fault-modeled grid, under the dr-total-loss "
                             "/ dr-archive-lag schedule families with a "
                             "PITR oracle")
    parser.add_argument("--seed-drop-segment-bug", action="store_true",
                        help="validate the dr checker: seed the "
                             "silently-dropped-segment archiver bug and "
                             "expect failures")
    parser.add_argument("--slo", action="store_true",
                        help="check the SLO control plane instead: an "
                             "overloaded fleet under an SloController "
                             "walking its full actuation ladder, with "
                             "crashes and chain faults landing at every "
                             "controller transition (slo-overload / "
                             "slo-adaptation schedule families)")
    parser.add_argument("--seed-shed-acked-bug", action="store_true",
                        help="validate the slo checker: arm the "
                             "controller's seeded shed-acked-commits bug "
                             "and expect acked-durability failures")
    parser.add_argument("--transactions", type=int, default=24,
                        help="workload transactions (default: 24)")
    parser.add_argument("--out-dir", default="reproducers",
                        help="directory for shrunk reproducer dumps "
                             "(default: reproducers/)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the full report as JSON")
    parser.add_argument("--replay", metavar="PATH", default=None,
                        help="re-run a dumped reproducer instead of checking")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress progress output")
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    emit = (lambda message: None) if args.quiet else print

    if args.replay is not None:
        outcome = replay_reproducer(args.replay)
        if outcome.ok:
            emit(f"reproducer {args.replay}: no longer fails")
            return 0
        emit(f"reproducer {args.replay}: still failing")
        for violation in outcome.flat_violations():
            emit(f"  {violation}")
        return 1

    if args.slo:
        from repro.check.slo import SloCheckConfig, run_slo_check

        config = SloCheckConfig(
            seed=args.seed, nodes=args.nodes,
            seed_shed_acked_bug=args.seed_shed_acked_bug,
        )
        report = run_slo_check(config, budget=args.budget,
                               exhaustive=args.exhaustive,
                               out_dir=args.out_dir, log=emit)
    elif args.dr:
        from repro.check.dr import DrCheckConfig, run_dr_check

        config = DrCheckConfig(seed=args.seed, nodes=args.nodes,
                               drop_segment=args.seed_drop_segment_bug)
        report = run_dr_check(config, budget=args.budget,
                              exhaustive=args.exhaustive,
                              out_dir=args.out_dir, log=emit)
    elif args.fleet:
        from repro.check.fleet import FleetCheckConfig, run_fleet_check

        config = FleetCheckConfig(seed=args.seed, nodes=args.nodes,
                                  supervised=args.supervised,
                                  early_cutover=args.seed_cutover_bug)
        report = run_fleet_check(config, budget=args.budget,
                                 exhaustive=args.exhaustive,
                                 out_dir=args.out_dir, log=emit)
    else:
        config = CheckConfig(scenario=args.scenario, seed=args.seed,
                             secondaries=args.secondaries,
                             transactions=args.transactions,
                             supervised=args.supervised)
        report = run_check(config, budget=args.budget,
                           exhaustive=args.exhaustive, out_dir=args.out_dir,
                           log=emit)

    families = ", ".join(
        f"{family}:{count}"
        for family, count in report.family_histogram().items()
    )
    emit(f"scenario={config.scenario} seed={config.seed}: "
         f"{len(report.schedules)} schedules run "
         f"({report.distinct_schedules} distinct; {families})")
    if report.ok:
        emit("all schedules passed: recovered state matched the reference "
             "model everywhere")
    else:
        emit(f"{len(report.failures)} schedules FAILED")
        for entry in report.reproducers:
            where = entry.get("path", "<no dump>")
            emit(f"  minimal reproducer ({entry['fault_events']} fault "
                 f"events after {entry['shrink_trials']} shrink trials): "
                 f"{where}")
            for violation in entry["violations"][:5]:
                emit(f"    {violation}")
    if args.json is not None:
        with open(args.json, "w") as handle:
            json.dump(report.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        emit(f"report written to {args.json}")
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
