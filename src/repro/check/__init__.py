"""Crash-consistency model checking: enumerate, replay, diff, shrink.

The chaos suite (``repro.faults``) samples random fault plans; this
package *enumerates* crash schedules — one primary power loss (plus
optional perturbations: replica crashes, partitions, torn writes,
supercap failures) at every pipeline transition a probe run observes:
host submit → CMB ack → destage dispatch → NAND program → destage ack →
replica ack → WAL commit.  Each schedule's post-crash recovery is
replayed through :mod:`repro.db.recovery` and diffed against
:class:`~repro.check.model.ReferenceModel`, a ~150-line executable spec
of the paper's durability and prefix-replication guarantees.  Failing
schedules are greedily shrunk to a minimal re-runnable reproducer.

Entry point: ``python -m repro.check --scenario {local,chain,multiwriter}
--budget N [--exhaustive]``.  See CHECKING.md.
"""

from repro.check.dr import (
    DR_FAMILIES,
    DrCheckConfig,
    enumerate_dr_schedules,
    probe_dr_candidates,
    run_dr_check,
    run_dr_schedule,
)
from repro.check.fleet import (
    FLEET_FAMILIES,
    FleetCheckConfig,
    enumerate_fleet_schedules,
    probe_fleet_candidates,
    run_fleet_check,
    run_fleet_schedule,
)
from repro.check.slo import (
    SLO_FAMILIES,
    SloCheckConfig,
    enumerate_slo_schedules,
    probe_slo_candidates,
    run_slo_check,
    run_slo_schedule,
)
from repro.check.model import ReferenceModel, chain_frontier_violations
from repro.check.points import (
    STAGES,
    crash_candidates,
    extract_transitions,
)
from repro.check.runner import (
    CheckConfig,
    CheckReport,
    Outcome,
    probe_transitions,
    run_check,
    run_schedule,
)
from repro.check.schedules import CrashSchedule, enumerate_schedules
from repro.check.shrink import (
    replay_reproducer,
    shrink_schedule,
    write_reproducer,
)

__all__ = [
    "ReferenceModel",
    "chain_frontier_violations",
    "STAGES",
    "extract_transitions",
    "crash_candidates",
    "CheckConfig",
    "CheckReport",
    "Outcome",
    "probe_transitions",
    "run_check",
    "run_schedule",
    "DR_FAMILIES",
    "DrCheckConfig",
    "enumerate_dr_schedules",
    "probe_dr_candidates",
    "run_dr_check",
    "run_dr_schedule",
    "FLEET_FAMILIES",
    "FleetCheckConfig",
    "enumerate_fleet_schedules",
    "probe_fleet_candidates",
    "run_fleet_check",
    "run_fleet_schedule",
    "SLO_FAMILIES",
    "SloCheckConfig",
    "enumerate_slo_schedules",
    "probe_slo_candidates",
    "run_slo_check",
    "run_slo_schedule",
    "CrashSchedule",
    "enumerate_schedules",
    "shrink_schedule",
    "write_reproducer",
    "replay_reproducer",
]
