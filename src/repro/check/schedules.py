"""Crash-schedule enumeration over the probed transition points.

A :class:`CrashSchedule` is one experiment: run the scenario with a
:class:`~repro.faults.plan.FaultPlan` of perturbations, then cut the
primary's power at ``end_time_ns``.  The primary crash is implicit — it
is the one fault every schedule shares, so the shrinker can never remove
it — and ``end_time_ns`` is chosen from the probe's transition points so
the crash lands exactly at (or exactly between) pipeline stages.

Families:

* ``primary-crash`` — plain power loss at each candidate point;
* ``dirty-crash`` — supercap failure then power loss at the same point;
* ``replica-crash`` / ``replica-flap`` — a secondary dies (and maybe
  rejoins/resyncs) mid-run, primary crashes at the end;
* ``partition`` — an NTB bridge severs and heals, primary crashes at
  the end;
* ``torn-write`` — a torn CMB chunk at the candidate point;
* ``combo`` — seeded bundles of several perturbations, the shrinker's
  natural prey.

Enumeration is round-robin across families so a small ``--budget`` still
samples every family; bounded-exhaustive mode runs the whole list.
"""

from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.sim.rng import derive

# Heavier families (full-duration runs) take every STRIDE-th candidate so
# primary-crash coverage stays dense without quadratic schedule counts.
HEAVY_STRIDE = 4
COMBO_COUNT = 8
COMBO_EVENTS = 4


class CrashSchedule:
    """One enumerated experiment: perturbations + a primary crash time."""

    __slots__ = ("family", "stage", "site", "end_time_ns", "plan")

    def __init__(self, family, stage, site, end_time_ns, plan=None):
        self.family = family
        self.stage = stage
        self.site = site
        self.end_time_ns = float(end_time_ns)
        self.plan = plan if plan is not None else FaultPlan()

    def key(self):
        """Hashable identity: two schedules with equal keys run identically."""
        return (
            self.family,
            self.site,
            round(self.end_time_ns, 3),
            tuple(
                (spec.kind.value, spec.site, round(spec.time_ns, 3))
                for spec in self.plan
            ),
        )

    def with_plan(self, plan):
        return CrashSchedule(self.family, self.stage, self.site,
                             self.end_time_ns, plan)

    def as_dict(self):
        payload = {
            "family": self.family,
            "stage": self.stage,
            "site": self.site,
            "end_time_ns": self.end_time_ns,
            "faults": self.plan.as_dicts(),
        }
        if self.plan.excluded:
            payload["excluded"] = [
                spec.as_dict() for spec in self.plan.excluded
            ]
        return payload

    @classmethod
    def from_dict(cls, data):
        return cls(
            data["family"], data["stage"], data["site"], data["end_time_ns"],
            FaultPlan.from_dicts(data["faults"], data.get("excluded", ())),
        )

    def __repr__(self):
        return (f"CrashSchedule({self.family} @ {self.end_time_ns:.0f}ns, "
                f"{len(self.plan)} faults)")


def enumerate_schedules(config, candidates):
    """Every schedule for ``config`` over the probed ``candidates``.

    ``candidates`` are ``(time_ns, label)`` pairs from
    :func:`repro.check.points.crash_candidates`.  Returns a deduplicated
    list, round-robin interleaved across families, deterministic for a
    given (config, candidates).
    """
    if not candidates:
        return []
    duration = config.duration_ns
    secondaries = [f"secondary-{i}" for i in range(1, config.secondaries + 1)]
    chain = config.scenario == "chain"
    servers = ["primary"] + (secondaries if chain else [])
    heavy = candidates[::HEAVY_STRIDE] or candidates[:1]

    families = []
    families.append([
        CrashSchedule("primary-crash", label, "primary", time_ns)
        for time_ns, label in candidates
    ])
    families.append([
        CrashSchedule(
            "dirty-crash", label, "primary", time_ns,
            FaultPlan([FaultSpec(time_ns, "primary",
                                 FaultKind.SUPERCAP_FAIL)]),
        )
        for time_ns, label in heavy
    ])
    if chain:
        for name in secondaries:
            families.append([
                CrashSchedule(
                    "replica-crash", label, name, duration,
                    FaultPlan([FaultSpec(time_ns, name,
                                         FaultKind.REPLICA_CRASH)]),
                )
                for time_ns, label in heavy
            ])
            families.append([
                CrashSchedule(
                    "replica-flap", label, name, duration,
                    FaultPlan([
                        FaultSpec(time_ns, name, FaultKind.REPLICA_CRASH),
                        FaultSpec(time_ns + config.heal_delay_ns, name,
                                  FaultKind.REPLICA_REJOIN),
                    ]),
                )
                for time_ns, label in heavy
            ])
        if getattr(config, "supervised", False):
            # Supervised failover: kill a replica with NO rejoin in the
            # plan and NO injector auto-splice — detection, eviction,
            # reattach and resync are all the supervisor's.  The end
            # time is pushed past the full heal window so the terminal
            # crash lands on a *reconfigured* chain, and the usual
            # prefix/chain oracles judge the state it left behind.
            heal_window = 1_500_000.0
            for name in secondaries:
                families.append([
                    CrashSchedule(
                        "supervised-failover", label, name,
                        max(duration, time_ns + heal_window),
                        FaultPlan([FaultSpec(time_ns, name,
                                             FaultKind.REPLICA_CRASH)]),
                    )
                    for time_ns, label in heavy
                ])
        for index in range(len(secondaries)):
            bridge = f"bridge-{index}"
            families.append([
                CrashSchedule(
                    "partition", label, bridge, duration,
                    FaultPlan([
                        FaultSpec(time_ns, bridge, FaultKind.LINK_DOWN),
                        FaultSpec(time_ns + config.heal_delay_ns, bridge,
                                  FaultKind.LINK_UP),
                    ]),
                )
                for time_ns, label in heavy
            ])
    for name in servers:
        families.append([
            CrashSchedule(
                "torn-write", label, name, duration,
                FaultPlan([FaultSpec(time_ns, name,
                                     FaultKind.CMB_TORN_WRITE)]),
            )
            for time_ns, label in heavy
        ])
    families.append(_combo_family(config, candidates, secondaries))

    interleaved = []
    seen = set()
    cursor = 0
    while any(cursor < len(family) for family in families):
        for family in families:
            if cursor < len(family):
                schedule = family[cursor]
                key = schedule.key()
                if key not in seen:
                    seen.add(key)
                    interleaved.append(schedule)
        cursor += 1
    return interleaved


def _combo_family(config, candidates, secondaries):
    """Seeded multi-fault bundles: several perturbations, one crash."""
    rng = derive(config.seed, "check-combos")
    pool = [("primary", FaultKind.CMB_TORN_WRITE),
            ("primary", FaultKind.NAND_PROGRAM_FAIL)]
    for name in secondaries:
        pool.extend([
            (name, FaultKind.REPLICA_CRASH),
            (name, FaultKind.CMB_TORN_WRITE),
            (name, FaultKind.SUPERCAP_FAIL),
        ])
    for index in range(len(secondaries)):
        pool.append((f"bridge-{index}", FaultKind.LINK_CORRUPT))
        pool.append((f"bridge-{index}", FaultKind.LINK_LATENCY_SPIKE))
    schedules = []
    for combo in range(COMBO_COUNT):
        specs = []
        crashed = set()
        for _ in range(COMBO_EVENTS):
            site, kind = rng.choice(pool)
            time_ns = rng.choice(candidates)[0]
            if kind is FaultKind.REPLICA_CRASH:
                if site in crashed:
                    continue
                crashed.add(site)
            params = {}
            if kind in (FaultKind.NAND_PROGRAM_FAIL, FaultKind.LINK_CORRUPT):
                params["count"] = rng.randint(1, 2)
            if kind is FaultKind.LINK_LATENCY_SPIKE:
                params["extra_ns"] = rng.uniform(5_000.0, 20_000.0)
                params["duration_ns"] = rng.uniform(50_000.0, 200_000.0)
            specs.append(FaultSpec(time_ns, site, kind, params))
        schedules.append(
            CrashSchedule("combo", f"combo-{combo}", "mixed",
                          config.duration_ns, FaultPlan(specs))
        )
    return schedules
