"""Running one crash schedule end-to-end and diffing it against the model.

Each schedule gets a fresh engine and cluster (deterministic: same seed →
same build), the scenario's workload, and a
:class:`~repro.faults.injector.ChaosInjector` walking the schedule's
perturbations.  At ``end_time_ns`` the primary suffers power loss; the
destaged log is read back (tolerantly — an unreadable page is itself
evidence), recovery replays it into a fresh database, and every oracle
runs: the reference model's state and commit-prefix diffs, the durable
prefix / FTL / visible-counter oracles from ``repro.faults``, and the
chain-prefix check across the surviving replica order.
"""

import copy

from repro.check.model import ReferenceModel, chain_frontier_violations
from repro.check.points import crash_candidates, extract_transitions
from repro.check.schedules import enumerate_schedules
from repro.check.shrink import shrink_schedule, write_reproducer
from repro.cluster.server import Server
from repro.cluster.topology import Cluster, replicated_chain
from repro.db.engine import Database
from repro.db.recovery import durable_commit_ids, recover_from_pages
from repro.db.txn import TransactionAborted
from repro.faults.injector import ChaosInjector
from repro.faults.oracles import (
    StreamRecorder,
    check_durable_prefix,
    check_ftl_integrity,
    check_replica_prefix,
    check_visible_counter_bound,
)
from repro.faults.plan import FaultKind
from repro.faults.scenario import chaos_config_factory
from repro.host.baselines import NoLogFile
from repro.sim import Engine
from repro.sim.rng import derive

TRACE_TAIL_LINES = 80


class CheckConfig:
    """One checker scenario's knobs; every run_* function takes one.

    The devices are deliberately tiny (the chaos geometry) and the
    workload short: a schedule must run in tens of milliseconds of wall
    time for a 500-schedule budget to be routine.  ``max_inflight_flushes``
    stays 1 — with a pipelined flusher, recovered state need not be a
    per-writer commit prefix even when nothing is wrong, and the model's
    prefix oracle would be unsound (see CHECKING.md).
    """

    SCENARIOS = ("local", "chain", "multiwriter")

    def __init__(self, scenario="chain", seed=0, secondaries=2,
                 transactions=24, duration_ns=2_500_000.0, key_space=6,
                 writers=3, group_commit_bytes=384,
                 group_commit_timeout_ns=5_000.0, grace_ns=400_000.0,
                 heal_delay_ns=300_000.0, supervised=False):
        if scenario not in self.SCENARIOS:
            raise ValueError(
                f"scenario must be one of {self.SCENARIOS}, got {scenario!r}"
            )
        if scenario == "chain" and secondaries < 1:
            raise ValueError("a chain scenario needs at least one secondary")
        if supervised and scenario != "chain":
            raise ValueError("supervised checking needs the chain scenario")
        self.scenario = scenario
        self.seed = seed
        self.secondaries = secondaries if scenario == "chain" else 0
        self.transactions = transactions
        self.duration_ns = float(duration_ns)
        self.key_space = key_space
        self.writers = writers if scenario == "multiwriter" else 1
        self.group_commit_bytes = group_commit_bytes
        self.group_commit_timeout_ns = group_commit_timeout_ns
        self.grace_ns = grace_ns
        self.heal_delay_ns = heal_delay_ns
        # With a supervisor attached, the injector's own auto-splice is
        # disabled: every reconfiguration in a supervised schedule is the
        # control plane's doing, so the model checks *its* recovery.
        self.supervised = supervised

    def as_dict(self):
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "secondaries": self.secondaries,
            "transactions": self.transactions,
            "duration_ns": self.duration_ns,
            "key_space": self.key_space,
            "writers": self.writers,
            "group_commit_bytes": self.group_commit_bytes,
            "group_commit_timeout_ns": self.group_commit_timeout_ns,
            "grace_ns": self.grace_ns,
            "heal_delay_ns": self.heal_delay_ns,
            "supervised": self.supervised,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(**data)


class _Scenario:
    """One built instance: engine, cluster, model, witnesses, workload."""

    def __init__(self, engine, cluster, database, model, recorders,
                 workload_procs, supervisor=None):
        self.engine = engine
        self.cluster = cluster
        self.database = database
        self.model = model
        self.recorders = recorders
        self.workload_procs = workload_procs
        self.supervisor = supervisor


def _build(config):
    engine = Engine()
    factory = chaos_config_factory(config.seed)
    if config.scenario == "chain":
        cluster = replicated_chain(engine, factory,
                                   secondaries=config.secondaries)
    else:
        server = Server(engine, "primary", factory()).start()
        server.become_standalone()
        cluster = Cluster(engine, [server], [], primary_name="primary")
        engine.run(until=engine.now + 100_000.0)  # let the admin land
    recorders = {
        name: StreamRecorder(server.device, name=name)
        for name, server in cluster.servers.items()
    }
    supervisor = None
    if config.supervised:
        from repro.health.supervisor import ChainSupervisor

        supervisor = ChainSupervisor(engine, cluster)
        supervisor.start()
    database = cluster.primary.with_database(
        group_commit_bytes=config.group_commit_bytes,
        group_commit_timeout_ns=config.group_commit_timeout_ns,
    )
    database.create_table("kv")
    model = ReferenceModel()

    def writer_proc(writer, key_prefix, count, rng):
        for index in range(count):
            txn = database.begin()
            key = f"{key_prefix}{rng.randrange(config.key_space)}"
            value = f"{writer}-v{index}"
            txn.write("kv", key, value)
            model.committed(writer, txn.txn_id, [(key, value)])
            try:
                yield txn.commit()
            except TransactionAborted:
                # Disjoint per-writer key sets make this unreachable in
                # practice, but the model must never count a commit that
                # the database refused.
                model.aborted(writer)
                continue
            model.acknowledged(writer)

    per_writer = max(1, config.transactions // config.writers)
    workload_procs = []
    for index in range(config.writers):
        writer = f"w{index}"
        prefix = f"{writer}k" if config.writers > 1 else "k"
        rng = derive(config.seed, f"check-writer-{index}")
        workload_procs.append(writer_proc(writer, prefix, per_writer, rng))
    return _Scenario(engine, cluster, database, model, recorders,
                     workload_procs, supervisor=supervisor)


class Outcome:
    """One schedule's verdict: violations per oracle plus run stats."""

    __slots__ = ("schedule", "violations", "stats", "trace_tail")

    def __init__(self, schedule, violations, stats, trace_tail=None):
        self.schedule = schedule
        self.violations = violations
        self.stats = stats
        self.trace_tail = trace_tail

    @property
    def ok(self):
        return all(not entries for entries in self.violations.values())

    def flat_violations(self):
        return [
            entry for _name, entries in sorted(self.violations.items())
            for entry in entries
        ]

    def as_dict(self):
        payload = {
            "schedule": self.schedule.as_dict(),
            "violations": {
                name: list(entries)
                for name, entries in sorted(self.violations.items())
                if entries
            },
            "stats": self.stats,
            "ok": self.ok,
        }
        if self.trace_tail is not None:
            payload["trace_tail"] = list(self.trace_tail)
        return payload


def run_schedule(config, schedule, with_trace=False):
    """Execute one schedule; optionally capture a trace tail for dumps."""
    if with_trace:
        from repro.obs import capture

        with capture() as session:
            outcome = _execute(config, schedule)
        outcome.trace_tail = session.tail(TRACE_TAIL_LINES)
        return outcome
    return _execute(config, schedule)


def _execute(config, schedule):
    violations = {}
    stats = {"family": schedule.family, "end_time_ns": schedule.end_time_ns}
    try:
        scenario = _build(config)
        engine = scenario.engine
        cluster = scenario.cluster
        injector = None
        if len(schedule.plan):
            injector = ChaosInjector(engine, cluster, schedule.plan,
                                     grace_ns=config.grace_ns,
                                     auto_reconfigure=not config.supervised)
            injector.start()
        for index, proc in enumerate(scenario.workload_procs):
            engine.process(proc, name=f"check-writer-{index}")
        engine.run(until=max(schedule.end_time_ns, engine.now + 1.0))

        if scenario.supervisor is not None:
            # Freeze the control plane before the terminal crash: the
            # supervisor must not react to the power loss we are about
            # to inject for the autopsy.
            scenario.supervisor.stop()
        violations["visible-counter"] = check_visible_counter_bound(cluster)
        dirty_sites = {
            spec.site for spec in schedule.plan
            if spec.kind is FaultKind.SUPERCAP_FAIL
        }
        report = cluster.primary.crash()
        if not report.reserve_energy_ok:
            dirty_sites.add("primary")

        # Freeze the model at crash time: page collection steps the engine
        # forward, and surviving writer processes may observe the crash
        # salvage's credit advance and record post-crash acks that the
        # pre-crash client never saw.
        model = copy.deepcopy(scenario.model)

        pages, page_errors = _collect_pages_tolerant(
            engine, cluster.primary.device
        )
        violations["page-read"] = page_errors
        violations["durable-prefix"] = check_durable_prefix(report, pages)

        fresh = Engine()
        recovered_db = Database(fresh, NoLogFile(fresh))
        recovered_db.create_table("kv")
        recover_from_pages(recovered_db, pages)
        recovered = dict(recovered_db.table("kv").scan())
        durable_ids = durable_commit_ids(pages)

        require_acked = report.reserve_energy_ok
        violations["model-state"] = model.diff_recovered(
            recovered, require_acked=require_acked
        )
        violations["model-commit-prefix"] = model.diff_commit_prefix(
            durable_ids, require_acked=require_acked
        )

        if config.scenario == "chain":
            violations["chain-prefix"] = _chain_violations(
                cluster, scenario.recorders, injector, report, dirty_sites
            )
            for name in (s.name for s in cluster.secondaries()):
                violations[f"replica-prefix:{name}"] = check_replica_prefix(
                    scenario.recorders["primary"], scenario.recorders[name],
                    secondary_credit=_frontier(cluster, injector, name),
                )
        for name, server in cluster.servers.items():
            violations[f"ftl-integrity:{name}"] = check_ftl_integrity(
                server.device
            )

        stats.update({
            "commits_submitted": model.total_committed(),
            "commits_acked": model.total_acked(),
            "durable_commits": len(durable_ids),
            "recovered_keys": len(recovered),
            "pages": len(pages),
            "credit_at_crash": report.credit_at_crash,
            "durable_offset": report.durable_offset,
            "reserve_energy_ok": report.reserve_energy_ok,
        })
        if scenario.supervisor is not None:
            stats["supervisor_events"] = [
                f"{entry['action']}@{entry['site']}"
                for entry in scenario.supervisor.events
            ]
    except Exception as error:  # noqa: BLE001 — a harness crash IS a finding
        violations.setdefault("harness", []).append(
            f"harness: schedule execution raised {error!r}"
        )
    return Outcome(schedule, violations, stats)


def _frontier(cluster, injector, name):
    """A server's contiguous persisted frontier, dead or alive."""
    server = cluster.servers[name]
    if server.device.halted and injector is not None:
        report = injector.crash_reports.get(name)
        if report is not None:
            return report.durable_offset
    return server.device.cmb.credit.value


def _chain_violations(cluster, recorders, injector, primary_report,
                      dirty_sites):
    order = list(cluster.order)
    frontiers = {"primary": primary_report.durable_offset}
    received = {}
    for name in order:
        if name != "primary":
            frontiers[name] = _frontier(cluster, injector, name)
        coverage = recorders[name].coverage()
        received[name] = (
            coverage[0][1] if coverage and coverage[0][0] == 0 else 0
        )
    return chain_frontier_violations(order, frontiers, received, dirty_sites)


def _collect_pages_tolerant(engine, device):
    """Read back the durable destaged ring, noting unreadable pages.

    Tolerance is the point: when a seeded bug loses a page mapping, the
    failed read must surface as a clean oracle violation (a hole in the
    durable prefix), not as a harness crash that masks the diff.
    """
    pages = []
    errors = []

    def reader():
        destage = device.destage
        for sequence in range(destage.head_sequence, destage.durable_tail):
            try:
                page = yield destage.read_page(sequence)
            except Exception as error:  # noqa: BLE001 — evidence, not a bug
                errors.append(
                    f"page-read: durable sequence {sequence} unreadable: "
                    f"{error!r}"
                )
                continue
            pages.append(page)

    done = engine.process(reader(), name="check-page-collect")
    # Step in slices: surviving secondaries keep the heap non-empty, so
    # one big run(until=...) would grind through the whole window.
    deadline = engine.now + 5e9
    while not done.triggered and engine.now < deadline:
        engine.run(until=min(engine.now + 1e6, deadline))
    if not done.triggered:
        errors.append("page-read: collection did not finish in bounded time")
    return pages, errors


def probe_transitions(config):
    """Fault-free instrumented run → the pipeline's transition points."""
    from repro.obs import capture

    with capture() as session:
        scenario = _build(config)
        for index, proc in enumerate(scenario.workload_procs):
            scenario.engine.process(proc, name=f"check-writer-{index}")
        scenario.engine.run(until=config.duration_ns)
    return extract_transitions(session.tracers)


class CheckReport:
    """The checker's aggregate result over one budget of schedules."""

    def __init__(self, config, schedules, outcomes, failures, reproducers,
                 enumerated):
        self.config = config
        self.schedules = schedules
        self.outcomes = outcomes
        self.failures = failures
        self.reproducers = reproducers
        self.enumerated = enumerated

    @property
    def ok(self):
        return not self.failures

    @property
    def distinct_schedules(self):
        return len({schedule.key() for schedule in self.schedules})

    def family_histogram(self):
        histogram = {}
        for schedule in self.schedules:
            histogram[schedule.family] = histogram.get(schedule.family, 0) + 1
        return dict(sorted(histogram.items()))

    def as_dict(self):
        return {
            "config": self.config.as_dict(),
            "schedules_enumerated": self.enumerated,
            "schedules_run": len(self.schedules),
            "distinct_schedules": self.distinct_schedules,
            "families": self.family_histogram(),
            "failures": len(self.failures),
            "failing": [outcome.as_dict() for outcome in self.failures[:10]],
            "reproducers": self.reproducers,
            "ok": self.ok,
        }


def run_check(config, budget=200, exhaustive=False, out_dir=None,
              max_reproducers=3, log=None):
    """Probe, enumerate, run, and (on failure) shrink + dump reproducers."""
    emit = log or (lambda message: None)
    candidates = crash_candidates(probe_transitions(config))
    schedules = enumerate_schedules(config, candidates)
    selected = schedules if exhaustive else schedules[:budget]
    emit(f"probed {len(candidates)} crash points; enumerated "
         f"{len(schedules)} schedules; running {len(selected)}")
    outcomes = []
    failures = []
    for index, schedule in enumerate(selected):
        outcome = run_schedule(config, schedule)
        outcomes.append(outcome)
        if not outcome.ok:
            failures.append(outcome)
        if (index + 1) % 50 == 0:
            emit(f"  {index + 1}/{len(selected)} schedules run "
                 f"({len(failures)} failing)")
    reproducers = []
    for outcome in failures[:max_reproducers]:
        minimal, trials = shrink_schedule(
            outcome.schedule,
            lambda trial: not run_schedule(config, trial).ok,
        )
        final = run_schedule(config, minimal, with_trace=True)
        entry = {
            "family": minimal.family,
            "fault_events": len(minimal.plan),
            "shrink_trials": trials,
            "violations": (final.flat_violations()
                           or outcome.flat_violations()),
        }
        if out_dir is not None:
            path = write_reproducer(out_dir, config, final)
            entry["path"] = str(path)
            emit(f"reproducer written: {path}")
        reproducers.append(entry)
    return CheckReport(config, selected, outcomes, failures, reproducers,
                       enumerated=len(schedules))
