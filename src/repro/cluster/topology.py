"""Pre-wired cluster topologies and the secondary apply loop."""

from repro.cluster.server import Server
from repro.core.replication import policy_by_name
from repro.db.recovery import extract_records, apply_records
from repro.pcie.ntb import NtbBridge
from repro.ssd.nvme import AdminOpcode


class Cluster:
    """A set of servers with replication roles configured."""

    def __init__(self, engine, servers, bridges, primary_name, order=None):
        self.engine = engine
        self.servers = {server.name: server for server in servers}
        self.bridges = bridges
        self.primary_name = primary_name
        # Replication order: head first.  For a chain this is the relay
        # path; for a star it is just the wiring order.  Reconfiguration
        # edits it as servers die.
        self.order = list(order) if order else [s.name for s in servers]

    @property
    def primary(self):
        return self.servers[self.primary_name]

    def secondaries(self):
        return [
            server
            for name, server in self.servers.items()
            if name != self.primary_name
        ]

    def alive_secondaries(self):
        return [s for s in self.secondaries() if not s.device.halted]

    def _membership(self, action, site, **detail):
        """Emit a supervisor-track instant for a membership change.

        Joins and evictions used to be invisible in Perfetto exports —
        the ChainSupervisor traces its *decisions*, but topology edits
        made directly (tests, fleet migrations, manual ops) left no
        mark.  Now the cluster itself records every order/role change.
        """
        tracer = getattr(self.engine, "tracer", None)
        if tracer is not None and tracer.enabled:
            tracer.instant("supervisor", "membership", action=action,
                           site=site, order=",".join(self.order), **detail)

    def predecessor_of(self, name):
        """Nearest *alive* server upstream of ``name`` in the chain order."""
        index = self.order.index(name)
        for candidate in reversed(self.order[:index]):
            server = self.servers[candidate]
            if not server.device.halted:
                return server
        return None

    def successor_of(self, name):
        """Nearest *alive* server downstream of ``name`` in the chain order."""
        index = self.order.index(name)
        for candidate in self.order[index + 1:]:
            server = self.servers[candidate]
            if not server.device.halted:
                return server
        return None

    def resync(self, secondary_name):
        """Re-ship the log range ``secondary_name`` is missing.

        The management plane queries the rejoining secondary for its
        contiguous frontier (what a real deployment reads back via the
        status admin command) and asks its upstream neighbor to re-offer
        retained history from that byte onward.  Duplicates the secondary
        already holds are discarded at its CMB, so over-shipping is safe.
        Returns the bytes offered, or 0 when there is no upstream flow.
        """
        upstream = self.predecessor_of(secondary_name)
        if upstream is None:
            return 0
        transport = upstream.device.transport
        if secondary_name not in transport._flows:
            return 0
        frontier = self.servers[secondary_name].device.cmb.credit.value
        return transport.resync_peer(secondary_name, from_offset=frontier)

    def reconfigure_around(self, dead_name):
        """Splice a dead server out of the chain (Section 7.1's step).

        The dead server's upstream neighbor drops its mirror flow toward
        it; if an alive successor exists further down the chain, a fresh
        NTB hop is cabled between the two survivors, the upstream opens a
        mirror flow over it, and the successor is resynced from retained
        history.  The chain order forgets the dead server either way.
        """
        from repro.pcie.ntb import NtbBridge, NtbPort

        if dead_name not in self.order:
            raise KeyError(f"{dead_name!r} is not part of this cluster")
        upstream = self.predecessor_of(dead_name)
        successor = self.successor_of(dead_name)
        if upstream is not None:
            transport = upstream.device.transport
            if dead_name in transport._flows:
                transport.remove_peer(dead_name)
        self.order.remove(dead_name)
        self._membership("evict", dead_name,
                         upstream=upstream.name if upstream else "",
                         successor=successor.name if successor else "")
        if upstream is None or successor is None:
            return None
        new_port = NtbPort(self.engine,
                           f"{upstream.name}.right@{successor.name}")
        upstream.device.transport.attach_extra_port(new_port)
        bridge = NtbBridge(self.engine, new_port,
                           successor.device.transport.ntb_port)
        self.bridges.append(bridge)
        upstream.right_port = new_port
        if successor.name not in upstream.device.transport._flows:
            upstream.device.transport.add_peer(successor.name, port=new_port)
        successor.device.transport.set_secondary(upstream.name)
        self.resync(successor.name)
        return bridge

    def reattach(self, name):
        """Re-admit a rebooted, spliced-out server at the tail of the chain.

        The complement of :meth:`reconfigure_around`: a server that was
        evicted (removed from ``order``) and has since rebooted is cabled
        to the current tail over a fresh NTB hop, given the secondary
        role under the tail, and resynced from the tail's history.  Any
        mirror flows the server remembers from its old chain position are
        dropped first — the tail of the chain mirrors to nobody, and a
        stale flow toward a server that is now *upstream* would echo the
        stream back into the chain.  Returns the bytes offered by the
        resync.
        """
        from repro.pcie.ntb import NtbBridge, NtbPort

        server = self.servers[name]
        if name in self.order:
            raise ValueError(f"{name!r} is still part of the chain")
        if server.device.halted:
            raise RuntimeError(f"{name!r} is down; rejoin it before "
                               f"reattaching")
        transport = server.device.transport
        for peer in list(transport._flows):
            transport.remove_peer(peer)
        tail = self.servers[self.order[-1]]
        new_port = NtbPort(self.engine, f"{tail.name}.right@{name}")
        tail.device.transport.attach_extra_port(new_port)
        bridge = NtbBridge(self.engine, new_port, server.ntb_port)
        self.bridges.append(bridge)
        tail.right_port = new_port
        if name not in tail.device.transport._flows:
            tail.device.transport.add_peer(name, port=new_port)
        transport.set_secondary(tail.name)
        self.order.append(name)
        self._membership("join", name, tail=tail.name)
        return self.resync(name)

    def set_replication_policy(self, policy_name):
        """Switch the primary's counter-combination policy at runtime."""
        policy_by_name(policy_name)  # validate early

        def proc():
            yield self.primary.device.admin(
                AdminOpcode.XSSD_CONFIGURE, replication_policy=policy_name
            )

        return self.engine.process(proc(), name="set-policy")

    def start_secondary_apply(self, server_name, database):
        """Run the hot-standby loop: x_pread shipped pages, apply records.

        This is step (3) of Fig. 1 (right): the remote database updates
        its own memory from the log stream the devices replicated.
        Returns the loop process; stop it with ``.stop()`` on the handle.
        """
        server = self.servers[server_name]
        loop = SecondaryApplyLoop(self.engine, server, database)
        loop.start()
        return loop

    def promote(self, new_primary_name):
        """Fail over: make ``new_primary_name`` the primary for the rest.

        The paper leaves data transfer during promotion to the database
        (Section 7.1); this helper only flips transport roles, which is
        exactly what the device offers.
        """
        def proc():
            new_primary = self.servers[new_primary_name]
            yield new_primary.device.admin(AdminOpcode.XSSD_SET_PRIMARY)
            for name, server in self.servers.items():
                if name == new_primary_name or server.device.halted:
                    continue
                yield new_primary.device.admin(
                    AdminOpcode.XSSD_ADD_PEER, peer=name
                )
                yield server.device.admin(
                    AdminOpcode.XSSD_SET_SECONDARY, primary=new_primary_name
                )
            old_primary = self.primary_name
            self.primary_name = new_primary_name
            self._membership("promote", new_primary_name,
                             demoted=old_primary)

        return self.engine.process(proc(), name="promote")


class SecondaryApplyLoop:
    """Continuously applies destaged log pages into a standby database."""

    def __init__(self, engine, server, database, poll_ns=50_000.0):
        self.engine = engine
        self.server = server
        self.database = database
        self.poll_ns = poll_ns
        self.transactions_applied = 0
        self._running = False
        self._process = None

    def start(self):
        if self._running:
            raise RuntimeError("apply loop already running")
        self._running = True
        self._process = self.engine.process(self._loop(),
                                            name="secondary-apply")
        return self._process

    def stop(self):
        self._running = False

    def _loop(self):
        log = self.server.log
        while self._running:
            destage = self.server.device.destage
            if destage.durable_tail > log._read_sequence:
                pages = yield log.x_pread(min_bytes=1)
                records = extract_records(pages)
                self.transactions_applied += apply_records(
                    self.database, records
                )
            else:
                yield self.engine.timeout(self.poll_ns)


def _wire(engine, names, config_factory, ntb_bandwidth, ntb_hop_ns):
    servers = [Server(engine, name, config_factory()) for name in names]
    bridges = []
    for left, right in zip(servers, servers[1:]):
        bridges.append(
            NtbBridge(engine, left.ntb_port, right.ntb_port,
                      bandwidth=ntb_bandwidth, hop_latency=ntb_hop_ns)
        )
    for server in servers:
        server.start()
    return servers, bridges


def replicated_pair(engine, config_factory, ntb_bandwidth=7.0,
                    ntb_hop_ns=700.0, policy="eager"):
    """Primary + one secondary over one NTB bridge (the Fig. 13 setup)."""
    servers, bridges = _wire(
        engine, ["primary", "secondary"], config_factory,
        ntb_bandwidth, ntb_hop_ns,
    )
    cluster = Cluster(engine, servers, bridges, primary_name="primary",
                      order=["primary", "secondary"])
    primary, secondary = servers
    primary.right_port = primary.ntb_port
    primary.become_primary(["secondary"])
    secondary.become_secondary("primary")
    cluster.set_replication_policy(policy)
    engine.run(until=engine.now + 100_000.0)  # let the admin commands land
    return cluster


def replicated_chain(engine, config_factory, secondaries=2,
                     ntb_bandwidth=7.0, ntb_hop_ns=700.0, names=None):
    """Primary + N daisy-chained secondaries (chain replication layout).

    Each server mirrors to its right-hand neighbor; acknowledgements (the
    credit counters) relay leftward, so the primary's single shadow
    converges to the *tail's* progress — exactly the counter the chain
    policy exposes.  Middle servers get a second NTB port, as a real
    daisy-chained adapter provides.

    ``names`` overrides the default ``primary``/``secondary-N`` server
    names (head of the list is the primary); the fleet layer uses this
    to run many chains under one engine without name collisions.
    """
    from repro.pcie.ntb import NtbPort

    if names is None:
        names = ["primary"] + [f"secondary-{i}"
                               for i in range(1, secondaries + 1)]
    names = list(names)
    if len(names) < 2:
        raise ValueError("a chain needs a primary and at least one secondary")
    servers = [Server(engine, name, config_factory()) for name in names]
    bridges = []
    for left, right in zip(servers, servers[1:]):
        if left.name == names[0]:
            left_port = left.ntb_port  # primary's main port faces right
        else:
            left_port = NtbPort(engine, f"{left.name}.right")
            left.device.transport.attach_extra_port(left_port)
        bridges.append(
            NtbBridge(engine, left_port, right.ntb_port,
                      bandwidth=ntb_bandwidth, hop_latency=ntb_hop_ns)
        )
        left.right_port = left_port
    for server in servers:
        server.start()
    cluster = Cluster(engine, servers, bridges, primary_name=names[0],
                      order=names)
    # Roles: head is primary, everyone else is secondary; every non-tail
    # server opens a mirror flow toward its right neighbor.
    transports = [server.device.transport for server in servers]
    transports[0].set_primary()
    for index in range(1, len(servers)):
        transports[index].set_secondary(servers[index - 1].name)
    for index, (left, right) in enumerate(zip(servers, servers[1:])):
        transports[index].add_peer(right.name, port=left.right_port)
    cluster.set_replication_policy("chain")
    engine.run(until=engine.now + 100_000.0)
    return cluster
