"""Shard migration and fleet-level rebalancing.

A migration moves one shard between nodes without losing an ack: every
transaction the source acknowledged — before, during, or after the move
— must be durable and in commit order on the destination chain.  The
protocol is the classic live-migration shape:

1. **COPY** — while the shard keeps serving writes on the source, scan
   the source primary's destaged WAL ring, extract the shard's committed
   transactions (table-prefix filter over the node's shared log), and
   replay them in commit-LSN order as fresh transactions on the
   destination — which replicates them down the destination chain
   through the ordinary transport path.  Replay traffic passes the
   destination's admission controller on its own migrator lane, so
   tenant fair-throttle shares hold during the move.
2. **DRAIN** — gate the shard (new transactions park at the door) and
   wait for in-flight ones to finish on the source.
3. **CATCHUP** — replay rounds until the destination's shard state
   equals the source's.  The destage ring retains a bounded window; if
   early WAL was evicted before the copy started, replay alone cannot
   converge — after ``max_stalled_rounds`` fruitless rounds the migrator
   falls back to a direct state top-up (a transactional diff copy).
4. **CUTOVER** — re-point the shard directory at the destination, move
   the admission lane, lift the gate.  Parked writers re-read the owner
   after the gate, so their commits land on the new chain.

``early_cutover=True`` deliberately skips DRAIN and CATCHUP — cutting
over while acked source transactions are still unreplayed.  That is the
seeded ack-ordering bug the ``--fleet`` checker family must catch (see
``repro/check/fleet.py``); it exists only to be found.

:class:`FleetSupervisor` closes the loop: it polls per-node admitted-byte
rates (plus gauge samples when tracing), detects a sustained hot node,
and migrates that node's *coldest* shard to the least-loaded node —
moving the hottest shard would just relocate the hotspot, while shipping
cold colocated tenants away frees capacity under the hot one.
"""

from repro.cluster.fleet import ShardView
from repro.db.log_record import RecordKind
from repro.db.txn import TransactionAborted
from repro.health.errors import DeviceBusy


class StreamScanner:
    """Incremental record extraction over a live destage ring.

    The batch torn-tail rule (:func:`repro.db.recovery.extract_records`)
    needs byte coverage accumulated across *all* pages that carried a
    batch; a batch can straddle scan rounds, so coverage state must
    persist between rounds.  Each :meth:`scan` round reads only pages
    newer than the last round (re-clamped to the ring head after
    evictions) and returns the records that *newly* became durable.
    """

    def __init__(self, device):
        self.device = device
        self._next_sequence = None
        self._covered = {}  # id(batch) -> [batch, bytes seen]
        self._emitted = {}  # id(batch) -> records already returned
        self.pages_read = 0

    def scan(self):
        destage = self.device.destage
        if self._next_sequence is None:
            self._next_sequence = destage.head_sequence
        self._next_sequence = max(self._next_sequence, destage.head_sequence)
        fresh = []
        while self._next_sequence < destage.durable_tail:
            page = yield destage.read_page(self._next_sequence)
            self._next_sequence += 1
            self.pages_read += 1
            for _offset, _nbytes, payload in page.chunks:
                if payload is None:
                    continue
                batch, _cursor, step = payload
                key = id(batch)
                entry = self._covered.get(key)
                if entry is None:
                    entry = self._covered[key] = [batch, 0]
                entry[1] += step
                covered = batch.records_covered_by(entry[1])
                emitted = self._emitted.get(key, 0)
                if len(covered) > emitted:
                    fresh.extend(covered[emitted:])
                    self._emitted[key] = len(covered)
        return fresh


# Historical name; the DR archiver made the scanner a shared surface.
_StreamScanner = StreamScanner


class ShardMigration:
    """One shard's move between fleet nodes; a restartable sim process."""

    PHASES = ("copy", "drain", "catchup", "cutover", "done")

    def __init__(self, fleet, shard, dest, copy_rounds=2,
                 round_wait_ns=150_000.0, max_stalled_rounds=4,
                 early_cutover=False, name=None):
        if dest not in fleet.nodes:
            raise KeyError(f"unknown destination node {dest!r}")
        if fleet.nodes[dest] is shard.node:
            raise ValueError(f"shard {shard.shard_id!r} already on {dest!r}")
        self.fleet = fleet
        self.engine = fleet.engine
        self.shard = shard
        self.source = shard.node
        self.dest = fleet.nodes[dest]
        self.copy_rounds = copy_rounds
        self.round_wait_ns = round_wait_ns
        self.max_stalled_rounds = max_stalled_rounds
        self.early_cutover = early_cutover
        self.name = name or f"migrate:{shard.shard_id}"
        self.writer_id = f"{shard.shard_id}:migrator"
        self.phase = None
        self.events = []  # [{time_ns, phase | action, detail...}]
        self.replayed_txns = 0
        self.topped_up_keys = 0
        self.archive_catchup_txns = 0
        self.busy_backoffs = 0
        self._replayed_ids = set()
        self._txn_buffer = {}  # source txn_id -> [data records]
        self._process = None
        self.done = False
        self.error = None

    def start(self):
        if self._process is not None:
            raise RuntimeError("migration already started")
        self._process = self.engine.process(self._run(), name=self.name)
        return self._process

    # -- bookkeeping ---------------------------------------------------------------

    def _mark(self, phase, **detail):
        self.phase = phase
        self.events.append(
            {"time_ns": self.engine.now, "phase": phase, **detail}
        )
        tracer = self.engine.tracer
        if tracer.enabled:
            tracer.instant(self.fleet.name, f"migration-{phase}",
                           shard=self.shard.shard_id,
                           source=self.source.name, dest=self.dest.name,
                           **detail)

    def phase_times(self):
        """Phase -> entry time, for crash-candidate enumeration."""
        times = {}
        for event in self.events:
            times.setdefault(event["phase"], event["time_ns"])
        return times

    # -- the protocol ---------------------------------------------------------------

    def _run(self):
        shard = self.shard
        dest_view = ShardView(self.dest.database, shard.prefix)
        if not dest_view.tables() and shard.bootstrap is not None:
            # Deterministic base state (schema + populated rows) is
            # rebuilt, not shipped: only transactional deltas ride the WAL.
            shard.bootstrap(dest_view)
        self.dest.admission.register_writer(self.writer_id)
        scanner = StreamScanner(self.source.cluster.primary.device)
        try:
            self._mark("copy")
            for _round in range(self.copy_rounds):
                yield from self._replay_round(scanner, dest_view)
                yield self.engine.timeout(self.round_wait_ns)
            if self.early_cutover:
                # BUG (seeded, for the checker): cut over with acked
                # source transactions still unreplayed.
                shard.gate()
            else:
                self._mark("drain")
                shard.gate()
                yield shard.wait_drained()
                self._mark("catchup")
                stalled = 0
                while True:
                    fresh = yield from self._replay_round(scanner, dest_view)
                    if shard.view.state() == dest_view.state():
                        break
                    stalled = 0 if fresh else stalled + 1
                    if stalled >= self.max_stalled_rounds:
                        # The ring evicted early WAL.  A DR-enabled
                        # source still has it archived: replay from the
                        # grid before resorting to a state top-up.
                        yield from self._archive_catchup(dest_view)
                        if shard.view.state() != dest_view.state():
                            yield from self._top_up(dest_view)
                        break
                    yield self.engine.timeout(self.round_wait_ns)
            self._mark("cutover")
            source_name = self.source.name
            shard.attach(self.dest)
            self.fleet.note_move(
                shard, source_name, self.dest.name,
                detail={"replayed_txns": self.replayed_txns,
                        "topped_up_keys": self.topped_up_keys},
            )
            shard.ungate()
            self._mark("done", replayed=self.replayed_txns,
                       topped_up=self.topped_up_keys)
            self.done = True
        except BaseException as exc:  # surface crashes to whoever joins
            self.error = exc
            shard.ungate()
            raise
        finally:
            self.dest.admission.unregister_writer(self.writer_id)

    def _replay_round(self, scanner, dest_view):
        """Scan new WAL, replay this shard's newly committed txns; returns
        how many transactions were replayed."""
        records = yield from scanner.scan()
        commits = []
        for record in records:
            if record.kind is RecordKind.COMMIT:
                commits.append(record)
            elif record.is_data():
                self._txn_buffer.setdefault(record.txn_id, []).append(record)
        commits.sort(key=lambda record: record.lsn)
        replayed = 0
        prefix = self.shard.prefix
        for commit in commits:
            txn_id = commit.txn_id
            data = self._txn_buffer.pop(txn_id, [])
            mine = [r for r in data if r.table.startswith(prefix)]
            if not mine or txn_id in self._replayed_ids:
                continue
            yield from self._replay_txn(dest_view, mine)
            self._replayed_ids.add(txn_id)
            replayed += 1
            self.replayed_txns += 1
        return replayed

    def _replay_txn(self, dest_view, records):
        writes = {}
        for record in sorted(records, key=lambda r: r.lsn):
            value = None if record.kind is RecordKind.DELETE else record.value
            writes[(record.table, record.key)] = value
        est = max(1, sum(record.nbytes for record in records))

        def body(txn):
            for (table, key), value in writes.items():
                txn.write(table, key, value)

        yield from self._commit_on_dest(dest_view, body, est)

    def _commit_on_dest(self, dest_view, body, est):
        """Commit through the destination's migrator admission lane."""
        # A replayed transaction larger than the ceiling could never be
        # admitted; clamp so the controller sees a satisfiable request
        # (the bytes still hit the device — this only shapes pacing).
        est = min(est, self.dest.admission.max_outstanding_bytes // 2 or 1)
        while True:
            try:
                self.dest.admission.admit(self.writer_id, est)
            except DeviceBusy as busy:
                self.busy_backoffs += 1
                yield self.engine.timeout(busy.retry_after_ns)
                continue
            try:
                # The raw database, not the shard view: replayed records
                # already carry prefixed table names.
                txn = dest_view.database.begin()
                body(txn)
                yield txn.commit()
                return
            except TransactionAborted:
                continue  # only self-conflicts possible; retry is safe
            finally:
                self.dest.admission.release(self.writer_id, est)

    def _archive_catchup(self, dest_view):
        """Replay the shard's archived transactions the ring no longer holds.

        Fetches the source archiver's sealed segments from the grid
        (timed transfers — the grid's latency is the cost of this path)
        and replays this shard's not-yet-replayed committed transactions
        in commit-LSN order.  Unlike a state top-up, this preserves the
        full commit sequence on the destination log.  Any grid failure
        (partition, missing object) just returns — the caller falls back
        to the top-up.  Returns the number of transactions replayed.
        """
        archiver = getattr(self.source, "archiver", None)
        if archiver is None:
            return 0
        from repro.dr.archive import record_from_dict
        from repro.dr.grid import GridUnavailable
        from repro.db.log_record import RecordKind as _Kind

        records = []
        try:
            for entry in list(archiver._segment_entries):
                stored = yield from archiver.grid.get(entry["key"])
                records.extend(
                    record_from_dict(data)
                    for data in stored.payload.get("records", [])
                )
        except (GridUnavailable, KeyError):
            self._mark("archive-catchup", replayed=0, aborted=True)
            return 0
        by_txn = {}
        commits = []
        for record in records:
            if record.kind is _Kind.COMMIT:
                commits.append(record)
            elif record.is_data():
                by_txn.setdefault(record.txn_id, []).append(record)
        commits.sort(key=lambda record: record.lsn)
        prefix = self.shard.prefix
        replayed = 0
        for commit in commits:
            mine = [r for r in by_txn.get(commit.txn_id, ())
                    if r.table.startswith(prefix)]
            if not mine or commit.txn_id in self._replayed_ids:
                continue
            yield from self._replay_txn(dest_view, mine)
            self._replayed_ids.add(commit.txn_id)
            replayed += 1
            self.replayed_txns += 1
            self.archive_catchup_txns += 1
        self._mark("archive-catchup", replayed=replayed)
        return replayed

    def _top_up(self, dest_view):
        """Transactional diff copy for state the WAL ring no longer holds."""
        source_state = self.shard.view.state()
        dest_state = dest_view.state()
        diff = []  # (prefixed table, key, value-or-None)
        prefix = self.shard.prefix
        for table_name in sorted(source_state):
            source_rows = source_state[table_name]
            dest_rows = dest_state.get(table_name, {})
            for key in source_rows:
                if dest_rows.get(key) != source_rows[key]:
                    diff.append((prefix + table_name, key, source_rows[key]))
            for key in dest_rows:
                if key not in source_rows:
                    diff.append((prefix + table_name, key, None))
        self._mark("top-up", keys=len(diff))
        batch = 64  # keep each top-up transaction a bounded WAL append
        for start in range(0, len(diff), batch):
            chunk = diff[start:start + batch]

            def body(txn, chunk=chunk):
                for table, key, value in chunk:
                    txn.write(table, key, value)

            est = max(1, 64 * len(chunk))
            yield from self._commit_on_dest(dest_view, body, est)
            self.topped_up_keys += len(chunk)


class FleetSupervisor:
    """The rebalancer: watches node load, moves shards off hot nodes."""

    def __init__(self, fleet, poll_ns=400_000.0, hot_ratio=2.0,
                 dwell_polls=3, cooldown_ns=2_000_000.0,
                 converge_ratio=1.5, ewma_alpha=0.4, sample_gauges=True,
                 migration_kw=None, name=None):
        if hot_ratio <= 1.0:
            raise ValueError("hot ratio must exceed 1.0")
        self.fleet = fleet
        self.engine = fleet.engine
        self.poll_ns = poll_ns
        self.hot_ratio = hot_ratio
        self.dwell_polls = dwell_polls
        self.cooldown_ns = cooldown_ns
        self.converge_ratio = converge_ratio
        self.ewma_alpha = ewma_alpha
        self.sample_gauges = sample_gauges
        self.migration_kw = dict(migration_kw or {})
        self.name = name or f"{fleet.name}.supervisor"
        self.rates = {}  # node -> EWMA bytes/poll
        self._shard_totals = {}  # shard_id -> last seen bytes_admitted
        self.shard_rates = {}  # shard_id -> EWMA bytes/poll
        self.events = []
        self.stalls = []  # typed hot-but-stuck records, chronological
        self.migrations = []
        self.converged_at_ns = None
        self._hot_streak = {}
        self._last_migration_end = None
        self._samplers = {}
        self._running = False
        self._process = None

    # -- lifecycle ------------------------------------------------------------------

    def start(self):
        if self._running:
            raise RuntimeError("fleet supervisor already running")
        self._running = True
        if self.sample_gauges and self.engine.tracer.enabled:
            from repro.obs import GaugeSampler

            for name, node in self.fleet.nodes.items():
                self._samplers[name] = GaugeSampler(
                    self.engine.tracer, node.device,
                    track=f"{name}.gauges",
                )
        self._process = self.engine.process(self._loop(), name=self.name)
        return self._process

    def stop(self):
        self._running = False

    def _record(self, action, site, **detail):
        self.events.append({
            "time_ns": self.engine.now, "action": action, "site": site,
            "detail": detail,
        })
        tracer = self.engine.tracer
        if tracer.enabled:
            tracer.instant(self.name, action, site=str(site), **detail)

    # -- the control loop -------------------------------------------------------------

    def _loop(self):
        while self._running:
            yield self.engine.timeout(self.poll_ns)
            if not self._running:
                return
            self._observe()
            self._maybe_rebalance()

    def _observe(self):
        alpha = self.ewma_alpha
        for name, node in self.fleet.nodes.items():
            delta = node.load_delta()
            previous = self.rates.get(name, float(delta))
            self.rates[name] = (1 - alpha) * previous + alpha * delta
            sampler = self._samplers.get(name)
            if sampler is not None:
                sampler.sample()
        for shard_id, shard in self.fleet.shards.items():
            total = shard.bytes_admitted
            delta = total - self._shard_totals.get(shard_id, 0)
            self._shard_totals[shard_id] = total
            previous = self.shard_rates.get(shard_id, float(delta))
            self.shard_rates[shard_id] = (1 - alpha) * previous + alpha * delta
        self._track_convergence()

    def imbalance(self):
        """max/mean node byte-rate; 1.0 is perfectly level."""
        if not self.rates:
            return 1.0
        values = list(self.rates.values())
        mean = sum(values) / len(values)
        if mean <= 0:
            return 1.0
        return max(values) / mean

    def _track_convergence(self):
        if not self.migrations:
            return
        if self.converged_at_ns is not None:
            return
        last = self.migrations[-1]
        if not last.done:
            return
        if self.imbalance() <= self.converge_ratio:
            self.converged_at_ns = self.engine.now
            self._record("converged", "fleet",
                         imbalance=round(self.imbalance(), 3))

    def _maybe_rebalance(self):
        if any(not m.done and m.error is None for m in self.migrations):
            return  # one migration at a time
        now = self.engine.now
        if (self._last_migration_end is not None
                and now - self._last_migration_end < self.cooldown_ns):
            return
        if len(self.fleet.nodes) < 2:
            return
        values = self.rates
        if not values:
            return
        mean = sum(values.values()) / len(values)
        if mean <= 0:
            return
        hot_name = max(values, key=lambda n: values[n])
        if values[hot_name] < self.hot_ratio * mean:
            self._hot_streak.pop(hot_name, None)
            return
        streak = self._hot_streak.get(hot_name, 0) + 1
        self._hot_streak[hot_name] = streak
        if streak < self.dwell_polls:
            return
        self._hot_streak.pop(hot_name, None)
        hot_node = self.fleet.nodes[hot_name]
        movable = [s for s in hot_node.shards.values() if not s.gated]
        if len(movable) < 2:
            # A lone shard *is* the hotspot; moving it just moves the
            # problem. Nothing to offload — record a typed stall so the
            # SLO controller (and tests) can see that rebalancing is
            # out of moves and shift to shedding instead.
            self._record_stall(hot_name, movable, values, mean)
            return
        # Offload the coldest colocated shard to the coldest node.
        victim = min(
            movable, key=lambda s: (self.shard_rates.get(s.shard_id, 0.0),
                                    s.shard_id),
        )
        cold_name = min(
            (n for n in self.fleet.nodes if n != hot_name),
            key=lambda n: (values.get(n, 0.0), n),
        )
        self._record("rebalance", hot_name, shard=victim.shard_id,
                     dest=cold_name,
                     hot_rate=round(values[hot_name], 1),
                     mean_rate=round(mean, 1))
        migration = self.fleet.migrate(victim.shard_id, cold_name,
                                       **self.migration_kw)
        self.converged_at_ns = None
        self.migrations.append(migration)
        self.engine.process(self._watch(migration), name=f"{self.name}-watch")

    def _record_stall(self, hot_name, movable, rates, mean_rate):
        """A node is hot but has no shard worth moving.

        Beyond the shared event log, each stall is kept as a typed
        record in ``stalls`` — plain data with the evidence a controller
        needs (how hot, relative to what, with how many movable shards)
        so observers never have to parse detail strings or the trace.
        """
        stall = {
            "time_ns": self.engine.now,
            "site": hot_name,
            "movable_shards": len(movable),
            "hot_rate": round(rates[hot_name], 1),
            "mean_rate": round(mean_rate, 1),
            "imbalance": round(self.imbalance(), 3),
        }
        self.stalls.append(stall)
        self._record("hot-but-stuck", hot_name,
                     shards=len(movable),
                     hot_rate=stall["hot_rate"],
                     mean_rate=stall["mean_rate"],
                     imbalance=stall["imbalance"])
        return stall

    def stalls_for(self, site):
        return [stall for stall in self.stalls if stall["site"] == site]

    def _watch(self, migration):
        try:
            yield migration._process
        except BaseException as exc:
            self._record("migration-failed", migration.shard.shard_id,
                         error=type(exc).__name__)
        else:
            self._record("migration-finished", migration.shard.shard_id,
                         dest=migration.dest.name,
                         replayed=migration.replayed_txns)
        self._last_migration_end = self.engine.now
