"""Shard placement: deciding which fleet device owns which log stream.

Two policies, both deterministic (the hash is keyed `blake2b`, never
Python's salted ``hash``) and both *stable*: when a device joins, the
only shards that move are the ones the new device takes over; when a
device leaves, the only shards that move are the ones it owned.  That
minimal-move property is what makes membership changes cheap — every
move is a shard migration (see :mod:`repro.cluster.rebalance`), so the
placement layer must never reshuffle bystanders.

* :class:`HashRingPlacement` — classic consistent hashing with virtual
  nodes: each device projects ``vnodes`` points onto a 64-bit ring and a
  shard belongs to the first device point at or after its own hash.
* :class:`RangePlacement` — contiguous key-range ownership in the
  HBase/Bigtable style: the hash space is covered by one range per
  device; a join splits the largest range in half and hands the upper
  half to the newcomer, a leave merges each of the leaver's ranges into
  its left neighbor.

Both expose the same four-method surface (``place`` / ``add_device`` /
``remove_device`` / ``devices``), so the fleet takes either.
"""

import bisect
import hashlib

HASH_SPACE = 1 << 64


def stable_hash(*parts):
    """A deterministic 64-bit hash of the given parts.

    Python's builtin ``hash`` is salted per process; placement must map
    the same shard to the same device across runs and across processes
    (the parallel bench sweeps fork workers), so we key blake2b instead.
    """
    digest = hashlib.blake2b(
        "\x1f".join(str(part) for part in parts).encode("utf-8"),
        digest_size=8,
    ).digest()
    return int.from_bytes(digest, "big")


class PlacementError(ValueError):
    """Raised for invalid membership operations (dup add, unknown remove)."""


class HashRingPlacement:
    """Consistent hashing with virtual nodes over a 64-bit ring."""

    def __init__(self, devices=(), vnodes=128):
        if vnodes < 1:
            raise ValueError("need at least one virtual node per device")
        self.vnodes = vnodes
        self._devices = []
        self._points = []  # sorted ring positions
        self._owner_at = {}  # ring position -> device
        for device in devices:
            self.add_device(device)

    def devices(self):
        return list(self._devices)

    def add_device(self, device):
        if device in self._devices:
            raise PlacementError(f"device {device!r} already placed")
        self._devices.append(device)
        for replica in range(self.vnodes):
            point = stable_hash("ring", device, replica)
            # A collision would silently shadow another device's point;
            # nudge deterministically until the slot is free.
            while point in self._owner_at:
                point = (point + 1) % HASH_SPACE
            self._owner_at[point] = device
            bisect.insort(self._points, point)
        return device

    def remove_device(self, device):
        if device not in self._devices:
            raise PlacementError(f"device {device!r} is not placed")
        self._devices.remove(device)
        stale = [p for p, owner in self._owner_at.items() if owner == device]
        for point in stale:
            del self._owner_at[point]
            index = bisect.bisect_left(self._points, point)
            del self._points[index]
        return device

    def place(self, shard_id):
        """The device owning ``shard_id`` (first ring point at/after it)."""
        if not self._points:
            raise PlacementError("no devices to place onto")
        point = stable_hash("shard", shard_id) % HASH_SPACE
        index = bisect.bisect_left(self._points, point)
        if index == len(self._points):
            index = 0  # wrap around the ring
        return self._owner_at[self._points[index]]

    def assignment(self, shard_ids):
        """Bulk mapping shard -> device (a convenience for tests/fleet)."""
        return {shard_id: self.place(shard_id) for shard_id in shard_ids}


class RangePlacement:
    """Contiguous range ownership: one or more hash ranges per device.

    Ranges are half-open ``[start, end)`` slices of the 64-bit hash
    space, kept sorted and always covering the whole space.  Membership
    changes touch exactly one boundary region:

    * ``add_device`` splits the *largest* range in half, assigning the
      upper half to the newcomer — only shards hashing into that upper
      half move, and they all move to the new device;
    * ``remove_device`` merges each of the leaver's ranges into the range
      to its left (wrapping), so only the leaver's shards move.
    """

    def __init__(self, devices=()):
        self._ranges = []  # sorted [(start, end, device)]
        self._devices = []
        for device in devices:
            self.add_device(device)

    def devices(self):
        return list(self._devices)

    def ranges(self):
        return list(self._ranges)

    def add_device(self, device):
        if device in self._devices:
            raise PlacementError(f"device {device!r} already placed")
        self._devices.append(device)
        if not self._ranges:
            self._ranges = [(0, HASH_SPACE, device)]
            return device
        # Split the largest range; ties break on lowest start so the
        # choice is deterministic.
        largest = max(self._ranges, key=lambda r: (r[1] - r[0], -r[0]))
        index = self._ranges.index(largest)
        start, end, owner = largest
        middle = start + (end - start) // 2
        self._ranges[index:index + 1] = [
            (start, middle, owner),
            (middle, end, device),
        ]
        return device

    def remove_device(self, device):
        if device not in self._devices:
            raise PlacementError(f"device {device!r} is not placed")
        if len(self._devices) == 1:
            raise PlacementError("cannot remove the last device")
        self._devices.remove(device)
        merged = []
        for start, end, owner in self._ranges:
            if owner != device and merged and merged[-1][2] != device:
                previous = merged[-1]
                if previous[1] == start and previous[2] == owner:
                    merged[-1] = (previous[0], end, owner)
                    continue
            merged.append((start, end, owner))
        # Fold each of the leaver's ranges into its left neighbor (the
        # first range wraps onto the last surviving one).
        result = []
        for entry in merged:
            start, end, owner = entry
            if owner != device:
                result.append(entry)
            elif result:
                p_start, _p_end, p_owner = result[-1]
                result[-1] = (p_start, end, p_owner)
            else:
                # Leading range: extend the eventual last survivor
                # leftward by queueing a wrap marker.
                result.append((start, end, None))
        if result and result[0][2] is None:
            start, end, _none = result.pop(0)
            if not result:
                raise PlacementError("cannot remove the last device")
            # Wrap: the last range absorbs the leading orphan.
            l_start, l_end, l_owner = result[-1]
            if l_end == HASH_SPACE and start == 0:
                result[-1] = (l_start, l_end, l_owner)
                result.insert(0, (start, end, l_owner))
            else:
                result.insert(0, (start, end, result[-1][2]))
        self._ranges = self._normalize(result)
        return device

    @staticmethod
    def _normalize(ranges):
        """Coalesce adjacent ranges with one owner; keep sorted order."""
        ranges = sorted(ranges)
        out = []
        for start, end, owner in ranges:
            if out and out[-1][2] == owner and out[-1][1] == start:
                out[-1] = (out[-1][0], end, owner)
            else:
                out.append((start, end, owner))
        return out

    def place(self, shard_id):
        if not self._ranges:
            raise PlacementError("no devices to place onto")
        point = stable_hash("shard", shard_id) % HASH_SPACE
        low, high = 0, len(self._ranges) - 1
        while low < high:
            mid = (low + high) // 2
            if self._ranges[mid][1] <= point:
                low = mid + 1
            else:
                high = mid
        start, end, owner = self._ranges[low]
        assert start <= point < end, "range table does not cover the space"
        return owner

    def assignment(self, shard_ids):
        return {shard_id: self.place(shard_id) for shard_id in shard_ids}
