"""One server: a Villars device plus its host-side software."""

from repro.core.crash import PowerLossInjector
from repro.core.device import XssdDevice
from repro.db.engine import Database
from repro.host.api import XssdLogFile
from repro.pcie.ntb import NtbPort
from repro.sim.units import KIB


class Server:
    """A host with one X-SSD device and the drop-in log API.

    ``with_database()`` attaches an in-memory database whose WAL goes to
    the device's fast side.  Secondaries typically skip the database and
    run an apply loop over ``x_pread`` instead (see
    :mod:`repro.cluster.topology`).
    """

    def __init__(self, engine, name, villars_config):
        self.engine = engine
        self.name = name
        self.device = XssdDevice(engine, villars_config, name=f"{name}.xssd")
        # The transport identifies itself by the *server* name in counter
        # updates; peers register that same name via XSSD_ADD_PEER.
        self.device.transport.name = name
        self.ntb_port = NtbPort(engine, name)
        self.device.transport.attach_ntb(self.ntb_port)
        self.log = XssdLogFile(self.device)
        self.database = None
        self.power = PowerLossInjector(engine, self.device)
        self._started = False

    def start(self):
        if self._started:
            raise RuntimeError(f"server {self.name} already started")
        self._started = True
        self.device.start()
        return self

    def with_database(self, group_commit_bytes=16 * KIB,
                      group_commit_timeout_ns=100_000.0):
        if self.database is not None:
            raise RuntimeError(f"server {self.name} already has a database")
        self.database = Database(
            self.engine, self.log,
            group_commit_bytes=group_commit_bytes,
            group_commit_timeout_ns=group_commit_timeout_ns,
            name=f"{self.name}.db",
        )
        return self.database

    # -- role control through the admin path --------------------------------------

    def become_primary(self, peers):
        """Configure this server's device as replication primary."""
        from repro.ssd.nvme import AdminOpcode

        def proc():
            yield self.device.admin(AdminOpcode.XSSD_SET_PRIMARY)
            for peer in peers:
                yield self.device.admin(AdminOpcode.XSSD_ADD_PEER, peer=peer)

        return self.engine.process(proc(), name=f"{self.name}-to-primary")

    def become_secondary(self, primary_name):
        from repro.ssd.nvme import AdminOpcode

        def proc():
            yield self.device.admin(
                AdminOpcode.XSSD_SET_SECONDARY, primary=primary_name
            )

        return self.engine.process(proc(), name=f"{self.name}-to-secondary")

    def become_standalone(self):
        from repro.ssd.nvme import AdminOpcode

        def proc():
            yield self.device.admin(AdminOpcode.XSSD_SET_STANDALONE)

        return self.engine.process(proc(), name=f"{self.name}-to-standalone")

    def crash(self):
        """Sudden power loss on this server; returns the crash report."""
        return self.power.power_loss()

    def fail_supercap(self):
        """Break the reserve-energy path: the next crash loses the queue."""
        self.power.fail_supercap()
        return self

    def rejoin(self):
        """Reboot a crashed server and re-register with its primary.

        The device restarts its loops over surviving state; if the
        transport was a secondary, re-asserting the role restarts the
        counter reporter the crash killed.  Re-shipping the log range the
        server missed is the cluster's job (see ``Cluster.resync``).
        """
        from repro.core.transport import TransportRole

        if not self.device.halted:
            raise RuntimeError(f"server {self.name} is not down")
        self.device.restart()
        transport = self.device.transport
        if (transport.role is TransportRole.SECONDARY
                and transport._primary_name is not None):
            transport.set_secondary(transport._primary_name)
        return self
