"""The fleet: N X-SSD replication chains under one sim engine.

One :class:`FleetNode` is what a single-chain experiment calls "the
cluster": a primary with a daisy-chained secondary set, one shared
:class:`~repro.db.engine.Database` on the primary (one WAL, one LSN
space, group commit across every shard on the node), a per-node
:class:`~repro.health.admission.AdmissionController`, and optionally a
:class:`~repro.health.supervisor.ChainSupervisor` healing the chain.

A :class:`Shard` is one tenant log stream placed onto a node.  Shards
namespace their tables inside the node database (``"<shard>.<table>"``
via :class:`ShardView`), so a node hosts many tenants in one WAL while
recovery, replication, and the checker keep working unchanged — a
shard's records are simply the node's records whose table name carries
the shard prefix.  Every shard commit passes through the node's
admission controller under the shard's own fair-throttle lane, which is
what keeps tenants isolated while a migration's replay traffic competes
on its own lane (see :mod:`repro.cluster.rebalance`).

:class:`Fleet` holds the nodes, a placement policy
(:mod:`repro.cluster.placement`), and the shard directory.  Placement
decides where a shard *starts*; the directory records where it actually
*is* (migrations move shards without consulting placement).
"""

from repro.cluster.placement import HashRingPlacement
from repro.cluster.topology import replicated_chain
from repro.db.txn import TransactionAborted
from repro.health.admission import AdmissionController
from repro.health.errors import DeviceBusy
from repro.sim.units import KIB


class _PrefixedTransaction:
    """A transaction whose table names are rewritten into a shard's space."""

    __slots__ = ("_txn", "_prefix")

    def __init__(self, txn, prefix):
        self._txn = txn
        self._prefix = prefix

    @property
    def txn_id(self):
        return self._txn.txn_id

    @property
    def state(self):
        return self._txn.state

    def read(self, table_name, key):
        return self._txn.read(self._prefix + table_name, key)

    def write(self, table_name, key, value):
        return self._txn.write(self._prefix + table_name, key, value)

    def commit(self):
        return self._txn.commit()

    def commit_async(self):
        return self._txn.commit_async()

    def abort(self):
        return self._txn.abort()


class ShardView:
    """A shard-scoped window onto a node's shared database.

    Presents the plain :class:`~repro.db.engine.Database` surface the
    workloads expect (``create_table`` / ``table`` / ``begin``) while
    rewriting every table name to ``"<shard>.<name>"``.  TPC-C and YCSB
    tenants run against views without knowing they share a node.
    """

    def __init__(self, database, prefix):
        self.database = database
        self.prefix = prefix

    @property
    def engine(self):
        return self.database.engine

    @property
    def stats(self):
        return self.database.stats

    @property
    def log_manager(self):
        return self.database.log_manager

    def create_table(self, name):
        return self.database.create_table(self.prefix + name)

    def table(self, name):
        return self.database.table(self.prefix + name)

    def tables(self):
        """The shard's tables, keyed by their *bare* (unprefixed) names."""
        return {
            name[len(self.prefix):]: table
            for name, table in self.database.tables().items()
            if name.startswith(self.prefix)
        }

    def begin(self):
        return _PrefixedTransaction(self.database.begin(), self.prefix)

    def state(self):
        """Canonical committed rows per table (for migration comparison)."""
        return {
            name: dict(table.scan())
            for name, table in sorted(self.tables().items())
        }

    def checksum(self):
        total = 0
        for table in self.tables().values():
            total ^= table.checksum()
        return total


class Shard:
    """One tenant log stream: a view plus its admission lane and gate."""

    def __init__(self, fleet, shard_id, bootstrap=None,
                 est_txn_bytes=2 * KIB):
        self.fleet = fleet
        self.shard_id = shard_id
        self.prefix = f"{shard_id}."
        self.writer_id = f"shard:{shard_id}"
        self.bootstrap = bootstrap  # callable(view): schema + base rows
        self.est_txn_bytes = est_txn_bytes
        self.node = None
        self.view = None
        self.inflight = 0
        self.commits = 0
        self.busy_rejections = 0
        self.bytes_admitted = 0
        self._gate = None  # event writers wait on while migration drains
        self._drained = None

    # -- placement / migration plumbing -------------------------------------------

    def attach(self, node, bootstrap_if_missing=True):
        """Bind this shard to ``node`` (initial placement or cutover)."""
        if self.node is not None:
            self.node.admission.unregister_writer(self.writer_id)
            self.node.shards.pop(self.shard_id, None)
        self.node = node
        self.view = ShardView(node.database, self.prefix)
        node.admission.register_writer(self.writer_id)
        node.shards[self.shard_id] = self
        if bootstrap_if_missing and not self.view.tables():
            if self.bootstrap is not None:
                self.bootstrap(self.view)
        return self

    def gate(self):
        """Hold new transactions at the door (migration drain/cutover)."""
        if self._gate is None:
            self._gate = self.fleet.engine.event()
        return self._gate

    def ungate(self):
        gate, self._gate = self._gate, None
        if gate is not None and not gate.triggered:
            gate.succeed()

    @property
    def gated(self):
        return self._gate is not None

    def wait_drained(self):
        """Event firing once no admitted transaction is in flight."""
        event = self.fleet.engine.event()
        if self.inflight == 0:
            event.succeed()
        else:
            self._drained = event
        return event

    def _note_done(self):
        if self.inflight == 0 and self._drained is not None:
            drained, self._drained = self._drained, None
            if not drained.triggered:
                drained.succeed()

    # -- the write path ------------------------------------------------------------

    def run_body(self, body):
        """Run one transaction body against this shard (a sim process).

        Waits out any migration gate, passes the node's admission
        controller on this shard's lane (:class:`DeviceBusy` propagates
        to the caller for backoff), executes ``body(txn)``, and commits.
        Returns the commit LSN.  ``TransactionAborted`` propagates after
        the admission slot is released.
        """
        while self._gate is not None:
            yield self._gate
        # Bind *after* the gate: a cutover may have moved us while we
        # waited, and the commit must land on the new owner.
        node = self.node
        est = self.est_txn_bytes
        try:
            node.admission.admit(self.writer_id, est)
        except DeviceBusy:
            self.busy_rejections += 1
            raise
        self.inflight += 1
        try:
            txn = self.view.begin()
            body(txn)
            lsn = yield txn.commit()
        finally:
            self.inflight -= 1
            node.admission.release(self.writer_id, est)
            self._note_done()
        self.commits += 1
        self.bytes_admitted += est
        return lsn

    def commit_writes(self, writes, table="kv"):
        """Commit a batch of ``(key, value)`` pairs (the checker's path)."""
        def body(txn):
            for key, value in writes:
                txn.write(table, key, value)

        lsn = yield from self.run_body(body)
        return lsn


def kv_bootstrap(view):
    """The minimal shard schema: one ``kv`` table (checker + tests)."""
    view.create_table("kv")


class FleetNode:
    """One replication chain, its shared database, and its control plane."""

    def __init__(self, fleet, name, config_factory, replicas=1,
                 group_commit_bytes=2 * KIB, group_commit_timeout_ns=20_000.0,
                 max_inflight_flushes=4, admission_bytes=None,
                 supervise=False, supervisor_kw=None,
                 ntb_bandwidth=7.0, ntb_hop_ns=700.0):
        if replicas < 1:
            raise ValueError("a fleet node needs at least one secondary")
        self.fleet = fleet
        self.engine = fleet.engine
        self.name = name
        chain_names = [f"{name}.primary"] + [
            f"{name}.secondary-{i}" for i in range(1, replicas + 1)
        ]
        self.cluster = replicated_chain(
            self.engine, config_factory, names=chain_names,
            ntb_bandwidth=ntb_bandwidth, ntb_hop_ns=ntb_hop_ns,
        )
        self.database = self.cluster.primary.with_database(
            group_commit_bytes=group_commit_bytes,
            group_commit_timeout_ns=group_commit_timeout_ns,
        )
        self.database.log_manager.max_inflight_flushes = max_inflight_flushes
        primary_device = self.cluster.primary.device
        self.admission = AdmissionController(
            primary_device,
            max_outstanding_bytes=admission_bytes,
            name=f"{name}.admission",
        )
        self.supervisor = None
        if supervise:
            from repro.health.supervisor import ChainSupervisor

            self.supervisor = ChainSupervisor(
                self.engine, self.cluster, admission=self.admission,
                name=f"{name}.supervisor", **(supervisor_kw or {}),
            )
            self.supervisor.start()
        self.shards = {}  # shard_id -> Shard currently owned here
        self.archiver = None  # set by Fleet.enable_dr
        self._last_admitted_bytes = 0

    @property
    def primary(self):
        return self.cluster.primary

    @property
    def device(self):
        return self.cluster.primary.device

    def load_delta(self):
        """Admitted bytes since the last call (the supervisor's signal)."""
        total = self.admission.admitted_bytes
        delta = total - self._last_admitted_bytes
        self._last_admitted_bytes = total
        return delta

    def stop(self):
        if self.supervisor is not None:
            self.supervisor.stop()
        if self.archiver is not None:
            self.archiver.stop()
        self.database.log_manager.stop()


class Fleet:
    """N nodes, a placement policy, and the shard directory."""

    def __init__(self, engine, config_factory, placement=None, replicas=1,
                 name="fleet", **node_kw):
        self.engine = engine
        self.config_factory = config_factory
        self.placement = placement or HashRingPlacement()
        self.replicas = replicas
        self.name = name
        self.node_kw = node_kw
        self.nodes = {}  # name -> FleetNode
        self.shards = {}  # shard_id -> Shard
        self.moves = []  # completed migrations: plain dict records
        self.grid = None  # remote archive grid, set by enable_dr
        self.slo = None  # SloController, set by enable_slo

    # -- membership ----------------------------------------------------------------

    def add_node(self, name, **overrides):
        if name in self.nodes:
            raise ValueError(f"node {name!r} already in the fleet")
        kw = dict(self.node_kw)
        kw.update(overrides)
        node = FleetNode(self, name, self.config_factory,
                         replicas=self.replicas, **kw)
        self.nodes[name] = node
        self.placement.add_device(name)
        self._instant("node-join", name)
        return node

    def add_nodes(self, count, prefix="node"):
        return [self.add_node(f"{prefix}{i}") for i in range(count)]

    # -- shards --------------------------------------------------------------------

    def create_shard(self, shard_id, node=None, bootstrap=kv_bootstrap,
                     est_txn_bytes=2 * KIB):
        """Place a new shard (explicit ``node`` overrides the policy)."""
        if shard_id in self.shards:
            raise ValueError(f"shard {shard_id!r} already exists")
        owner = node or self.placement.place(shard_id)
        shard = Shard(self, shard_id, bootstrap=bootstrap,
                      est_txn_bytes=est_txn_bytes)
        shard.attach(self.nodes[owner])
        self.shards[shard_id] = shard
        self._instant("shard-place", shard_id, node=owner)
        return shard

    def enable_dr(self, grid, **archiver_kw):
        """Attach one WAL archiver per node, shipping to ``grid``.

        Call after :meth:`add_nodes`: each existing node gets an
        :class:`~repro.dr.archive.Archiver` tailing its primary's
        destage ring (nodes added later are not auto-covered).
        ``archiver_kw`` passes through — ``segment_bytes``, ``poll_ns``,
        ``snapshot_every_ns``, ``drop_segment_seqs`` (the seeded bug).
        Returns the archivers, started, in node-name order.
        """
        from repro.dr.archive import Archiver

        self.grid = grid
        archivers = []
        for name, node in sorted(self.nodes.items()):
            if node.archiver is not None:
                raise RuntimeError(f"node {name!r} already has an archiver")
            node.archiver = Archiver(
                self.engine, name, node.device, node.database, grid,
                **archiver_kw,
            ).start()
            archivers.append(node.archiver)
            self._instant("dr-enable", name)
        return archivers

    def enable_slo(self, target_p99_ns, **controller_kw):
        """Attach and start one :class:`~repro.slo.SloController`.

        Call after :meth:`add_nodes`: the controller builds one signal
        reader per existing node (nodes added later are not
        auto-covered).  ``controller_kw`` passes through — ``poll_ns``,
        dwell polls, clamp factors, ``seed_shed_acked_bug`` (the
        checker's mutation), ``fleet_supervisor`` for rebalance-stall
        signals.  Returns the controller, started.
        """
        from repro.slo import SloController

        if self.slo is not None:
            raise RuntimeError("fleet already has an SLO controller")
        self.slo = SloController(self, target_p99_ns, **controller_kw)
        self.slo.start()
        return self.slo

    def node_of(self, shard_id):
        """The shard's *current* owner (directory, not placement policy)."""
        return self.shards[shard_id].node.name

    def migrate(self, shard_id, dest, **kw):
        """Start a shard migration; returns the ShardMigration handle."""
        from repro.cluster.rebalance import ShardMigration

        migration = ShardMigration(self, self.shards[shard_id], dest, **kw)
        migration.start()
        return migration

    def note_move(self, shard, source, dest, detail=None):
        record = {
            "time_ns": self.engine.now,
            "shard": shard.shard_id,
            "source": source,
            "dest": dest,
        }
        if detail:
            record.update(detail)
        self.moves.append(record)
        self._instant("shard-move", shard.shard_id, source=source, dest=dest)

    # -- aggregate accounting --------------------------------------------------------

    def total_commits(self):
        return sum(shard.commits for shard in self.shards.values())

    def stop(self):
        if self.slo is not None:
            self.slo.stop()
        for node in self.nodes.values():
            node.stop()

    def _instant(self, action, site, **detail):
        tracer = self.engine.tracer
        if tracer.enabled:
            tracer.instant(self.name, action, site=str(site), **detail)


def run_shard_body(engine, shard, body, retries=None):
    """Drive one body to commit with DeviceBusy backoff (a sim process).

    The standard tenant idiom: retry ``DeviceBusy`` after the device's
    suggested delay and aborted transactions immediately, up to
    ``retries`` attempts (unbounded by default).  Returns the commit LSN.
    """
    attempt = 0
    while True:
        attempt += 1
        try:
            lsn = yield from shard.run_body(body)
            return lsn
        except DeviceBusy as busy:
            if retries is not None and attempt > retries:
                raise
            yield engine.timeout(busy.retry_after_ns)
        except TransactionAborted:
            if retries is not None and attempt > retries:
                raise
