"""Multi-server topologies: primary/secondary clusters over NTB.

The paper's testbed is three Xeon servers, each hosting one Villars
device, daisy-chained with NTB adapters.  This package wires simulated
equivalents:

* :class:`~repro.cluster.server.Server` — one host: a Villars device, the
  drop-in log API, optionally a database;
* :func:`~repro.cluster.topology.replicated_pair` /
  :func:`~repro.cluster.topology.replicated_chain` — pre-wired clusters
  with the transport roles configured through the admin-command path;
* failure injection: power loss on any server, promotion of a secondary.

The fleet tier (see CLUSTER.md) composes many chains under one engine:

* :mod:`~repro.cluster.placement` — consistent-hash / range shard
  placement with minimal-move membership changes;
* :mod:`~repro.cluster.fleet` — :class:`Fleet` / :class:`FleetNode` /
  :class:`Shard`: multi-tenant log streams namespaced inside per-node
  shared databases, admission-gated per-shard write lanes;
* :mod:`~repro.cluster.rebalance` — live shard migration
  (copy → drain → catchup → cutover) and the :class:`FleetSupervisor`
  that triggers it off load skew.
"""

from repro.cluster.fleet import (
    Fleet,
    FleetNode,
    Shard,
    ShardView,
    kv_bootstrap,
    run_shard_body,
)
from repro.cluster.placement import (
    HashRingPlacement,
    PlacementError,
    RangePlacement,
    stable_hash,
)
from repro.cluster.rebalance import FleetSupervisor, ShardMigration
from repro.cluster.server import Server
from repro.cluster.topology import Cluster, replicated_chain, replicated_pair

__all__ = [
    "Server",
    "Cluster",
    "replicated_pair",
    "replicated_chain",
    "Fleet",
    "FleetNode",
    "Shard",
    "ShardView",
    "kv_bootstrap",
    "run_shard_body",
    "HashRingPlacement",
    "RangePlacement",
    "PlacementError",
    "stable_hash",
    "FleetSupervisor",
    "ShardMigration",
]
