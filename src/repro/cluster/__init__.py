"""Multi-server topologies: primary/secondary clusters over NTB.

The paper's testbed is three Xeon servers, each hosting one Villars
device, daisy-chained with NTB adapters.  This package wires simulated
equivalents:

* :class:`~repro.cluster.server.Server` — one host: a Villars device, the
  drop-in log API, optionally a database;
* :func:`~repro.cluster.topology.replicated_pair` /
  :func:`~repro.cluster.topology.replicated_chain` — pre-wired clusters
  with the transport roles configured through the admin-command path;
* failure injection: power loss on any server, promotion of a secondary.
"""

from repro.cluster.server import Server
from repro.cluster.topology import Cluster, replicated_chain, replicated_pair

__all__ = [
    "Server",
    "Cluster",
    "replicated_pair",
    "replicated_chain",
]
