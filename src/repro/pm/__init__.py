"""Persistent-memory models: CMB backing memories and host NVDIMM.

Two places in the reproduced system contain PM:

* inside the device, backing the CMB ring (SRAM from FPGA BlockRAM at
  4 GB/s, or DRAM from the shared data-buffer pool at 2 GB/s effective) —
  Section 6, "Implementation and Environment Details";
* on the host, as NVDIMM, for the paper's "Memory" baseline where the
  database logs straight into battery-backed DIMMs.

Persistence semantics: both models are persistent by assumption (battery /
supercapacitor backing), matching the paper's experimental setup.  The
crash machinery in :mod:`repro.core.crash` decides what survives a power
loss — these classes just provide timing and capacity.
"""

from repro.pm.backing import BackingMemory, dram_backing, sram_backing
from repro.pm.nvdimm import Nvdimm

__all__ = [
    "BackingMemory",
    "sram_backing",
    "dram_backing",
    "Nvdimm",
]
