"""CMB backing memories: SRAM and DRAM variants.

A backing memory is a byte store with a finite write port.  The two Villars
variants differ in:

* **bandwidth** — SRAM (FPGA BlockRAM, 128-bit bus at 250 MHz) delivers
  4 GB/s; DRAM (the DDR3 data-buffer pool, accessed over a 64-bit bus at
  250 MHz) delivers 2 GB/s;
* **sharing** — the DRAM port is shared with the device's regular data
  buffering, so conventional-side traffic steals fast-side bandwidth (the
  effect behind Fig. 9's DRAM back-pressure at 8 workers);
* **capacity** — 128 KiB of SRAM versus 128 MiB of DRAM in the prototype.
"""

from repro.sim.resources import BandwidthPipe
from repro.sim.units import KIB, MIB


class BackingMemory:
    """A persistent byte store with a finite-bandwidth write/read port.

    ``write(nbytes)`` and ``read(nbytes)`` return events that fire when the
    transfer has fully passed the port.  When a ``shared_port`` pipe is
    given, transfers go through it instead of a private port — this is how
    the DRAM variant contends with data-buffer traffic.
    """

    def __init__(self, engine, name, capacity, bandwidth, access_latency_ns,
                 shared_port=None):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.engine = engine
        self.name = name
        self.capacity = capacity
        if shared_port is not None:
            self.port = shared_port
        else:
            self.port = BandwidthPipe(
                engine, bandwidth, latency=access_latency_ns,
                name=f"{name}.port",
            )
        self.bytes_written = 0
        self.bytes_read = 0

    def write(self, nbytes):
        """Persist ``nbytes``; event fires when they are durable."""
        if nbytes < 0:
            raise ValueError("cannot write a negative size")
        self.bytes_written += nbytes
        return self.port.transfer(nbytes)

    def read(self, nbytes):
        """Fetch ``nbytes``; event fires when they left the port."""
        if nbytes < 0:
            raise ValueError("cannot read a negative size")
        self.bytes_read += nbytes
        return self.port.transfer(nbytes)


def sram_backing(engine, capacity=128 * KIB):
    """The Villars-SRAM configuration: FPGA BlockRAM at 4 GB/s."""
    return BackingMemory(
        engine,
        name="cmb-sram",
        capacity=capacity,
        bandwidth=4.0,
        access_latency_ns=20.0,
    )


def dram_backing(engine, capacity=128 * MIB, shared_port=None):
    """The Villars-DRAM configuration.

    The DDR3 pool's port peaks at 2 GB/s over the 64-bit bus, but the CMB
    is a *guest* in that pool: refresh, the controller's regular
    buffering activity, and read/write turnarounds leave roughly a third
    of it to the fast side.  Pass the data buffer's port as
    ``shared_port`` to additionally model direct contention with
    conventional-side traffic.
    """
    if shared_port is not None:
        return BackingMemory(
            engine,
            name="cmb-dram",
            capacity=capacity,
            bandwidth=0.7,
            access_latency_ns=80.0,
            shared_port=shared_port,
        )
    return BackingMemory(
        engine,
        name="cmb-dram",
        capacity=capacity,
        bandwidth=0.7,
        access_latency_ns=80.0,
    )
