"""Host-attached NVDIMM: the paper's "Memory" logging baseline.

In this configuration the database writes log records straight into
battery-backed DIMMs on the host memory bus (as ERMIA does, Section 6).
A persisted write costs the store stream plus a cache-line flush + fence;
there is no PCIe, no syscall, no device — it is the latency floor all
other methods are measured against.
"""

from repro.sim.resources import BandwidthPipe

# DDR4-class write bandwidth for one DIMM channel, bytes/ns.
DEFAULT_NVDIMM_BANDWIDTH = 10.0
# CLWB/CLFLUSHOPT + SFENCE cost per persisted write burst.
DEFAULT_FLUSH_NS = 150.0


class Nvdimm:
    """Battery-backed host DIMM with load/store persistence."""

    def __init__(self, engine, capacity, bandwidth=DEFAULT_NVDIMM_BANDWIDTH,
                 flush_ns=DEFAULT_FLUSH_NS):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.engine = engine
        self.capacity = capacity
        self.flush_ns = flush_ns
        self.port = BandwidthPipe(engine, bandwidth, name="nvdimm.port")
        self.bytes_written = 0

    def persist(self, nbytes):
        """Store ``nbytes`` and flush to the durability domain.

        Event fires when the data is guaranteed durable (post-fence).
        """
        if nbytes < 0:
            raise ValueError("cannot persist a negative size")
        self.bytes_written += nbytes
        done = self.engine.event()
        stored = self.port.transfer(nbytes)

        def _flush(_event):
            self.engine.timeout(self.flush_ns).then(
                lambda _ev: done.succeed(nbytes)
            )

        stored.then(_flush)
        return done

    def read(self, nbytes):
        """Load ``nbytes`` back (the destage read path of Fig. 1 left)."""
        if nbytes < 0:
            raise ValueError("cannot read a negative size")
        return self.port.transfer(nbytes)
