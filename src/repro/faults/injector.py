"""The chaos injector: walking a fault plan inside the simulation.

One :class:`ChaosInjector` owns one :class:`~repro.faults.plan.FaultPlan`
and one cluster.  Its process sleeps until each spec's time, resolves the
symbolic site (a server name or ``"bridge-N"``), and drives the hook
point the device layers expose for that fault kind.  Every application
is appended to ``fault_log`` — plain dicts, so two runs of the same seed
can be compared byte-for-byte.

Healing is part of injection: a restored link or a rejoined replica gets
its missing stream range re-shipped (``Cluster.resync``), and a replica
that crashes with no rejoin scheduled anywhere later in the plan is
spliced out of the chain after a grace period
(``Cluster.reconfigure_around``) so the visible counter can move again.
"""

from repro.faults.plan import FaultKind


class ChaosInjector:
    """Applies a :class:`~repro.faults.plan.FaultPlan` to a cluster."""

    def __init__(self, engine, cluster, plan, grace_ns=1_500_000.0,
                 auto_reconfigure=True):
        self.engine = engine
        self.cluster = cluster
        self.plan = plan
        self.grace_ns = grace_ns
        # When a ChainSupervisor owns recovery, the injector must not
        # splice dead replicas out itself — set this False so the only
        # healing hand is the supervisor's (the self-healing scenarios
        # assert exactly that).
        self.auto_reconfigure = auto_reconfigure
        self.fault_log = []
        self.crash_reports = {}  # site -> CrashReport
        self._process = None

    def start(self):
        """Launch the schedule walker; returns its process event."""
        if self._process is not None:
            raise RuntimeError("chaos injector already started")
        self._process = self.engine.process(self._run(), name="chaos-injector")
        return self._process

    # -- schedule walking -----------------------------------------------------------

    def _run(self):
        for spec in self.plan:
            delay = spec.time_ns - self.engine.now
            if delay > 0:
                yield self.engine.timeout(delay)
            detail = self._apply(spec)
            self.fault_log.append({
                "time_ns": self.engine.now,
                "kind": spec.kind.value,
                "site": spec.site,
                "detail": detail,
            })

    def _log_heal(self, action, site, detail):
        self.fault_log.append({
            "time_ns": self.engine.now,
            "kind": action,
            "site": site,
            "detail": detail,
        })

    # -- site resolution -------------------------------------------------------------

    def _server(self, site):
        try:
            return self.cluster.servers[site]
        except KeyError:
            raise KeyError(f"fault site {site!r} names no server") from None

    def _bridge(self, site):
        if not site.startswith("bridge-"):
            raise KeyError(f"fault site {site!r} is not a bridge")
        index = int(site.split("-", 1)[1])
        return self.cluster.bridges[index]

    def _bridge_downstream(self, bridge):
        """The server on the secondary side of ``bridge``, if it exists.

        Topology builders wire ``port_b`` to the right-hand (downstream)
        server's main port, which carries the server's name.
        """
        return self.cluster.servers.get(bridge.port_b.name)

    # -- fault dispatch ---------------------------------------------------------------

    def _apply(self, spec):
        kind = spec.kind
        params = spec.params
        if kind is FaultKind.NAND_PROGRAM_FAIL:
            server = self._server(spec.site)
            model = server.device.conventional.config.program_fault_model
            if model is None:
                return "skipped: no program fault model installed"
            count = int(params.get("count", 1))
            model.force_next_failures(count)
            return f"next {count} page program(s) will fail"
        if kind is FaultKind.NAND_READ_UNCORRECTABLE:
            server = self._server(spec.site)
            model = server.device.conventional.config.read_fault_model
            if model is None:
                return "skipped: no read fault model installed"
            count = int(params.get("count", 1))
            model.force_next_errors(count)
            return f"next {count} page read(s) uncorrectable"
        if kind is FaultKind.LINK_DOWN:
            self._bridge(spec.site).sever()
            return "link severed"
        if kind is FaultKind.LINK_UP:
            bridge = self._bridge(spec.site)
            bridge.restore()
            downstream = self._bridge_downstream(bridge)
            if downstream is not None and not downstream.device.halted:
                offered = self.cluster.resync(downstream.name)
                return f"link restored; resynced {offered} bytes to " \
                       f"{downstream.name}"
            return "link restored"
        if kind is FaultKind.LINK_CORRUPT:
            count = int(params.get("count", 1))
            self._bridge(spec.site).corrupt_next(count)
            return f"next {count} TLP(s) poisoned"
        if kind is FaultKind.LINK_LATENCY_SPIKE:
            extra = float(params.get("extra_ns", 10_000.0))
            duration = float(params.get("duration_ns", 100_000.0))
            self._bridge(spec.site).inject_latency_spike(extra, duration)
            return f"+{extra:.0f}ns per hop for {duration:.0f}ns"
        if kind is FaultKind.REPLICA_CRASH:
            server = self._server(spec.site)
            if server.device.halted:
                return "skipped: already down"
            report = server.crash()
            self.crash_reports[spec.site] = report
            if self.auto_reconfigure and not self.plan.later_specs(
                    self.engine.now, kind=FaultKind.REPLICA_REJOIN,
                    site=spec.site):
                self.engine.process(
                    self._reconfigure_later(spec.site),
                    name=f"reconfigure-{spec.site}",
                )
            return f"crashed; durable_offset={report.durable_offset:.0f}"
        if kind is FaultKind.REPLICA_REJOIN:
            server = self._server(spec.site)
            if not server.device.halted:
                return "skipped: not down"
            if spec.site not in self.cluster.order:
                return "skipped: already reconfigured out of the chain"
            server.rejoin()
            offered = self.cluster.resync(spec.site)
            return f"rejoined; resynced {offered} bytes"
        if kind is FaultKind.SUPERCAP_FAIL:
            self._server(spec.site).fail_supercap()
            return "reserve energy disabled"
        if kind is FaultKind.CMB_TORN_WRITE:
            count = int(params.get("count", 1))
            self._server(spec.site).device.cmb.arm_torn_write(count)
            return f"next {count} arriving chunk(s) torn"
        raise ValueError(f"unhandled fault kind {kind!r}")

    # -- degradation: splice out a dead secondary --------------------------------------

    def _reconfigure_later(self, site):
        yield self.engine.timeout(self.grace_ns)
        server = self.cluster.servers[site]
        if not server.device.halted or site not in self.cluster.order:
            return
        self.cluster.reconfigure_around(site)
        self._log_heal(
            "chain-reconfigure", site,
            f"spliced {site} out; order now {'->'.join(self.cluster.order)}",
        )
