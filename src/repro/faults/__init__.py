"""Deterministic fault injection for X-SSD devices and clusters.

The subsystem has three parts, mirroring how the paper argues its
guarantees (Sections 4.1, 5, 7.1):

* :mod:`repro.faults.plan` — *what goes wrong and when*: a
  :class:`FaultPlan` is a time-ordered schedule of
  ``(time, site, kind)`` entries, either hand-written or drawn
  deterministically from a seed via :func:`repro.sim.rng.derive`;
* :mod:`repro.faults.injector` — *how it goes wrong*: the
  :class:`ChaosInjector` walks a plan inside the simulation and drives
  the hook points the device layers expose (NAND program/read faults,
  NTB link drop/corruption/latency, replica crash/rejoin, supercap
  failure, torn CMB writes), plus the degradation machinery each fault
  demands (resync, chain reconfiguration);
* :mod:`repro.faults.oracles` — *what must still hold*: reusable
  invariant checkers (durable prefix, no lost acknowledgement, replica
  prefix consistency, FTL mapping integrity) that chaos tests and
  hypothesis properties import.

:mod:`repro.faults.scenario` bundles the three into one reproducible
chaos run over a replicated chain (the ``python -m repro.bench chaos``
entry point and the determinism regression test both call it).
"""

from repro.faults.injector import ChaosInjector
from repro.faults.oracles import (
    OracleViolation,
    StreamRecorder,
    assert_oracles,
    check_durable_prefix,
    check_ftl_integrity,
    check_no_lost_acks,
    check_replica_prefix,
    check_visible_counter_bound,
)
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.faults.scenario import run_chaos

__all__ = [
    "ChaosInjector",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "OracleViolation",
    "StreamRecorder",
    "assert_oracles",
    "check_durable_prefix",
    "check_ftl_integrity",
    "check_no_lost_acks",
    "check_replica_prefix",
    "check_visible_counter_bound",
    "run_chaos",
]
