"""Fault schedules: what goes wrong, where, and when.

A :class:`FaultPlan` is a time-ordered list of :class:`FaultSpec`
entries.  Plans are plain data — JSON round-trippable so a chaos run can
be replayed from a file (``python -m repro.bench chaos --faults
plan.json``) and diffed across runs for the determinism regression.

Sites are symbolic names resolved by the injector at apply time:

* server faults (``replica-crash``, ``supercap-fail``, ``cmb-torn-write``,
  ``nand-program-fail``, ``nand-read-uncorrectable``) name a server
  (``"primary"``, ``"secondary-1"``, ...);
* link faults (``link-down``, ``link-up``, ``link-corrupt``,
  ``link-latency-spike``) name a bridge by index (``"bridge-0"`` joins the
  first adjacent pair in the chain);
* grid faults (``grid-down``, ``grid-up``, ``grid-torn-upload``) name the
  remote archive grid (``"grid"``) and are resolved by the DR harness's
  :class:`~repro.dr.grid.GridFaultDriver` rather than the chain injector.
"""

import enum
import json

from repro.sim.rng import derive


class FaultKind(enum.Enum):
    """Every injectable fault, one per hook point in the device layers."""

    NAND_PROGRAM_FAIL = "nand-program-fail"
    NAND_READ_UNCORRECTABLE = "nand-read-uncorrectable"
    LINK_DOWN = "link-down"
    LINK_UP = "link-up"
    LINK_CORRUPT = "link-corrupt"
    LINK_LATENCY_SPIKE = "link-latency-spike"
    REPLICA_CRASH = "replica-crash"
    REPLICA_REJOIN = "replica-rejoin"
    SUPERCAP_FAIL = "supercap-fail"
    CMB_TORN_WRITE = "cmb-torn-write"
    GRID_DOWN = "grid-down"
    GRID_UP = "grid-up"
    GRID_TORN_UPLOAD = "grid-torn-upload"


# Kinds whose site is a server name (the rest target a bridge).
SERVER_SITED_KINDS = frozenset({
    FaultKind.NAND_PROGRAM_FAIL,
    FaultKind.NAND_READ_UNCORRECTABLE,
    FaultKind.REPLICA_CRASH,
    FaultKind.REPLICA_REJOIN,
    FaultKind.SUPERCAP_FAIL,
    FaultKind.CMB_TORN_WRITE,
})

# Kinds whose site is the remote archive grid ("grid").  The chain
# injector never sees these: the DR checker splits its plan and routes
# them to a GridFaultDriver (see repro/dr/grid.py).
GRID_SITED_KINDS = frozenset({
    FaultKind.GRID_DOWN,
    FaultKind.GRID_UP,
    FaultKind.GRID_TORN_UPLOAD,
})


class FaultSpec:
    """One scheduled fault: ``(time_ns, site, kind, params)``."""

    __slots__ = ("time_ns", "site", "kind", "params")

    def __init__(self, time_ns, site, kind, params=None):
        if time_ns < 0:
            raise ValueError(f"fault time must be >= 0, got {time_ns}")
        if not isinstance(kind, FaultKind):
            kind = FaultKind(kind)
        self.time_ns = float(time_ns)
        self.site = site
        self.kind = kind
        self.params = dict(params or {})

    def as_dict(self):
        payload = {
            "time_ns": self.time_ns,
            "site": self.site,
            "kind": self.kind.value,
        }
        if self.params:
            payload["params"] = self.params
        return payload

    @classmethod
    def from_dict(cls, data):
        return cls(data["time_ns"], data["site"], FaultKind(data["kind"]),
                   data.get("params"))

    def __repr__(self):
        return (f"FaultSpec(t={self.time_ns:.0f}ns, site={self.site!r}, "
                f"kind={self.kind.value})")


def _canonical_key(spec):
    """Total order over specs: time, then site, then kind, then params.

    Sorting by time alone leaves same-instant entries in insertion order,
    so two plans with identical content could serialize differently
    depending on construction history.  The full key makes the ordering —
    and therefore the JSON text — a function of the plan's *content*.
    """
    return (
        spec.time_ns,
        str(spec.site),
        spec.kind.value,
        sorted((str(k), str(v)) for k, v in spec.params.items()),
    )


class FaultPlan:
    """A deterministic, time-ordered fault schedule.

    ``excluded`` carries specs a shrinking pass removed from the active
    schedule: a minimal reproducer stays self-describing (what was tried
    and found irrelevant) without those faults ever being injected.
    Both lists are kept in canonical order so equal plans serialize to
    identical bytes.
    """

    def __init__(self, specs=(), excluded=()):
        self.specs = sorted(
            (spec if isinstance(spec, FaultSpec) else FaultSpec(**spec)
             for spec in specs),
            key=_canonical_key,
        )
        self.excluded = sorted(
            (spec if isinstance(spec, FaultSpec) else FaultSpec(**spec)
             for spec in excluded),
            key=_canonical_key,
        )

    def __iter__(self):
        return iter(self.specs)

    def __len__(self):
        return len(self.specs)

    def add(self, time_ns, site, kind, **params):
        """Append one fault, keeping the schedule canonically sorted."""
        self.specs.append(FaultSpec(time_ns, site, kind, params))
        self.specs.sort(key=_canonical_key)
        return self

    def without(self, index):
        """A new plan with spec ``index`` moved to the excluded list.

        The shrinker's primitive: the dropped fault is remembered, not
        forgotten, so a shrunk reproducer records what was ruled out.
        """
        specs = list(self.specs)
        dropped = specs.pop(index)
        return FaultPlan(specs, excluded=list(self.excluded) + [dropped])

    def kinds(self):
        """The distinct fault kinds this plan injects."""
        return {spec.kind for spec in self.specs}

    def later_specs(self, after_time_ns, kind=None, site=None):
        """Entries strictly after ``after_time_ns``, optionally filtered."""
        return [
            spec for spec in self.specs
            if spec.time_ns > after_time_ns
            and (kind is None or spec.kind is kind)
            and (site is None or spec.site == site)
        ]

    # -- serialization ------------------------------------------------------------

    def as_dicts(self):
        return [spec.as_dict() for spec in self.specs]

    def to_json(self, path=None):
        """Canonical JSON: sorted keys, canonical spec order, trailing \\n.

        Byte-stable: two plans with the same content produce identical
        text regardless of how they were built, so shrunk reproducers can
        be diffed (and deduplicated) across runs.
        """
        payload = {"faults": self.as_dicts()}
        if self.excluded:
            payload["excluded"] = [spec.as_dict() for spec in self.excluded]
        text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        if path is not None:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text)
        return text

    @classmethod
    def from_dicts(cls, dicts, excluded=()):
        return cls(
            (FaultSpec.from_dict(entry) for entry in dicts),
            excluded=(FaultSpec.from_dict(entry) for entry in excluded),
        )

    @classmethod
    def from_json(cls, text_or_path):
        """Load a plan from a JSON string or a path to a JSON file."""
        text = text_or_path
        if not text.lstrip().startswith("{"):
            with open(text_or_path, "r", encoding="utf-8") as handle:
                text = handle.read()
        data = json.loads(text)
        return cls.from_dicts(data["faults"], data.get("excluded", ()))

    # -- seeded generation ----------------------------------------------------------

    @classmethod
    def random(cls, seed, duration_ns, secondary_names, bridge_count,
               events=6, include_kinds=None):
        """Draw a deterministic plan from ``seed``.

        Faults land inside ``[0.05, 0.75] * duration_ns`` so the tail of
        the run always has room for healing (link restore, rejoin,
        resync).  Server-sited faults target secondaries (crashing the
        primary mid-run would end the workload, which the scenario
        handles as its own final step).  ``LINK_DOWN`` always schedules a
        matching ``LINK_UP``; ``REPLICA_CRASH`` is followed by a
        ``REPLICA_REJOIN`` with probability 1/2 (otherwise the chain must
        reconfigure around the dead server).
        """
        rng = derive(seed, "fault-plan")
        kinds = list(include_kinds or (
            FaultKind.NAND_PROGRAM_FAIL,
            FaultKind.NAND_READ_UNCORRECTABLE,
            FaultKind.LINK_DOWN,
            FaultKind.LINK_CORRUPT,
            FaultKind.LINK_LATENCY_SPIKE,
            FaultKind.REPLICA_CRASH,
            FaultKind.SUPERCAP_FAIL,
            FaultKind.CMB_TORN_WRITE,
        ))
        plan = cls()
        crashed = set()
        for _ in range(events):
            kind = rng.choice(kinds)
            at = rng.uniform(0.05, 0.75) * duration_ns
            if kind in SERVER_SITED_KINDS:
                if not secondary_names:
                    continue
                site = rng.choice(secondary_names)
            else:
                site = f"bridge-{rng.randrange(bridge_count)}"
            if kind is FaultKind.LINK_DOWN:
                plan.add(at, site, kind)
                up_at = at + rng.uniform(0.02, 0.10) * duration_ns
                plan.add(up_at, site, FaultKind.LINK_UP)
            elif kind is FaultKind.LINK_CORRUPT:
                plan.add(at, site, kind, count=rng.randint(1, 3))
            elif kind is FaultKind.LINK_LATENCY_SPIKE:
                plan.add(at, site, kind,
                         extra_ns=rng.uniform(5_000.0, 50_000.0),
                         duration_ns=rng.uniform(0.02, 0.10) * duration_ns)
            elif kind is FaultKind.REPLICA_CRASH:
                if site in crashed:
                    continue
                crashed.add(site)
                plan.add(at, site, kind)
                if rng.random() < 0.5:
                    rejoin_at = at + rng.uniform(0.05, 0.15) * duration_ns
                    plan.add(rejoin_at, site, FaultKind.REPLICA_REJOIN)
            elif kind is FaultKind.SUPERCAP_FAIL:
                plan.add(at, site, kind)
            elif kind is FaultKind.NAND_PROGRAM_FAIL:
                plan.add(at, site, kind, count=rng.randint(1, 2))
            elif kind is FaultKind.NAND_READ_UNCORRECTABLE:
                plan.add(at, site, kind, count=1)
            elif kind is FaultKind.CMB_TORN_WRITE:
                plan.add(at, site, kind)
        return plan

    def __repr__(self):
        return f"FaultPlan({len(self.specs)} faults, kinds={sorted(k.value for k in self.kinds())})"
