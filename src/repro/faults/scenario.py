"""One reproducible chaos run: workload + fault plan + oracles.

:func:`run_chaos` builds a replicated chain of small Villars devices,
runs a seeded transactional workload on the primary while a
:class:`~repro.faults.injector.ChaosInjector` walks a fault plan, then
power-fails the primary, recovers from its destaged log, and evaluates
every oracle.  Everything — workload, plan, device fault models — draws
from independent streams of one seed (:func:`repro.sim.rng.derive`), so
the same seed reproduces the same fault sequence, the same crash report,
and the same recovered state, byte for byte.

Used by ``python -m repro.bench chaos``, the determinism regression
test, and the hypothesis chaos properties.
"""

from repro.cluster.topology import replicated_chain
from repro.core.config import villars_sram
from repro.db.engine import Database
from repro.db.recovery import recover_from_pages
from repro.faults.injector import ChaosInjector
from repro.faults.oracles import (
    StreamRecorder,
    check_durable_prefix,
    check_ftl_integrity,
    check_no_lost_acks,
    check_replica_prefix,
    check_visible_counter_bound,
)
from repro.faults.plan import FaultPlan
from repro.host.baselines import NoLogFile
from repro.nand.ecc import EccFaultModel, ProgramFaultModel
from repro.nand.geometry import Geometry
from repro.nand.timing import NandTiming
from repro.sim import Engine
from repro.sim.rng import derive
from repro.ssd.device import SsdConfig


def chaos_config_factory(seed):
    """Per-server Villars configs with armed (but quiet) fault models.

    Each call returns a *fresh* config — fault models must not be shared
    between servers, or forcing a failure on one would fire on another.
    """
    counter = [0]

    def factory():
        index = counter[0]
        counter[0] += 1
        return villars_sram(
            ssd=SsdConfig(
                geometry=Geometry(channels=2, ways_per_channel=2,
                                  blocks_per_die=64, pages_per_block=16,
                                  page_bytes=4096),
                timing=NandTiming(t_program=50_000.0, t_read=5_000.0,
                                  t_erase=200_000.0, bus_bandwidth=1.0),
                program_fault_model=ProgramFaultModel(
                    seed=(seed * 1000003 + 2 * index) & 0x7FFFFFFF),
                read_fault_model=EccFaultModel(
                    seed=(seed * 1000003 + 2 * index + 1) & 0x7FFFFFFF),
            ),
            cmb_capacity=64 * 1024,
            cmb_queue_bytes=8 * 1024,
            # Seeds the per-peer mirror-retry backoff jitter: chaos runs
            # with link faults retry on deterministic schedules, so two
            # runs of one seed stay byte-identical.
            transport_seed=(seed * 1000003 + 7919 + index) & 0x7FFFFFFF,
        )

    return factory


def chaos_realistic_nand_config_factory(seed):
    """Like :func:`chaos_config_factory` with the NAND realism pack on.

    Two planes per die plus a fully enabled :class:`DieQos` (erase
    suspend/resume, cache program, multi-plane batching) — used by the
    determinism tests to show chaos replays stay byte-identical with the
    die resource manager exercising every feature.
    """
    from repro.nand.dies import DieQos

    inner = chaos_config_factory(seed)

    def factory():
        config = inner()
        ssd = config.ssd
        ssd.geometry = Geometry(
            channels=ssd.geometry.channels,
            ways_per_channel=ssd.geometry.ways_per_channel,
            blocks_per_die=ssd.geometry.blocks_per_die,
            pages_per_block=ssd.geometry.pages_per_block,
            page_bytes=ssd.geometry.page_bytes,
            planes_per_die=2,
        )
        ssd.qos = DieQos(suspend_for_reads=True,
                         suspendable_classes=("gc", "host"),
                         multi_plane_writes=True, cache_program=True)
        return config

    return factory


def run_chaos(seed, secondaries=2, duration_ns=8_000_000.0, plan=None,
              fault_events=6, transactions=160, group_commit_bytes=2048,
              key_space=8, collect_snapshots=False, config_factory=None):
    """Run one seeded chaos scenario; returns a JSON-able result dict.

    ``plan`` overrides the seed-derived schedule (e.g. loaded from a
    ``--faults`` file); otherwise :meth:`FaultPlan.random` draws one.
    ``config_factory`` overrides the default per-server config factory
    (e.g. :func:`chaos_realistic_nand_config_factory`).  The returned
    dict carries the plan, the injector's fault log, the primary's crash
    report, per-oracle violation lists, and an ``ok`` flag — identical
    across runs with identical inputs.
    """
    engine = Engine()
    if config_factory is None:
        config_factory = chaos_config_factory(seed)
    cluster = replicated_chain(
        engine, config_factory, secondaries=secondaries,
    )
    secondary_names = [s.name for s in cluster.secondaries()]
    recorders = {
        name: StreamRecorder(server.device, name=name)
        for name, server in cluster.servers.items()
    }
    if plan is None:
        plan = FaultPlan.random(
            seed, duration_ns, secondary_names,
            bridge_count=len(cluster.bridges), events=fault_events,
        )

    database = cluster.primary.with_database(
        group_commit_bytes=group_commit_bytes,
        group_commit_timeout_ns=15_000.0,
    )
    database.create_table("kv")

    acknowledged = {}  # key -> last value whose commit was acknowledged
    written = {}  # key -> set of every value ever written
    workload_rng = derive(seed, "workload")

    def workload():
        for index in range(transactions):
            txn = database.begin()
            key = f"k{workload_rng.randrange(key_space)}"
            value = f"v{index}"
            txn.write("kv", key, value)
            written.setdefault(key, set()).add(value)
            yield txn.commit()
            acknowledged[key] = value
            recorders["primary"].note_visible(
                cluster.primary.device.transport.visible_counter()
            )

    injector = ChaosInjector(engine, cluster, plan)
    injector.start()
    engine.process(workload(), name="chaos-workload")
    engine.run(until=duration_ns)

    # Pre-crash checks: the policy counter must never have overpromised.
    visible_violations = check_visible_counter_bound(cluster)

    # The final, always-injected fault: primary power loss.
    report = cluster.primary.crash()

    pages = _collect_pages(engine, cluster.primary.device)

    fresh = Engine()
    recovered = Database(fresh, NoLogFile(fresh))
    recovered.create_table("kv")
    transactions_recovered = recover_from_pages(recovered, pages)
    recovered_values = dict(recovered.table("kv").scan())

    oracles = {
        "durable-prefix": check_durable_prefix(report, pages),
        "no-lost-ack": check_no_lost_acks(
            recovered_values, acknowledged, written),
        "visible-counter": visible_violations,
    }
    for name in secondary_names:
        server = cluster.servers[name]
        oracles[f"replica-prefix:{name}"] = check_replica_prefix(
            recorders["primary"], recorders[name],
            secondary_credit=server.device.cmb.credit.value,
        )
    for name, server in cluster.servers.items():
        oracles[f"ftl-integrity:{name}"] = check_ftl_integrity(server.device)

    result = {
        "seed": seed,
        "secondaries": secondaries,
        "duration_ns": duration_ns,
        "plan": plan.as_dicts(),
        "fault_kinds": sorted(kind.value for kind in plan.kinds()),
        "fault_log": injector.fault_log,
        "chain_order": list(cluster.order),
        "crash_report": report.as_dict(),
        "secondary_crash_reports": {
            site: crash.as_dict()
            for site, crash in sorted(injector.crash_reports.items())
        },
        "commits_acknowledged": database.stats.commits,
        "transactions_recovered": transactions_recovered,
        "recovered_keys": len(recovered_values),
        "oracles": oracles,
        "ok": all(not violations for violations in oracles.values()),
    }
    if collect_snapshots:
        from repro.core.metrics import device_snapshot

        result["snapshots"] = {
            name: device_snapshot(server.device)
            for name, server in sorted(cluster.servers.items())
        }
    return result


def _collect_pages(engine, device):
    """Read back every durable destaged page of a halted device."""
    pages = []

    def reader():
        destage = device.destage
        for sequence in range(destage.head_sequence, destage.durable_tail):
            page = yield destage.read_page(sequence)
            pages.append(page)

    done = engine.process(reader(), name="chaos-page-collect")
    # Step in small increments instead of one big window: surviving
    # secondaries still run their reporter loops, so the event heap
    # never drains and a single run(until=now+5e9) would simulate the
    # whole window at reporter granularity.
    deadline = engine.now + 5e9
    while not done.triggered and engine.now < deadline:
        engine.run(until=min(engine.now + 1e6, deadline))
    if not done.triggered:
        raise RuntimeError("page collection did not finish in bounded time")
    return pages
