"""Invariant oracles: what must hold no matter which faults fired.

Each checker inspects post-run state and returns a list of violation
strings (empty means the invariant held), so a scenario can collect every
broken promise in one pass; :func:`assert_oracles` turns a non-empty
result into an :class:`OracleViolation` for test use.

The oracles encode the paper's guarantees:

* **durable prefix** (Section 4.1): what survives a crash is a gap-free
  prefix of the log stream, at least as long as the credit counter the
  host last saw — unless the reserve energy itself failed;
* **no lost ack** (Section 5): a transaction acknowledged as committed is
  recoverable after the crash;
* **replica prefix** (Section 4.2): a secondary holds a (possibly
  shorter) prefix of exactly the bytes the primary shipped — never
  diverging content;
* **FTL integrity** (Section 7.1): mapping bijectivity and bad-block
  avoidance survive program failures and retirements;
* **visible-counter bound**: the policy counter never overpromises —
  it cannot exceed local persistence nor a peer's actual progress.
"""

class OracleViolation(AssertionError):
    """One or more durability invariants did not hold."""

    def __init__(self, violations):
        self.violations = list(violations)
        super().__init__(
            "; ".join(self.violations) if self.violations else "violation"
        )


def assert_oracles(*violation_lists):
    """Raise :class:`OracleViolation` if any checker reported a problem."""
    merged = [v for violations in violation_lists for v in violations]
    if merged:
        raise OracleViolation(merged)


class StreamRecorder:
    """Passive witness of one device's log stream.

    Hooks the CMB intake tap and the credit watcher, so oracles can
    compare what a device *received* and *acknowledged* against its
    peers without relying on state the crash path tears down.
    """

    def __init__(self, device, name=None):
        self.device = device
        self.name = name or device.name
        self.chunks = []  # (time_ns, offset, nbytes, payload)
        self.max_credit_seen = 0
        self.max_visible_seen = 0
        device.cmb.tap_intake(self._on_chunk)
        device.cmb.watch_credit(self._on_credit)

    def _on_chunk(self, offset, nbytes, payload):
        self.chunks.append((self.device.engine.now, offset, nbytes, payload))

    def _on_credit(self, value):
        self.max_credit_seen = max(self.max_credit_seen, value)

    def note_visible(self, value):
        """Record a policy-visible counter value the host actually read."""
        self.max_visible_seen = max(self.max_visible_seen, value)

    def coverage(self):
        """Merged (start, end) intervals of every byte ever received."""
        intervals = sorted(
            (offset, offset + nbytes) for _t, offset, nbytes, _p in self.chunks
        )
        merged = []
        for start, end in intervals:
            if merged and start <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], end))
            else:
                merged.append((start, end))
        return merged


def check_durable_prefix(report, pages):
    """The crash-surviving pages form a gap-free stream prefix.

    ``report`` is the :class:`~repro.core.crash.CrashReport`; ``pages``
    are the destaged pages read back in sequence order.  With working
    reserve energy the durable prefix must reach at least the credit
    counter value at the instant of the crash (every acknowledged byte
    survives); a failed supercap waives that bound but never the
    gap-freedom of what *did* survive.
    """
    violations = []
    cursor = None
    for page in pages:
        if cursor is not None and page.stream_offset != cursor:
            violations.append(
                f"durable-prefix: page at stream offset {page.stream_offset} "
                f"does not continue prefix ending at {cursor}"
            )
        chunk_cursor = page.stream_offset
        for offset, nbytes, _payload in page.chunks:
            if offset != chunk_cursor:
                violations.append(
                    f"durable-prefix: chunk at {offset} inside page "
                    f"{page.stream_offset} leaves a hole at {chunk_cursor}"
                )
            chunk_cursor = offset + nbytes
        cursor = page.end_offset
    if pages and cursor != report.durable_offset:
        violations.append(
            f"durable-prefix: pages end at {cursor} but the report claims "
            f"durable_offset={report.durable_offset}"
        )
    if report.reserve_energy_ok:
        if report.durable_offset < report.credit_at_crash:
            violations.append(
                f"durable-prefix: durable offset {report.durable_offset} "
                f"below the acknowledged credit {report.credit_at_crash} "
                f"despite working reserve energy"
            )
    return violations


def check_no_lost_acks(recovered_values, acknowledged, written=None):
    """Every acknowledged write is recoverable.

    ``recovered_values`` maps key -> recovered value (the post-recovery
    table contents); ``acknowledged`` maps key -> the last value whose
    commit was acknowledged to the client.  ``written``, when given, maps
    key -> set of every value any transaction ever wrote, so the oracle
    can also reject fabricated values.
    """
    violations = []
    for key, value in acknowledged.items():
        got = recovered_values.get(key)
        if got is None:
            violations.append(
                f"no-lost-ack: acknowledged key {key!r} (last value "
                f"{value!r}) missing after recovery"
            )
        elif written is not None and got not in written.get(key, ()):
            violations.append(
                f"no-lost-ack: key {key!r} recovered value {got!r} was "
                f"never written by any transaction"
            )
    return violations


def check_replica_prefix(primary_recorder, secondary_recorder,
                         secondary_credit=None):
    """A secondary's stream is a content-identical prefix of the primary's.

    Every chunk the secondary received must lie inside a chunk the
    primary sent with the *same payload* (resync re-ships tail slices, so
    containment — not equality — is the right relation).  The secondary's
    contiguous frontier must be covered by bytes the primary actually
    emitted.
    """
    violations = []
    primary_chunks = [
        (offset, offset + nbytes, payload)
        for _t, offset, nbytes, payload in primary_recorder.chunks
    ]
    for _t, offset, nbytes, payload in secondary_recorder.chunks:
        end = offset + nbytes
        contained = any(
            p_start <= offset and end <= p_end and payload is p_payload
            for p_start, p_end, p_payload in primary_chunks
        )
        if not contained:
            violations.append(
                f"replica-prefix: {secondary_recorder.name} received "
                f"[{offset}, {end}) which the primary never sent with "
                f"that payload"
            )
    frontier = (secondary_credit if secondary_credit is not None
                else secondary_recorder.max_credit_seen)
    covered = 0
    for start, end in primary_recorder.coverage():
        if start > covered:
            break
        covered = max(covered, end)
    if frontier > covered:
        violations.append(
            f"replica-prefix: {secondary_recorder.name} acknowledged "
            f"{frontier} bytes but the primary only emitted a contiguous "
            f"prefix of {covered}"
        )
    return violations


def check_ftl_integrity(device):
    """Mapping-table bijectivity and bad-block avoidance."""
    violations = []
    ftl = device.conventional.ftl
    table = ftl.table
    geometry = ftl.geometry
    bad = ftl.allocator.bad_blocks
    reverse_seen = {}
    for lba, address in table._forward.items():
        key = (address.channel, address.way, address.block, address.page)
        if key in reverse_seen:
            violations.append(
                f"ftl-integrity: physical page {key} mapped by both "
                f"lba {reverse_seen[key]} and lba {lba}"
            )
        reverse_seen[key] = lba
        if table._reverse.get(key) != lba:
            violations.append(
                f"ftl-integrity: forward map lba {lba} -> {key} not "
                f"mirrored in the reverse map"
            )
        if not (0 <= address.channel < geometry.channels
                and 0 <= address.way < geometry.ways_per_channel
                and 0 <= address.block < geometry.blocks_per_die
                and 0 <= address.page < geometry.pages_per_block):
            violations.append(
                f"ftl-integrity: lba {lba} mapped outside the geometry "
                f"at {key}"
            )
    for key, lba in table._reverse.items():
        if table._forward.get(lba) is None:
            violations.append(
                f"ftl-integrity: reverse map entry {key} -> {lba} has no "
                f"forward mapping"
            )
    # Retired blocks must never be offered for new placement.  (Pages
    # programmed there *before* retirement legitimately stay mapped —
    # grown bad blocks remain readable; the device only stops writing.)
    for (channel, way), blocks in ftl.allocator._free.items():
        for block in blocks:
            if (channel, way, block) in bad:
                violations.append(
                    f"ftl-integrity: retired block "
                    f"{(channel, way, block)} still in the free pool"
                )
    for die, cursor in ftl.allocator._cursors.items():
        for block in cursor.blocks:
            if (die[0], die[1], block) in bad:
                violations.append(
                    f"ftl-integrity: open placement cursor on retired block "
                    f"{(die[0], die[1], block)}"
                )
    return violations


def check_failover_convergence(events, site, killed_at_ns,
                               detect_within_ns, resync_within_ns):
    """A killed replica is detected, evicted and resynced — on time.

    ``events`` is a supervisor's chronological event list.  The killed
    ``site`` must progress through ``dead-detected`` -> ``evict`` ->
    ``rejoin`` (which implies the reattach + resync succeeded), with the
    detection landing inside ``detect_within_ns`` of the kill and the
    whole loop inside ``resync_within_ns``.  Detection *before* the kill
    would be a false positive and fails too.
    """
    violations = []

    def times(action):
        return [e["time_ns"] for e in events
                if e["site"] == site and e["action"] == action]

    detected = times("dead-detected")
    if not detected:
        violations.append(
            f"failover: {site} killed at {killed_at_ns:.0f}ns was never "
            f"detected dead"
        )
        return violations
    t_detect = detected[0]
    if t_detect < killed_at_ns:
        violations.append(
            f"failover: {site} declared dead at {t_detect:.0f}ns, before "
            f"the kill at {killed_at_ns:.0f}ns (false positive)"
        )
    elif t_detect - killed_at_ns > detect_within_ns:
        violations.append(
            f"failover: detection took {t_detect - killed_at_ns:.0f}ns, "
            f"over the {detect_within_ns:.0f}ns bound"
        )
    evicted = times("evict")
    if not evicted:
        violations.append(f"failover: {site} detected dead but never "
                          f"evicted from the chain")
    elif evicted[0] < t_detect:
        violations.append(
            f"failover: {site} evicted at {evicted[0]:.0f}ns before "
            f"detection at {t_detect:.0f}ns"
        )
    rejoined = times("rejoin")
    if not rejoined:
        violations.append(f"failover: {site} was never reattached and "
                          f"resynced after its eviction")
    elif rejoined[0] - killed_at_ns > resync_within_ns:
        violations.append(
            f"failover: kill-to-resync took "
            f"{rejoined[0] - killed_at_ns:.0f}ns, over the "
            f"{resync_within_ns:.0f}ns bound"
        )
    return violations


def check_bounded_backlog(samples, bound, name="device"):
    """The CMB intake backlog never exceeded its configured bound.

    ``samples`` are ``(time_ns, backlog_bytes)`` pairs taken on a fixed
    cadence during the run.  With shedding active the bound is a hard
    invariant; ``bound`` of None means the device was unbounded and any
    sample is accepted (vacuously true, reported as such).
    """
    if bound is None:
        return []
    return [
        f"bounded-backlog: {name} intake backlog {depth} bytes at "
        f"{time_ns:.0f}ns exceeds the {bound}-byte bound"
        for time_ns, depth in samples
        if depth > bound
    ]


def check_visible_counter_bound(cluster):
    """The policy counter never overpromises durability.

    The primary's visible counter must not exceed its own persisted
    prefix, and each shadow counter must not exceed the actual credit of
    the peer it mirrors (shadows relay real reports, so running ahead
    would mean a fabricated acknowledgement).
    """
    violations = []
    primary = cluster.primary.device
    transport = primary.transport
    visible = transport.visible_counter()
    local = primary.cmb.credit.value
    if visible > local:
        violations.append(
            f"visible-counter: policy value {visible} exceeds the "
            f"primary's persisted prefix {local}"
        )
    for peer_name, shadow in transport.shadow_counters.items():
        server = cluster.servers.get(peer_name)
        if server is None:
            continue
        actual = server.device.cmb.credit.value
        if shadow.value > actual:
            violations.append(
                f"visible-counter: shadow for {peer_name} at "
                f"{shadow.value} exceeds its actual credit {actual}"
            )
    return violations
