"""Transaction Layer Packets: the unit of traffic on the PCIe fabric.

Every byte moved between host and device ultimately travels inside a TLP.
What matters for performance modeling is the *fixed per-packet overhead*:
a memory-write TLP carries framing, sequence number, a 3-4 DW header and an
LCRC alongside its payload.  Small stores therefore waste most of the wire —
the effect the paper's Fig. 10 quantifies and Write Combining mitigates.
"""

import enum
from dataclasses import dataclass, field

# Per-TLP overhead on the wire, in bytes: STP/SDP framing (2) + sequence (2)
# + 4-DW header for 64-bit addressing (16) + LCRC (4) + END (1), rounded to
# a conservative 24.  The exact value shifts the curves of Fig. 10 but not
# their shape.
TLP_OVERHEAD_BYTES = 24

# Typical negotiated Max Payload Size for the class of platform the paper
# uses.  Writes larger than this split into multiple TLPs.
DEFAULT_MAX_PAYLOAD = 256


class TlpType(enum.Enum):
    """The TLP kinds this model distinguishes."""

    MEMORY_WRITE = "MWr"
    MEMORY_READ = "MRd"
    COMPLETION = "CplD"
    MESSAGE = "Msg"


@dataclass
class Tlp:
    """A single transaction-layer packet.

    ``payload`` is a byte count, not actual bytes: the simulator tracks data
    identity separately (in the rings) and the fabric only needs sizes.
    ``tag`` carries an opaque reference for completion matching and for the
    Transport module's mirroring (the mirrored TLP shares the original's
    tag so secondaries can relate streams).
    """

    kind: TlpType
    address: int
    payload: int
    tag: object = None
    metadata: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.payload < 0:
            raise ValueError("TLP payload cannot be negative")
        if self.kind is TlpType.MEMORY_READ and self.payload != 0:
            raise ValueError("read requests carry no payload")

    @property
    def wire_size(self):
        """Bytes this packet occupies on the link, overhead included."""
        return self.payload + TLP_OVERHEAD_BYTES

    def mirrored(self, new_address):
        """A copy redirected at ``new_address`` (NTB forwarding, mirroring)."""
        return Tlp(
            kind=self.kind,
            address=new_address,
            payload=self.payload,
            tag=self.tag,
            metadata=dict(self.metadata),
        )


def split_into_tlps(address, size, max_payload=DEFAULT_MAX_PAYLOAD, tag=None):
    """Split a ``size``-byte write at ``address`` into wire TLPs.

    Returns the list of :class:`Tlp` covering the range contiguously.  This
    is what the Root Complex does with a large WC flush or a DMA burst.
    """
    if size < 0:
        raise ValueError("cannot split a negative size")
    tlps = []
    offset = 0
    while offset < size:
        chunk = min(max_payload, size - offset)
        tlps.append(
            Tlp(
                kind=TlpType.MEMORY_WRITE,
                address=address + offset,
                payload=chunk,
                tag=tag,
            )
        )
        offset += chunk
    return tlps


def wire_bytes_for_write(size, max_payload=DEFAULT_MAX_PAYLOAD):
    """Total wire bytes (payload + overhead) for a ``size``-byte write."""
    if size <= 0:
        return 0
    full, rest = divmod(size, max_payload)
    packets = full + (1 if rest else 0)
    return size + packets * TLP_OVERHEAD_BYTES
