"""RDMA NIC model — the network the *baseline* designs use.

The paper's Fig. 1 (left) baseline ships log records to remote PM with
RDMA writes (Query-Fresh / Active-Memory style).  We model a RoCE NIC at
the verbs level: queue pairs, posted work requests, completion polling.

Two properties matter for the comparison with the X-SSD path:

* latency/bandwidth of a one-sided write (ConnectX-5 class: ~2 us one-way
  for small messages, ~11 GB/s per port), and
* the **persistence caveat** (Section 8.2, [37]): completion of an RDMA
  write means the data is *visible* at the remote NIC, not that it is
  *persistent* — DDIO may park it in the remote CPU's cache.  The model
  carries a ``persistent_on_completion`` flag; when false, an extra
  flush round-trip is required for durability, which the host-PM baseline
  must pay (or risk losing data on a crash — the problem the paper calls
  out).
"""

from repro.sim.resources import BandwidthPipe
from repro.pcie.tlp import TLP_OVERHEAD_BYTES

# ConnectX-5 class figures.
DEFAULT_RDMA_BANDWIDTH = 11.0  # bytes/ns
DEFAULT_RDMA_LATENCY_NS = 2_000.0  # one-way small-message latency
# RoCEv2 per-message header cost (Eth + IP + UDP + BTH + iCRC).
RDMA_HEADER_BYTES = 66
# NIC doorbell + WQE fetch cost on the posting side.
POST_OVERHEAD_NS = 300.0


class RdmaNic:
    """One RDMA-capable NIC attached to a host."""

    def __init__(self, engine, name, bandwidth=DEFAULT_RDMA_BANDWIDTH,
                 latency=DEFAULT_RDMA_LATENCY_NS):
        self.engine = engine
        self.name = name
        self.tx_pipe = BandwidthPipe(
            engine, bandwidth, latency=latency, name=f"{name}.tx"
        )
        self.bytes_sent = 0

    def connect(self, remote_nic, persistent_on_completion=False):
        """Create a queue pair to ``remote_nic``."""
        return RdmaQueuePair(self, remote_nic, persistent_on_completion)


class RdmaQueuePair:
    """A reliable-connected QP between two NICs.

    ``post_write(size)`` returns an event that fires when the local NIC
    would generate the work completion.  If ``persistent_on_completion``
    is false, durability additionally requires :meth:`flush_remote`.
    """

    def __init__(self, local_nic, remote_nic, persistent_on_completion):
        self.local = local_nic
        self.remote = remote_nic
        self.engine = local_nic.engine
        self.persistent_on_completion = persistent_on_completion
        self.writes_posted = 0
        self.flushes = 0
        self._receive_callbacks = []

    def on_receive(self, callback):
        """Register ``callback(size)`` run when a write lands remotely."""
        self._receive_callbacks.append(callback)

    def post_write(self, size):
        """One-sided RDMA write of ``size`` bytes to the remote host."""
        if size < 0:
            raise ValueError("cannot post a negative-size write")
        self.writes_posted += 1
        self.local.bytes_sent += size
        wire = size + RDMA_HEADER_BYTES
        done = self.engine.event()

        def _start(_event):
            arrived = self.local.tx_pipe.transfer(wire)

            def _landed(event):
                for callback in self._receive_callbacks:
                    callback(size)
                done.succeed(size)

            arrived.then(_landed)

        self.engine.timeout(POST_OVERHEAD_NS).then(_start)
        return done

    def flush_remote(self):
        """Force remote persistence (read-after-write or RDMA flush).

        Implemented as a zero-byte read round trip: one header-only message
        out, one back — the standard 'RDMA read as flush' idiom.  Costs a
        full network RTT.
        """
        self.flushes += 1
        done = self.engine.event()
        out = self.local.tx_pipe.transfer(RDMA_HEADER_BYTES)

        def _turnaround(_event):
            back = self.remote.tx_pipe.transfer(RDMA_HEADER_BYTES + TLP_OVERHEAD_BYTES)
            back.then(lambda event: done.succeed())

        out.then(_turnaround)
        return done

    def durable_write(self, size):
        """Write and make durable, honoring the persistence caveat."""
        done = self.engine.event()
        write_done = self.post_write(size)

        def _after_write(_event):
            if self.persistent_on_completion:
                done.succeed(size)
            else:
                self.flush_remote().then(lambda _ev: done.succeed(size))

        write_done.then(_after_write)
        return done
