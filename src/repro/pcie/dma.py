"""The device-side DMA engine.

When the HIC fetches an NVMe write command it uses DMA to pull the payload
from host memory into the device's data buffer (Section 2.2, "The Life of a
Log Write").  A DMA burst is a stream of read-request/completion exchanges;
we model it as one request round plus the payload streaming back on the
upstream direction, split into Max-Payload-sized completions.
"""

from repro.pcie.tlp import DEFAULT_MAX_PAYLOAD, Tlp, TlpType


class DmaEngine:
    """Moves bulk data between host memory and the device over the link."""

    def __init__(self, engine, link, max_payload=DEFAULT_MAX_PAYLOAD):
        self.engine = engine
        self.link = link
        self.max_payload = max_payload
        self.bytes_pulled = 0
        self.bytes_pushed = 0

    def pull(self, size):
        """Host memory -> device, ``size`` bytes (NVMe write payload).

        Read requests travel downstream... no: the *device* issues the read
        requests upstream toward host memory, and completions with data come
        back downstream.  Returns an event firing when the last completion
        arrives at the device.
        """
        if size < 0:
            raise ValueError("cannot DMA a negative size")
        self.bytes_pulled += size
        request = Tlp(TlpType.MEMORY_READ, address=0, payload=0)
        done = self.engine.event()

        def _after_request(_event):
            last = None
            offset = 0
            while offset < size:
                chunk = min(self.max_payload, size - offset)
                completion = Tlp(TlpType.COMPLETION, address=0, payload=chunk)
                last = self.link.send(completion)
                offset += chunk
            if last is None:
                done.succeed(0)
            else:
                last.then(lambda event: done.succeed(size))

        self.link.receive(request).then(_after_request)
        return done

    def push(self, size):
        """Device -> host memory, ``size`` bytes (NVMe read payload).

        Posted memory writes upstream; event fires when the last lands.
        """
        if size < 0:
            raise ValueError("cannot DMA a negative size")
        self.bytes_pushed += size
        last = None
        offset = 0
        while offset < size:
            chunk = min(self.max_payload, size - offset)
            write = Tlp(TlpType.MEMORY_WRITE, address=0, payload=chunk)
            last = self.link.receive(write)
            offset += chunk
        if last is None:
            return self.engine.timeout(0.0, value=0)
        done = self.engine.event()
        last.then(lambda _event: done.succeed(size))
        return done
