"""PCIe subsystem model: TLPs, links, MMIO regions, DMA, NTB, and RDMA.

The paper's fast data path is built directly out of PCIe mechanisms:

* host stores against a CMB-mapped region become Transaction Layer Packets
  (TLPs) on the link (Section 2.1);
* Write-Combining vs Uncached mapping changes how many bytes each TLP
  carries (Section 6.2 / Fig. 10);
* device-to-device replication rides Non-Transparent Bridging, which
  forwards TLPs between hosts' PCIe domains (Sections 2.3, 4.2);
* the RDMA NIC model exists for the host-managed PM baseline (Fig. 1 left).

The model is packet-level, not cycle-level: each TLP pays a fixed header
overhead and serializes on a finite-bandwidth link, which is exactly the
effect the paper's Fig. 10 measures.
"""

from repro.pcie.dma import DmaEngine
from repro.pcie.link import PcieLink, link_bandwidth
from repro.pcie.mmio import CachePolicy, MmioRegion, WriteCombiningBuffer
from repro.pcie.ntb import NtbBridge, NtbPort
from repro.pcie.rdma import RdmaNic, RdmaQueuePair
from repro.pcie.tlp import Tlp, TlpType, split_into_tlps

__all__ = [
    "Tlp",
    "TlpType",
    "split_into_tlps",
    "PcieLink",
    "link_bandwidth",
    "MmioRegion",
    "CachePolicy",
    "WriteCombiningBuffer",
    "DmaEngine",
    "NtbBridge",
    "NtbPort",
    "RdmaNic",
    "RdmaQueuePair",
]
