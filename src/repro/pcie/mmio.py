"""MMIO regions: how CPU stores become TLPs.

The CMB area is exposed to the host via memory mapping.  How the CPU maps
the region determines the store-to-TLP relationship (Intel SDM ch. 11,
cited as [32] in the paper):

* **Uncached (UC)**: every store issues immediately as its own TLP, at most
  8 bytes of payload each.  Strongly ordered, horribly inefficient.
* **Write Combining (WC)**: stores accumulate in a 64-byte WC buffer that
  flushes as one TLP when full (or on an explicit fence / partial-flush
  trigger).  Up to 64 bytes per TLP — an ~8x payload improvement.

Fig. 10 of the paper measures exactly this difference; the model below
reproduces the mechanism, not a curve fit.
"""

import enum

from repro.pcie.tlp import Tlp, TlpType

# x86 WC buffer (fill buffer) size in bytes.
WC_BUFFER_BYTES = 64

# Largest single store a CPU can issue to UC space (one register's worth).
MAX_UC_STORE_BYTES = 8

# Cost of executing one register-width store instruction to an MMIO
# address, beyond link time (pipeline + SFENCE amortization), in ns.  A
# logical write of N bytes is ceil(N / 8) such stores.
STORE_ISSUE_NS = 5.0


class CachePolicy(enum.Enum):
    """Memory type the region is mapped with."""

    UNCACHED = "UC"
    WRITE_COMBINING = "WC"


class WriteCombiningBuffer:
    """The CPU-side 64-byte coalescing buffer for one WC mapping.

    Tracks only byte counts and the base address of the run being combined;
    sequential stores append, a fence or a full buffer emits a TLP.
    """

    def __init__(self):
        self.base_address = None
        self.filled = 0

    def add(self, address, size):
        """Append a store; returns a list of TLPs emitted by this store.

        A store that is non-contiguous with the current run, or that
        overfills the buffer, flushes first (the hardware evicts the WC
        buffer on such events).
        """
        emitted = []
        contiguous = (
            self.base_address is not None
            and address == self.base_address + self.filled
        )
        if self.filled and not contiguous:
            emitted.extend(self.flush())
        if self.base_address is None or not self.filled:
            self.base_address = address
        remaining = size
        cursor = address
        while remaining > 0:
            space = WC_BUFFER_BYTES - self.filled
            take = min(space, remaining)
            self.filled += take
            remaining -= take
            cursor += take
            if self.filled == WC_BUFFER_BYTES:
                emitted.extend(self.flush())
                self.base_address = cursor
        return emitted

    def flush(self):
        """Evict the buffer; returns the TLP list (empty if nothing pending)."""
        if not self.filled:
            return []
        tlp = Tlp(
            kind=TlpType.MEMORY_WRITE,
            address=self.base_address,
            payload=self.filled,
        )
        self.base_address = None
        self.filled = 0
        return [tlp]


class MmioRegion:
    """A device memory window mapped into the host address space.

    ``store(address, size)`` models the CPU writing ``size`` bytes at the
    region-relative ``address``; it returns an event that fires when all
    resulting TLPs have been delivered to the device.  The device side
    observes packets through ``on_write(callback)``.

    ``load(size)`` models an MMIO read (control-interface polls): a
    non-posted round trip over the link.
    """

    def __init__(self, engine, link, size,
                 policy=CachePolicy.WRITE_COMBINING, name="mmio"):
        if size <= 0:
            raise ValueError("MMIO region size must be positive")
        self.engine = engine
        self.link = link
        self.size = size
        self.policy = policy
        self.name = name
        self._wc_buffer = WriteCombiningBuffer()
        self._write_callbacks = []
        # Contributions (stream offset, nbytes, payload) whose bytes are
        # not yet fully on the wire.  Each entry tracks its remaining
        # byte count; a contribution rides with the TLP carrying its
        # *last* byte, so the device never learns of data still sitting
        # in the host's WC buffer (crash fidelity).
        self._unattached = []
        # Once a store has supplied explicit contributions, every TLP from
        # this region carries a contributions list (possibly empty) so
        # receivers never misinterpret raw wire addresses as stream data.
        self._streamed = False
        self.stores_issued = 0
        self.tlps_emitted = 0

    def on_write(self, callback):
        """Register ``callback(tlp)`` for packets arriving at the device."""
        self._write_callbacks.append(callback)

    # -- host-side operations ---------------------------------------------------

    def store(self, address, size, tag=None):
        """CPU store of ``size`` bytes at ``address`` (region-relative).

        ``tag`` may carry ``{"contributions": [(stream_offset, nbytes,
        payload), ...]}`` describing the logical data these bytes
        represent; the region delivers each contribution exactly once,
        in store order, attached to the TLP that flushes its bytes.
        """
        if address < 0 or address + size > self.size:
            raise ValueError(
                f"store [{address}, {address + size}) outside region of "
                f"size {self.size}"
            )
        self.stores_issued += 1
        contributions = (tag or {}).get("contributions") if tag else None
        if contributions:
            for offset, nbytes, payload in contributions:
                self._unattached.append([offset, nbytes, payload, nbytes])
            self._streamed = True
        if self.policy is CachePolicy.WRITE_COMBINING:
            tlps = self._wc_buffer.add(address, size)
        else:
            tlps = self._uncached_tlps(address, size)
        self._attach_contributions(tlps)
        register_stores = -(-size // MAX_UC_STORE_BYTES)
        return self._emit(tlps, issue_cost=STORE_ISSUE_NS * register_stores)

    def fence(self, tag=None):
        """SFENCE: force out any half-filled WC buffer."""
        if self.policy is not CachePolicy.WRITE_COMBINING:
            return self.engine.timeout(0.0)
        tlps = self._wc_buffer.flush()
        self._attach_contributions(tlps)
        return self._emit(tlps, issue_cost=0.0)

    def _attach_contributions(self, tlps):
        """Match emitted TLP payload bytes to pending contributions, FIFO.

        Byte conservation holds — the region emits exactly the bytes it
        was asked to store — so consuming each TLP's payload from the
        contribution queue identifies the packet carrying each
        contribution's final byte.
        """
        for tlp in tlps:
            budget = tlp.payload
            while budget > 0 and self._unattached:
                head = self._unattached[0]
                take = min(head[3], budget)
                head[3] -= take
                budget -= take
                if head[3] == 0:
                    self._unattached.pop(0)
                    tlp.metadata.setdefault("contributions", []).append(
                        (head[0], head[1], head[2])
                    )

    def load(self, size=8):
        """MMIO read of ``size`` bytes; event fires when data arrives."""
        return self.link.read_roundtrip(size)

    # -- internals ---------------------------------------------------------------

    @staticmethod
    def _uncached_tlps(address, size):
        tlps = []
        offset = 0
        while offset < size:
            chunk = min(MAX_UC_STORE_BYTES, size - offset)
            tlps.append(
                Tlp(TlpType.MEMORY_WRITE, address=address + offset,
                    payload=chunk)
            )
            offset += chunk
        return tlps

    def _emit(self, tlps, issue_cost):
        """Issue ``tlps`` as posted writes; event fires when the CPU is free.

        Memory writes are *posted*: the store retires once the write
        leaves the store buffer — the CPU never waits for PCIe delivery.
        The returned event therefore models only the instruction-issue
        cost; packets travel (and reach the device's ``on_write``
        observers) asynchronously.
        """
        self.tlps_emitted += len(tlps)
        for tlp in tlps:
            if self._streamed:
                tlp.metadata.setdefault("contributions", [])
            done = self.link.send(tlp)
            if self._write_callbacks:
                done.then(self._deliver_factory(tlp))
        return self.engine.timeout(issue_cost)

    def _deliver_factory(self, tlp):
        def _deliver(_event):
            for callback in self._write_callbacks:
                callback(tlp)

        return _deliver
