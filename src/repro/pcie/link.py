"""The PCIe link: a pair of serial, finite-bandwidth lanes bundles.

A link is full-duplex; each direction is an independent
:class:`~repro.sim.resources.BandwidthPipe`.  Bandwidth comes from the lane
count and generation: Gen2 delivers 500 MB/s per lane after 8b/10b coding,
so the paper's deliberately constrained x4 Gen2 CMB path is 2 GB/s —
matching the Villars experiments (Section 6, "Implementation details").
"""

from repro.sim.resources import BandwidthPipe
from repro.pcie.tlp import Tlp, TlpType

# Effective per-lane bandwidth in GB/s (== bytes/ns) after line coding.
_PER_LANE_GBPS = {
    1: 0.25,  # Gen1: 2.5 GT/s with 8b/10b
    2: 0.50,  # Gen2: 5.0 GT/s with 8b/10b
    3: 0.985,  # Gen3: 8.0 GT/s with 128b/130b
    4: 1.969,  # Gen4
}

# One-way propagation + switch latency for a TLP, in ns.  Within a single
# host's PCIe hierarchy this is a few hundred nanoseconds.
DEFAULT_PROPAGATION_NS = 250.0


def link_bandwidth(lanes, gen):
    """Usable bandwidth in bytes/ns for a ``lanes`` x Gen ``gen`` link."""
    if gen not in _PER_LANE_GBPS:
        raise ValueError(f"unsupported PCIe generation: {gen}")
    if lanes not in (1, 2, 4, 8, 16):
        raise ValueError(f"invalid lane count: {lanes}")
    return lanes * _PER_LANE_GBPS[gen]


class PcieLink:
    """A full-duplex point-to-point link carrying TLPs.

    ``send(tlp)`` (host -> device direction) and ``receive(tlp)``
    (device -> host) return events that fire when the packet has fully
    arrived at the other end.  Observers can subscribe to delivered packets
    — the Transport module's mirroring taps the stream this way.
    """

    def __init__(self, engine, lanes=4, gen=2,
                 propagation_ns=DEFAULT_PROPAGATION_NS, name="pcie"):
        bandwidth = link_bandwidth(lanes, gen)
        self.engine = engine
        self.name = name
        self.lanes = lanes
        self.gen = gen
        self.downstream = BandwidthPipe(
            engine, bandwidth, latency=propagation_ns, name=f"{name}.down"
        )
        self.upstream = BandwidthPipe(
            engine, bandwidth, latency=propagation_ns, name=f"{name}.up"
        )
        self._downstream_taps = []
        self.tlps_down = 0
        self.tlps_up = 0

    @property
    def bandwidth(self):
        """One-direction bandwidth in bytes/ns."""
        return self.downstream.bandwidth

    def tap_downstream(self, callback):
        """Register ``callback(tlp)`` invoked when a TLP is delivered."""
        self._downstream_taps.append(callback)

    def send(self, tlp):
        """Transmit ``tlp`` toward the device; event fires on delivery."""
        self._check(tlp)
        self.tlps_down += 1
        done = self.downstream.transfer(tlp.wire_size)
        if self._downstream_taps:
            done.then(lambda _event: self._notify(tlp))
        return done

    def receive(self, tlp):
        """Transmit ``tlp`` toward the host; event fires on delivery."""
        self._check(tlp)
        self.tlps_up += 1
        return self.upstream.transfer(tlp.wire_size)

    def _notify(self, tlp):
        for tap in self._downstream_taps:
            tap(tlp)

    @staticmethod
    def _check(tlp):
        if not isinstance(tlp, Tlp):
            raise TypeError(f"expected a Tlp, got {type(tlp).__name__}")

    def read_roundtrip(self, size):
        """Host MMIO read of ``size`` bytes: request down, completion up.

        Returns an event firing when the completion data reaches the host.
        MMIO reads are non-posted and stall the issuing CPU — this is why
        polling the credit counter has a real cost (Sections 4.1, 5.1).
        """
        request = Tlp(TlpType.MEMORY_READ, address=0, payload=0)
        completion = Tlp(TlpType.COMPLETION, address=0, payload=size)
        done = self.engine.event()

        request_sent = self.send(request)

        def _after_request(_event):
            self.receive(completion).then(
                lambda event: done.succeed(event._value)
            )

        request_sent.then(_after_request)
        return done
