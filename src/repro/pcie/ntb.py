"""Non-Transparent Bridging: PCIe as the inter-server network.

NTB connects two hosts' PCIe domains through an adapter that translates
addresses and forwards TLPs (Section 2.3).  Unlike Ethernet or InfiniBand
there is no protocol conversion — a TLP goes in, a TLP comes out — which is
why the paper picked it for the Transport module: the device already speaks
TLPs, so bridging costs only address translation plus the cable.

The model: an :class:`NtbBridge` joins two :class:`NtbPort` endpoints.  Each
direction is a finite-bandwidth pipe with a per-hop translation latency.
Daisy-chaining (the Dolphin PXH830 setup of the experiments) composes
bridges; a forwarded packet pays each hop it crosses.
"""

from repro.sim.resources import BandwidthPipe
from repro.pcie.tlp import Tlp

# Dolphin PXH830-class adapters: x8 Gen3 cable ~= 7.9 GB/s; we expose a
# conservative usable figure.
DEFAULT_NTB_BANDWIDTH = 7.0  # bytes/ns == GB/s

# One-way latency of an NTB hop (address translation + cable + switch).
# Measured sub-microsecond figures appear in the device-lending literature
# cited by the paper ([43], [52]); 700 ns is representative.
DEFAULT_NTB_HOP_NS = 700.0


class NtbPort:
    """One endpoint of an NTB connection, owned by a device or host.

    A port delivers arriving TLPs to its registered sink.  The address the
    peer writes to is translated by the bridge before delivery, so sinks
    see addresses in their local domain.
    """

    def __init__(self, engine, name):
        self.engine = engine
        self.name = name
        self._sink = None
        self._bridge = None
        self.tlps_received = 0
        self.bytes_received = 0

    def attach_sink(self, callback):
        """Register ``callback(tlp)`` for packets arriving at this port."""
        self._sink = callback

    def send(self, tlp):
        """Forward ``tlp`` to the peer port; event fires on delivery there."""
        if self._bridge is None:
            raise RuntimeError(f"NTB port {self.name!r} is not connected")
        return self._bridge.forward(self, tlp)

    def _deliver(self, tlp):
        self.tlps_received += 1
        self.bytes_received += tlp.payload
        if self._sink is not None:
            self._sink(tlp)


class NtbBridge:
    """A point-to-point non-transparent bridge between two ports.

    ``translate`` optionally rewrites addresses between the domains
    (identity by default — the simulator's rings use region-relative
    offsets, so translation is a latency cost, not an arithmetic one).
    """

    def __init__(self, engine, port_a, port_b,
                 bandwidth=DEFAULT_NTB_BANDWIDTH, hop_latency=DEFAULT_NTB_HOP_NS):
        self.engine = engine
        self.port_a = port_a
        self.port_b = port_b
        # Pre-resolved tracing guard: ``forward`` runs once per TLP, so a
        # quiet wire should pay no engine->tracer->enabled chain per hop.
        self._tracer = engine.tracer
        self._tracing = engine.tracer.enabled
        port_a._bridge = self
        port_b._bridge = self
        self._pipes = {
            id(port_a): BandwidthPipe(
                engine, bandwidth, latency=hop_latency,
                name=f"ntb:{port_a.name}->{port_b.name}",
            ),
            id(port_b): BandwidthPipe(
                engine, bandwidth, latency=hop_latency,
                name=f"ntb:{port_b.name}->{port_a.name}",
            ),
        }
        self.hop_latency = hop_latency
        # Fault injection: a severed cable silently drops TLPs (posted
        # writes have no acknowledgement), which is exactly the failure
        # the transport's status register must surface (Section 7.1).
        self.link_up = True
        self.tlps_dropped = 0
        # Corruption injection: the next N forwarded TLPs are delivered
        # with a poisoned LCRC (``metadata["corrupted"]``); receivers
        # discard them, so a corrupted packet behaves like a drop that
        # *did* consume wire bandwidth.
        self._corrupt_budget = 0
        self.tlps_corrupted = 0
        # Latency-spike injection: packets forwarded before the deadline
        # pay an extra per-hop delay (a congested switch, a retraining
        # link) on top of the pipe's base latency.
        self._spike_extra_ns = 0.0
        self._spike_until_ns = -1.0

    def sever(self):
        """Cut the cable: subsequent packets vanish without error."""
        self.link_up = False

    def restore(self):
        self.link_up = True

    def corrupt_next(self, count=1):
        """Poison the next ``count`` forwarded TLPs (delivered, then dropped)."""
        if count < 0:
            raise ValueError("count must be >= 0")
        self._corrupt_budget += count

    def inject_latency_spike(self, extra_ns, duration_ns):
        """Add ``extra_ns`` per hop for the next ``duration_ns`` of sim time."""
        if extra_ns < 0 or duration_ns < 0:
            raise ValueError("latency spike needs non-negative magnitudes")
        self._spike_extra_ns = extra_ns
        self._spike_until_ns = self.engine.now + duration_ns

    def peer_of(self, port):
        if port is self.port_a:
            return self.port_b
        if port is self.port_b:
            return self.port_a
        raise ValueError("port does not belong to this bridge")

    def forward(self, source_port, tlp):
        """Carry ``tlp`` from ``source_port`` to its peer.

        On a severed link the packet is dropped: the returned event still
        fires (posted writes complete locally regardless), but nothing
        arrives at the peer.  The event's value tells the sender what the
        *link layer* observed — the delivered TLP, or ``None`` for a drop
        — which is what lets the transport run bounded retries without
        inventing an end-to-end acknowledgement the paper doesn't have.
        """
        if not isinstance(tlp, Tlp):
            raise TypeError(f"expected a Tlp, got {type(tlp).__name__}")
        peer = self.peer_of(source_port)
        pipe = self._pipes[id(source_port)]
        tracer = self._tracer
        track = f"ntb:{source_port.name}->{peer.name}"
        token = None
        if self._tracing:
            # Mirror TLPs carry their stream offset as the wire address, so
            # the hop span joins the primary's ship span to the peer's
            # intake span in the flow view.
            kind = tlp.metadata.get("kind")
            token = tracer.begin(
                track, kind or "tlp",
                flow=tlp.address if kind == "mirror" else None,
                nbytes=tlp.wire_size,
            )
        if self._corrupt_budget > 0:
            self._corrupt_budget -= 1
            self.tlps_corrupted += 1
            tlp.metadata["corrupted"] = True
            if self._tracing:
                tracer.instant(track, "tlp-corrupted", address=tlp.address)
        done = pipe.transfer(tlp.wire_size)
        delivery = self.engine.event()

        def _arrived(_event):
            if self.link_up:
                if token is not None:
                    tracer.end(token)
                peer._deliver(tlp)
                delivery.succeed(tlp)
            else:
                self.tlps_dropped += 1
                if token is not None:
                    tracer.instant(track, "tlp-dropped",
                                   address=tlp.address)
                    tracer.end(token, dropped=True)
                delivery.succeed(None)

        def _maybe_delayed(_event):
            if self.engine.now < self._spike_until_ns:
                self.engine.timeout(self._spike_extra_ns).then(_arrived)
            else:
                _arrived(_event)

        done.then(_maybe_delayed)
        return delivery

    def pipe_from(self, port):
        """The directional pipe carrying traffic *out of* ``port``.

        Exposed so experiments can measure bandwidth consumed by counter
        updates (Fig. 13's right axis).
        """
        return self._pipes[id(port)]


def daisy_chain(engine, ports, bandwidth=DEFAULT_NTB_BANDWIDTH,
                hop_latency=DEFAULT_NTB_HOP_NS):
    """Wire ``ports`` pairwise into a chain of bridges; returns the bridges.

    The paper's three-server testbed daisy-chains its Dolphin adapters; a
    packet from server 0 to server 2 pays two hops.  Routing across hops is
    the caller's job (the cluster layer resends at each hop), matching how
    the Transport module creates one mirror flow per secondary.
    """
    if len(ports) < 2:
        raise ValueError("a chain needs at least two ports")
    bridges = []
    for left, right in zip(ports, ports[1:]):
        bridges.append(
            NtbBridge(engine, left, right, bandwidth=bandwidth,
                      hop_latency=hop_latency)
        )
    return bridges
