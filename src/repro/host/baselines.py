"""Baseline logging paths the evaluation compares against.

Fig. 9's four non-Villars series each correspond to one class here:

* :class:`NoLogFile` — logging disabled (the upper bound on throughput);
* :class:`NvdimmLogFile` — the "Memory" series: log records persisted in
  host NVDIMM via store + flush (the latency floor);
* :class:`NvmeLogFile` — the "NVMe" series: pwrite/fsync against the
  conventional side through the kernel (syscall + NVMe protocol + flash
  program latency);
* :class:`HostPmRdmaLogFile` — the Fig. 1 (left) pipeline: host-managed
  PM logging with RDMA replication and host-driven destaging, paying the
  four data movements Section 5.1 counts.

All classes share the :class:`XssdLogFile`-compatible surface
(``x_pwrite``/``x_fsync``) so the database engine swaps them freely.
"""

# Cost of entering/leaving the kernel for one syscall (pwrite or fsync).
SYSCALL_NS = 1_500.0


class NoLogFile:
    """Logging disabled: every call completes immediately."""

    def __init__(self, engine):
        self.engine = engine
        self.written = 0

    def x_pwrite(self, payload, nbytes):
        if nbytes <= 0:
            raise ValueError("positive size required")
        self.written += nbytes
        return self.engine.timeout(0.0, value=nbytes)

    def x_fsync(self):
        return self.engine.timeout(0.0, value=self.written)


class NvdimmLogFile:
    """Direct logging into host persistent memory (the 'Memory' series)."""

    def __init__(self, engine, nvdimm):
        self.engine = engine
        self.nvdimm = nvdimm
        self.written = 0
        self.persisted = 0

    def x_pwrite(self, payload, nbytes):
        if nbytes <= 0:
            raise ValueError("positive size required")
        return self.engine.process(self._pwrite(payload, nbytes))

    def _pwrite(self, payload, nbytes):
        yield self.nvdimm.persist(nbytes)
        self.written += nbytes
        self.persisted += nbytes
        return nbytes

    def x_fsync(self):
        # persist() already fenced; nothing further to wait for.
        return self.engine.timeout(0.0, value=self.persisted)


class NvmeLogFile:
    """pwrite/fsync against the conventional NVMe side through the kernel.

    Bytes accumulate in a user buffer; fsync (and any full block) pushes
    them as block writes and waits for durable completion — the classic
    WAL-on-SSD discipline.
    """

    def __init__(self, engine, ssd, start_lba=1_000_000):
        self.engine = engine
        self.ssd = ssd
        self.block_bytes = ssd.block_bytes
        self._next_lba = start_lba
        self._buffered = 0
        self._buffered_payloads = []
        self.written = 0
        self.blocks_written = 0

    def x_pwrite(self, payload, nbytes):
        if nbytes <= 0:
            raise ValueError("positive size required")
        return self.engine.process(self._pwrite(payload, nbytes))

    def _pwrite(self, payload, nbytes):
        yield self.engine.timeout(SYSCALL_NS)
        self._buffered += nbytes
        self._buffered_payloads.append((payload, nbytes))
        self.written += nbytes
        # Full blocks flush eagerly (the OS page cache writes back).
        while self._buffered >= self.block_bytes:
            yield self._write_one_block()
        return nbytes

    def x_fsync(self):
        return self.engine.process(self._fsync())

    def _fsync(self):
        yield self.engine.timeout(SYSCALL_NS)
        while self._buffered > 0:
            yield self._write_one_block()
        return self.written

    def _write_one_block(self):
        taken = min(self.block_bytes, self._buffered)
        self._buffered -= taken
        block_payload = tuple(self._buffered_payloads)
        self._buffered_payloads = []
        lba = self._next_lba
        self._next_lba += 1
        self.blocks_written += 1
        return self.ssd.write(lba, block_payload)


class HostPmRdmaLogFile:
    """Fig. 1 (left): the database coordinates PM, RDMA, and the SSD itself.

    Per log write: (1) store into local NVDIMM; (2) RDMA-write the record
    to the remote host's PM, plus a flush round trip for real durability
    (the DDIO caveat); host-driven destaging — (3) read the record back
    out of NVDIMM and (4) pwrite it to the SSD — runs in the background
    once a block's worth accumulates, stealing host memory bandwidth.
    """

    def __init__(self, engine, nvdimm, qp, ssd, start_lba=2_000_000,
                 destage_block_bytes=None):
        self.engine = engine
        self.nvdimm = nvdimm
        self.qp = qp
        self.ssd = ssd
        self.block_bytes = destage_block_bytes or ssd.block_bytes
        self._next_lba = start_lba
        self._undestaged = 0
        self.written = 0
        self.persisted = 0
        self.data_movements = 0
        self._destage_busy = False

    def x_pwrite(self, payload, nbytes):
        if nbytes <= 0:
            raise ValueError("positive size required")
        return self.engine.process(self._pwrite(payload, nbytes))

    def _pwrite(self, payload, nbytes):
        # Movement 1: CPU stores the record into NVDIMM.
        yield self.nvdimm.persist(nbytes)
        self.data_movements += 1
        # Movement 2: NIC reads host memory and ships it (durably) remote.
        yield self.qp.durable_write(nbytes)
        self.data_movements += 1
        self.written += nbytes
        self.persisted += nbytes
        self._undestaged += nbytes
        if self._undestaged >= self.block_bytes and not self._destage_busy:
            self.engine.process(self._destage_blocks())
        return nbytes

    def x_fsync(self):
        # Both local and remote persistence were synchronous above.
        return self.engine.timeout(0.0, value=self.persisted)

    def _destage_blocks(self):
        """Host-managed destaging: movements 3 (PM read) and 4 (SSD write)."""
        self._destage_busy = True
        try:
            while self._undestaged >= self.block_bytes:
                self._undestaged -= self.block_bytes
                yield self.nvdimm.read(self.block_bytes)  # movement 3
                self.data_movements += 1
                lba = self._next_lba
                self._next_lba += 1
                yield self.ssd.write(lba, ("pm-destage", lba))  # movement 4
                self.data_movements += 1
        finally:
            self._destage_busy = False
