"""Drop-in replacements for pwrite/fsync/pread against a Villars device.

These calls are *not* system calls: they run in user space over MMIO, so
they skip the context-switch penalty the kernel path pays (Section 5.1).
They block cooperatively on the device's credit counter instead — the
back-pressure protocol of Fig. 8:

* ``x_pwrite`` copies the buffer into CMB in chunks, spending the whole
  credit budget before pausing to re-read the counter (the strategy the
  paper found fastest);
* ``x_fsync`` waits until the counter covers every byte this file wrote —
  under a replication policy, that means persisted on the secondaries too;
* ``x_pread`` implements tail-read semantics over the destage ring on the
  conventional side (the secondary-server read path).

All methods return simulation events (they are "blocking" from the
calling process's perspective: ``yield`` them).
"""

from repro.health.errors import CreditStarvation
from repro.sim.units import KIB

# How many bytes one iteration of the copy loop moves at most.  Matching
# the WC buffer gives the best TLP efficiency (Fig. 10: 64 B is optimal).
DEFAULT_COPY_CHUNK = 64


class ReplicationStalled(Exception):
    """x_fsync detected a stale replication path (Section 7.1).

    Raised instead of spinning forever on a credit counter that cannot
    advance because a secondary stopped confirming.  The database should
    reconfigure the transport (drop or replace the peer) and retry.
    """


class XssdLogFile:
    """A host handle to one Villars device's fast side.

    Tracks the written-stream offset and the last credit value seen, which
    together implement the advisory flow-control protocol: never have more
    than ``queue_bytes`` outstanding beyond the last observed credit.
    """

    def __init__(self, device, copy_chunk=DEFAULT_COPY_CHUNK,
                 admission=None, writer_id=None,
                 starvation_deadline_ns=None):
        if copy_chunk <= 0:
            raise ValueError("copy chunk must be positive")
        if starvation_deadline_ns is not None and starvation_deadline_ns <= 0:
            raise ValueError("starvation deadline must be positive")
        self.device = device
        self.engine = device.engine
        self.copy_chunk = copy_chunk
        # Overload protection (optional): an AdmissionController consulted
        # before any stream bytes are claimed, and a bound on how long a
        # call may sit credit-starved before failing with a typed error
        # instead of hanging.  None keeps the classic advisory protocol.
        self.admission = admission
        self.writer_id = writer_id if writer_id is not None else id(self)
        self.starvation_deadline_ns = starvation_deadline_ns
        if admission is not None:
            admission.register_writer(self.writer_id)
        self.written = 0  # bytes issued through THIS handle
        self.high_water = 0  # highest stream offset this handle covered
        self.last_credit = 0  # last counter value read from the device
        self.credit_checks = 0
        # Tail-read cursor for x_pread.
        self._read_sequence = 0

    # -- x_pwrite -------------------------------------------------------------------

    def x_pwrite(self, payload, nbytes):
        """Append ``nbytes`` (identity ``payload``) to the log.

        Event fires when every byte has been issued to the device (not
        necessarily persisted — that is ``x_fsync``'s job).  The call
        blocks whenever the credit budget runs out, re-reading the counter
        as Fig. 8 (top) describes.
        """
        if nbytes <= 0:
            raise ValueError("x_pwrite needs a positive size")
        if self.admission is not None:
            # Synchronous: a rejection raises DeviceBusy before any stream
            # range is claimed, so a rejected write leaves no gap.
            self.admission.admit(self.writer_id, nbytes)
        return self.engine.process(
            self._pwrite_proc(payload, nbytes), name="x_pwrite"
        )

    def _pwrite_proc(self, payload, nbytes):
        try:
            result = yield from self._pwrite_inner(payload, nbytes)
        finally:
            if self.admission is not None:
                self.admission.release(self.writer_id, nbytes)
        return result

    def _pwrite_inner(self, payload, nbytes):
        queue_bytes = self.device.config.cmb_queue_bytes
        remaining = nbytes
        cursor = 0
        tracer = self.engine.tracer
        token = None
        if tracer.enabled:
            # The flow id is filled in with the first claimed stream
            # offset, which is where the host's span links up with the
            # CMB intake spans for the same bytes.
            token = tracer.begin(f"host:{self.device.name}", "x_pwrite",
                                 nbytes=nbytes)
        stalled_since = None
        while remaining > 0:
            # The flow-control budget is device-global: the queue absorbs
            # bytes from every writer sharing the stream.
            outstanding = self.device.stream_claimed - self.last_credit
            budget = queue_bytes - outstanding
            if budget <= 0:
                # Out of credits: pause and re-read the counter (one MMIO
                # round trip), per the protocol.
                if token is not None:
                    tracer.instant(f"host:{self.device.name}",
                                   "credit-stall", outstanding=outstanding)
                if stalled_since is None:
                    stalled_since = self.engine.now
                elif (self.starvation_deadline_ns is not None
                      and self.engine.now - stalled_since
                      > self.starvation_deadline_ns):
                    if token is not None:
                        tracer.end(token, starved=True)
                    raise CreditStarvation(
                        f"x_pwrite starved for "
                        f"{self.engine.now - stalled_since:.0f} ns at "
                        f"credit {self.last_credit}",
                        stalled_for_ns=self.engine.now - stalled_since,
                        credit=self.last_credit,
                        target=self.device.stream_claimed,
                    )
                self.last_credit = yield self.device.read_credit()
                self.credit_checks += 1
                continue
            stalled_since = None
            # Spend the whole budget without intermediate checks.
            burst = min(budget, remaining)
            while burst > 0:
                step = min(self.copy_chunk, burst)
                chunk_payload = (payload, cursor, step)
                # Claim the stream offset *before* yielding: concurrent
                # pwrites (the pipelined flusher runs several) must never
                # allocate overlapping ranges.
                offset = self.device.claim_stream_range(step)
                if token is not None and token.flow is None:
                    tracer.set_flow(token, offset)
                self.written += step
                self.high_water = max(self.high_water, offset + step)
                cursor += step
                burst -= step
                remaining -= step
                yield self.device.fast_write(offset, step, chunk_payload)
        yield self.device.fast_fence()
        if token is not None:
            tracer.end(token, credit_checks=self.credit_checks)
        return nbytes

    # -- x_fsync ----------------------------------------------------------------------

    def x_fsync(self, check_transport_status=True, deadline_ns=None):
        """Block until everything written so far is persisted (Fig. 8 bottom).

        Under a replication policy the counter the device returns already
        reflects the secondaries, so the same loop implements replicated
        durability.  When ``check_transport_status`` is on, a counter
        that stops moving triggers a read of the transport's status
        register; a ``"stale"`` status raises :class:`ReplicationStalled`
        instead of spinning forever (the Section 7.1 error path).

        ``deadline_ns`` (defaulting to the handle's starvation deadline)
        bounds the whole wait: a counter that has not covered the target
        by then raises :class:`~repro.health.errors.CreditStarvation` —
        a typed error the caller can retry, never a silent hang.
        """
        if deadline_ns is None:
            deadline_ns = self.starvation_deadline_ns
        return self.engine.process(
            self._fsync_proc(check_transport_status, deadline_ns),
            name="x_fsync",
        )

    def _fsync_proc(self, check_transport_status, deadline_ns):
        target = self.high_water
        started = self.engine.now
        stagnant_reads = 0
        tracer = self.engine.tracer
        token = None
        if tracer.enabled:
            # Flow id = the stream offset durability must reach, tying the
            # wait to the last chunk it is waiting for.
            token = tracer.begin(f"host:{self.device.name}", "x_fsync",
                                 flow=target, target=target)
        while self.last_credit < target:
            if (deadline_ns is not None
                    and self.engine.now - started > deadline_ns):
                if token is not None:
                    tracer.end(token, starved=True)
                raise CreditStarvation(
                    f"x_fsync starved for {self.engine.now - started:.0f} "
                    f"ns; credit {self.last_credit} of {target}",
                    stalled_for_ns=self.engine.now - started,
                    credit=self.last_credit, target=target,
                )
            previous = self.last_credit
            self.last_credit = yield self.device.read_credit()
            self.credit_checks += 1
            if not check_transport_status:
                continue
            if self.last_credit == previous:
                stagnant_reads += 1
                # Don't hammer the counter while it's flat; give the
                # device time to make progress between polls.
                yield self.engine.timeout(2_000.0)
                if stagnant_reads % 16 == 0:
                    status = self.device.transport.status_register
                    if status == "stale":
                        if token is not None:
                            tracer.end(token, stalled=True)
                        raise ReplicationStalled(
                            f"credit stuck at {self.last_credit} of "
                            f"{target}; transport reports {status!r}"
                        )
            else:
                stagnant_reads = 0
        if token is not None:
            tracer.end(token, credit=self.last_credit)
        return self.last_credit

    # -- x_pread -----------------------------------------------------------------------

    def x_pread(self, min_bytes=1):
        """Tail-read the next destaged data from the conventional side.

        Event value is a list of destaged pages (each carrying its chunk
        list).  Blocks until at least ``min_bytes`` of *new* destaged data
        exist past the cursor.  A fresh handle starts at the ring's head
        (the oldest retained page).
        """
        return self.engine.process(
            self._pread_proc(min_bytes), name="x_pread"
        )

    def _pread_proc(self, min_bytes):
        destage = self.device.destage
        self._read_sequence = max(self._read_sequence, destage.head_sequence)
        page_bytes = destage.page_bytes
        needed_pages = max(1, -(-min_bytes // page_bytes))
        tracer = self.engine.tracer
        token = None
        if tracer.enabled:
            token = tracer.begin(f"host:{self.device.name}", "x_pread",
                                 min_bytes=min_bytes)
        while destage.durable_tail - self._read_sequence < needed_pages:
            yield self.engine.timeout(10_000.0)  # destage progress poll
        pages = []
        while self._read_sequence < destage.durable_tail:
            page = yield destage.read_page(self._read_sequence)
            pages.append(page)
            self._read_sequence += 1
        if token is not None:
            tracer.end(token, pages=len(pages))
        return pages

    # -- diagnostics --------------------------------------------------------------------

    @property
    def unacknowledged_bytes(self):
        """Bytes written but not yet covered by the last credit read."""
        return max(0, self.high_water - self.last_credit)
