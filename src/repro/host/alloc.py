"""The advanced API: exposing the fast side as allocatable memory.

Section 5.2 of the paper sketches an allocator-style interface on top of
the CMB ring: ``x_alloc`` hands out an area at the ring's tail that a
worker thread may fill in any order; the area stays *active* (not
destage-able past it) until ``x_free`` declares it complete.  Parallel log
writers use this to fill transaction log buffers concurrently — the
scalable-logging pattern (Aether-style) the paper cites.

The ring's contiguity machinery already provides the destage criterion:
data destages only up to the contiguous frontier, and the frontier cannot
pass a region whose bytes have not all arrived.  ``x_free`` validates that
the caller actually filled its region.
"""


class CmbRegionHandle:
    """One allocated, independently fillable area of the CMB stream."""

    __slots__ = ("allocator", "offset", "nbytes", "filled", "freed")

    def __init__(self, allocator, offset, nbytes):
        self.allocator = allocator
        self.offset = offset
        self.nbytes = nbytes
        self.filled = 0
        self.freed = False

    def write(self, region_offset, nbytes, payload=None):
        """Fill ``nbytes`` at ``region_offset`` within this region.

        Returns the device's issue event.  Sub-writes may arrive in any
        order; each byte may be written exactly once.
        """
        if self.freed:
            raise ValueError("region already freed")
        if region_offset < 0 or region_offset + nbytes > self.nbytes:
            raise ValueError(
                f"write [{region_offset}, {region_offset + nbytes}) outside "
                f"region of {self.nbytes} bytes"
            )
        self.filled += nbytes
        return self.allocator.device.fast_write(
            self.offset + region_offset, nbytes, payload
        )

    @property
    def is_full(self):
        return self.filled >= self.nbytes


class CmbAllocator:
    """Sequential allocator over the device's CMB stream."""

    def __init__(self, device):
        self.device = device
        self.engine = device.engine
        self.active_regions = 0
        self.allocations = 0

    def x_alloc(self, nbytes):
        """Reserve the next ``nbytes`` of the stream for one writer.

        The range is claimed from the device's single stream-allocation
        point, so allocator regions coexist with other writers (drop-in
        log handles, multi-writer lanes) on the same device.
        """
        if nbytes <= 0:
            raise ValueError("allocation must be positive")
        offset = self.device.claim_stream_range(nbytes)
        handle = CmbRegionHandle(self, offset, nbytes)
        self.active_regions += 1
        self.allocations += 1
        return handle

    def x_free(self, handle):
        """Declare ``handle`` complete; flushes the WC buffer toward it.

        Raises if the region was not fully written — freeing a hole would
        permanently stall the destage frontier behind it.
        """
        if handle.freed:
            raise ValueError("double free of a CMB region")
        if not handle.is_full:
            raise ValueError(
                f"region freed with {handle.nbytes - handle.filled} "
                f"unwritten bytes"
            )
        handle.freed = True
        self.active_regions -= 1
        return self.device.fast_fence()
