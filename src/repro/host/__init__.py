"""Host-side APIs: the drop-in call replacements and baseline log paths.

Section 5 of the paper: the database talks to a Villars device through

* :mod:`repro.host.api` — ``x_pwrite`` / ``x_fsync`` / ``x_pread``,
  user-space drop-in replacements for the familiar syscalls (no context
  switch, credit-based blocking);
* :mod:`repro.host.alloc` — the advanced allocator-style API
  (``x_alloc`` / ``x_free``) that exposes the fast side as memory;
* :mod:`repro.host.baselines` — the comparison paths of the evaluation:
  logging to the conventional NVMe side, to host NVDIMM, to nothing
  (No-Log), and the host-managed PM + RDMA replication pipeline of
  Fig. 1 (left).
"""

from repro.host.alloc import CmbAllocator, CmbRegionHandle
from repro.host.api import ReplicationStalled, XssdLogFile
from repro.host.baselines import (
    HostPmRdmaLogFile,
    NoLogFile,
    NvdimmLogFile,
    NvmeLogFile,
)

__all__ = [
    "XssdLogFile",
    "ReplicationStalled",
    "CmbAllocator",
    "CmbRegionHandle",
    "NvmeLogFile",
    "NvdimmLogFile",
    "NoLogFile",
    "HostPmRdmaLogFile",
]
