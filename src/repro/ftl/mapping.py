"""Page-level logical-to-physical mapping.

``MappingTable`` is pure bookkeeping (dict-based, injective over live
pages); ``PageMappingFtl`` combines it with the allocator and the channels
to serve timed reads and writes, including program-failure handling
(bad-block retirement and replacement, Section 7.1 of the paper).
"""

from repro.ftl.allocator import BlockAllocator
from repro.nand.errors import UncorrectableError
from repro.nand.geometry import PhysicalPageAddress


class ReadRetired(UncorrectableError):
    """Read retries exhausted; the FTL retired the failing block.

    Raised instead of the raw :class:`UncorrectableError` so callers see
    a *typed result* of the firmware's retry-then-retire flow (Section
    7.1): the data at ``lba`` is lost, the block at ``address`` no longer
    accepts placements, and the exception subclasses
    :class:`UncorrectableError` so existing handlers keep working.
    """

    def __init__(self, message, lba=None, address=None, attempts=0):
        super().__init__(message)
        self.lba = lba
        self.address = address
        self.attempts = attempts


class MappingTable:
    """LBA -> physical page map plus reverse map and per-block live counts."""

    def __init__(self, geometry):
        self.geometry = geometry
        self._forward = {}  # lba -> PhysicalPageAddress
        self._reverse = {}  # (channel, way, block, page) -> lba
        self._live_per_block = {}  # (channel, way, block) -> live page count

    def lookup(self, lba):
        """Physical address of ``lba``, or None if never written."""
        return self._forward.get(lba)

    def bind(self, lba, address):
        """Point ``lba`` at ``address``; the old page (if any) becomes dead."""
        key = (address.channel, address.way, address.block, address.page)
        if key in self._reverse:
            raise ValueError(f"physical page {address} double-mapped")
        self.unbind(lba)
        self._forward[lba] = address
        self._reverse[key] = lba
        block_key = key[:3]
        self._live_per_block[block_key] = self._live_per_block.get(block_key, 0) + 1

    def unbind(self, lba):
        """Invalidate the mapping of ``lba`` (on overwrite or trim)."""
        old = self._forward.pop(lba, None)
        if old is None:
            return None
        key = (old.channel, old.way, old.block, old.page)
        del self._reverse[key]
        block_key = key[:3]
        self._live_per_block[block_key] -= 1
        if not self._live_per_block[block_key]:
            del self._live_per_block[block_key]
        return old

    def lba_of(self, address):
        """The LBA currently living at ``address``, or None if dead/empty."""
        return self._reverse.get(
            (address.channel, address.way, address.block, address.page)
        )

    def live_pages_in(self, channel, way, block):
        return self._live_per_block.get((channel, way, block), 0)

    def live_lbas_in(self, channel, way, block):
        """All live LBAs in one block (what GC must migrate)."""
        return [
            lba
            for (ch, w, b, _page), lba in self._reverse.items()
            if (ch, w, b) == (channel, way, block)
        ]

    def __len__(self):
        return len(self._forward)


class PageMappingFtl:
    """The timed FTL: serves logical reads/writes over the channels.

    ``write(lba, payload)`` and ``read(lba)`` return simulation events.
    Program failures (from an optional
    :class:`~repro.nand.ecc.ProgramFaultModel`) retire the block and retry
    placement — the paper's internally handled destage-failure case.
    """

    def __init__(self, engine, channels, geometry, program_fault_model=None,
                 reserved_blocks_per_die=1, read_retry_limit=3, name="ftl"):
        self.engine = engine
        self.channels = channels
        self.geometry = geometry
        self.name = name
        self.table = MappingTable(geometry)
        self.allocator = BlockAllocator(
            geometry, reserved_blocks_per_die=reserved_blocks_per_die
        )
        self.program_fault_model = program_fault_model
        # Uncorrectable reads are retried (real firmware shifts read
        # reference voltages and tries again) up to this many extra
        # attempts before the error propagates to the host.
        self.read_retry_limit = read_retry_limit
        self.writes_served = 0
        self.reads_served = 0
        self.program_failures = 0
        self.read_retries = 0
        self.read_retirements = 0
        self._space_low_callbacks = []

    def on_space_low(self, callback):
        """Register ``callback()`` fired after a write leaves space low.

        The garbage collector hooks this so it wakes exactly when needed
        instead of polling on a timer.
        """
        self._space_low_callbacks.append(callback)

    def write(self, lba, payload, nbytes=None, op_class=None):
        """Persist ``payload`` at ``lba``; event value is the physical address.

        ``op_class`` tags the program for QoS accounting ("destage",
        "conventional", "gc"); cache-program pipelining applies when the
        shared :class:`~repro.nand.dies.DieQos` enables it.
        """
        return self.engine.process(
            self._write_proc(lba, payload, nbytes, op_class),
            name=f"ftl-write {lba}"
        )

    def write_striped(self, items, op_class=None):
        """Persist several pages as one multi-plane program when possible.

        ``items`` is ``[(lba, payload, nbytes), ...]``; event value is the
        list of physical addresses in item order.  Falls back to single-
        plane writes when no aligned stripe is open.
        """
        return self.engine.process(
            self._write_striped_proc(list(items), op_class),
            name=f"ftl-mwrite x{len(items)}"
        )

    def read(self, lba):
        """Read ``lba``; event value is the stored payload."""
        return self.engine.process(self._read_proc(lba), name=f"ftl-read {lba}")

    @property
    def qos(self):
        """The die QoS policy shared by this FTL's channels."""
        return self.channels[0].resources.qos

    # -- internals ---------------------------------------------------------------

    def _write_proc(self, lba, payload, nbytes, op_class=None):
        while True:
            channel_id, way, block, page = self.allocator.place()
            fault = self.program_fault_model
            if fault is not None and fault.should_fail(channel_id, way, block):
                # Grown bad block: retire it, migrate nothing (pages already
                # written there stay readable on real NAND until wear-out;
                # we conservatively only stop placing new data there).
                self.program_failures += 1
                tracer = self.engine.tracer
                if tracer.enabled:
                    tracer.instant(self.name, "program-failure",
                                   channel=channel_id, way=way, block=block)
                self.allocator.mark_bad(channel_id, way, block)
                self.allocator.abandon_open_block(channel_id, way)
                continue
            channel = self.channels[channel_id]
            yield channel.program(
                way, block, page, payload, nbytes,
                cache=channel.resources.qos.cache_program,
            )
            address = PhysicalPageAddress(channel_id, way, block, page)
            self.table.bind(lba, address)
            self.writes_served += 1
            if self._space_low_callbacks and self.allocator.needs_gc():
                for callback in self._space_low_callbacks:
                    callback()
            return address

    def _write_striped_proc(self, items, op_class):
        while True:
            stripe = self.allocator.place_stripe(len(items))
            if stripe is None:
                # No aligned stripe open right now: degrade to the
                # single-plane path per item.
                addresses = []
                for lba, payload, nbytes in items:
                    addresses.append((yield self.write(
                        lba, payload, nbytes, op_class=op_class
                    )))
                return addresses
            channel_id, way = stripe[0][0], stripe[0][1]
            fault = self.program_fault_model
            if fault is not None:
                failed = [
                    block for _ch, _way, block, _page in stripe
                    if fault.should_fail(channel_id, way, block)
                ]
                if failed:
                    self.program_failures += len(failed)
                    tracer = self.engine.tracer
                    for block in failed:
                        if tracer.enabled:
                            tracer.instant(self.name, "program-failure",
                                           channel=channel_id, way=way,
                                           block=block)
                        self.allocator.mark_bad(channel_id, way, block)
                    self.allocator.abandon_open_block(channel_id, way)
                    continue
            channel = self.channels[channel_id]
            ops = [
                (block, page, payload, nbytes)
                for (_ch, _way, block, page), (_lba, payload, nbytes)
                in zip(stripe, items)
            ]
            yield channel.program_multi(
                way, ops, cache=channel.resources.qos.cache_program
            )
            addresses = []
            for (_ch, _way, block, page), (lba, _payload, _nbytes) \
                    in zip(stripe, items):
                address = PhysicalPageAddress(channel_id, way, block, page)
                self.table.bind(lba, address)
                addresses.append(address)
            self.writes_served += len(items)
            if self._space_low_callbacks and self.allocator.needs_gc():
                for callback in self._space_low_callbacks:
                    callback()
            return addresses

    def _read_proc(self, lba):
        address = self.table.lookup(lba)
        if address is None:
            raise KeyError(f"lba {lba} was never written")
        attempt = 0
        while True:
            try:
                page = yield self.channels[address.channel].read(
                    address.way, address.block, address.page
                )
            except UncorrectableError as error:
                if attempt >= self.read_retry_limit:
                    # Retries exhausted: retire the block (it stops taking
                    # new placements; pages already mapped there stay, as
                    # with a program failure) and surface a typed error
                    # instead of the raw ECC exception.
                    self.read_retirements += 1
                    self.allocator.mark_bad(
                        address.channel, address.way, address.block
                    )
                    tracer = self.engine.tracer
                    if tracer.enabled:
                        tracer.instant(self.name, "read-retired", lba=lba,
                                       channel=address.channel,
                                       way=address.way,
                                       block=address.block,
                                       attempts=attempt + 1)
                    raise ReadRetired(
                        f"lba {lba} unreadable after {attempt + 1} "
                        f"attempts; retired block "
                        f"({address.channel}, {address.way}, "
                        f"{address.block})",
                        lba=lba, address=address, attempts=attempt + 1,
                    ) from error
                attempt += 1
                self.read_retries += 1
                tracer = self.engine.tracer
                if tracer.enabled:
                    tracer.instant(self.name, "read-retry", lba=lba,
                                   attempt=attempt)
                continue
            self.reads_served += 1
            return page.payload
