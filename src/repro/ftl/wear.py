"""Wear accounting and leveling across the flash array.

NAND blocks endure a bounded number of program/erase cycles.  The FTL
records per-block erase counts (see
:class:`~repro.nand.flash_array.Block`); this module aggregates them into
fleet statistics and provides the *wear-aware release* policy: erased
blocks re-enter the free pool ordered by erase count, so the allocator
naturally prefers younger blocks and the wear spread stays bounded.

The destage ring is the device's hottest write target (the log loops
over a fixed LBA range forever), which is precisely why a Villars
device needs this: without leveling, the ring's blocks would age far
ahead of the rest of the array.
"""

import bisect


class WearStats:
    """A snapshot of erase-count distribution across the array."""

    __slots__ = ("total_erases", "max_erases", "min_erases", "mean_erases",
                 "blocks")

    def __init__(self, counts):
        self.blocks = len(counts)
        self.total_erases = sum(counts)
        self.max_erases = max(counts) if counts else 0
        self.min_erases = min(counts) if counts else 0
        self.mean_erases = (
            self.total_erases / self.blocks if self.blocks else 0.0
        )

    @property
    def spread(self):
        """Max minus min erases — the wear-leveling quality metric."""
        return self.max_erases - self.min_erases

    def __repr__(self):
        return (
            f"WearStats(blocks={self.blocks}, total={self.total_erases}, "
            f"spread={self.spread}, mean={self.mean_erases:.2f})"
        )


class WearLeveler:
    """Wear-aware free-pool ordering for a :class:`PageMappingFtl`.

    Installation wraps the allocator's ``release`` so erased blocks are
    inserted into the free list in ascending erase-count order.  The
    allocator's placement logic is untouched — it still pops the head —
    which keeps the change minimal and policy-local.
    """

    def __init__(self, ftl):
        self.ftl = ftl
        self._installed = False
        self._original_release = None

    def install(self):
        if self._installed:
            raise RuntimeError("wear leveler already installed")
        self._installed = True
        allocator = self.ftl.allocator
        previous = allocator.release
        self._original_release = previous
        channels = self.ftl.channels

        def wear_aware_release(channel, way, block):
            # Compose with whatever ``release`` is already installed
            # (the allocator's own, or another hook such as a fault
            # injector's): run it first, then reorder the free list.
            previous(channel, way, block)
            free = allocator._free[(channel, way)]
            if block not in free:
                # The inner release dropped the block (bad block, or a
                # hook swallowed it) — nothing to reorder.
                return
            free.remove(block)
            die_blocks = channels[channel].die(way).blocks
            erases = die_blocks[block].erase_count
            keyed = [die_blocks[b].erase_count for b in free]
            index = bisect.bisect_right(keyed, erases)
            free.insert(index, block)

        allocator.release = wear_aware_release
        return self

    def uninstall(self):
        if not self._installed:
            return
        self.ftl.allocator.release = self._original_release
        self._installed = False

    # -- statistics --------------------------------------------------------------

    def stats(self):
        """Erase-count statistics over every non-bad block."""
        counts = []
        bad = self.ftl.allocator.bad_blocks
        for channel_id, channel in enumerate(self.ftl.channels):
            for way, die in enumerate(channel.dies):
                for block_id, block in enumerate(die.blocks):
                    if (channel_id, way, block_id) in bad:
                        continue
                    counts.append(block.erase_count)
        return WearStats(counts)

    def hottest_blocks(self, limit=5):
        """The ``limit`` most-erased blocks, for diagnostics."""
        entries = []
        for channel_id, channel in enumerate(self.ftl.channels):
            for way, die in enumerate(channel.dies):
                for block_id, block in enumerate(die.blocks):
                    entries.append(
                        (block.erase_count, channel_id, way, block_id)
                    )
        entries.sort(reverse=True)
        return entries[:limit]
