"""Flash Translation Layer: logical-to-physical mapping, GC, wear, bad blocks.

The FTL is the heart of the Firmware subsystem (Section 2.2): it picks the
physical flash page for every logical write, reclaims space with garbage
collection, retires bad blocks, and levels wear.  The Villars device reuses
the conventional FTL unchanged — its fast side only adds the destage ring
as one more *client* of the FTL — so this implementation serves both sides.
"""

from repro.ftl.allocator import BlockAllocator, OutOfSpaceError
from repro.ftl.gc import GarbageCollector
from repro.ftl.mapping import MappingTable, PageMappingFtl
from repro.ftl.wear import WearLeveler, WearStats

__all__ = [
    "MappingTable",
    "PageMappingFtl",
    "BlockAllocator",
    "OutOfSpaceError",
    "GarbageCollector",
    "WearLeveler",
    "WearStats",
]
