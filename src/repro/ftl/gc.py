"""Greedy garbage collection: reclaim the block with the fewest live pages.

GC runs as a background process woken *by the FTL* whenever a placement
leaves some die's free pool at its reserve threshold (event-driven, no
polling timer — so an idle device schedules no events and simulations
terminate naturally).  A collection cycle picks the victim block with
minimum live count, migrates its live pages to fresh placements (through
the normal write path, so the mapping stays consistent), erases the
victim, and returns it to the allocator.
"""


class GarbageCollector:
    """Background space reclamation for a :class:`PageMappingFtl`."""

    def __init__(self, engine, ftl, check_period_ns=100_000.0, name="gc"):
        self.engine = engine
        self.ftl = ftl
        self.check_period_ns = check_period_ns
        self.name = name
        self.collections = 0
        self.pages_migrated = 0
        self._running = False
        self._wakeup = engine.event()

    def start(self):
        """Launch the background GC loop and hook the FTL's low-space signal."""
        if self._running:
            raise RuntimeError("GC already started")
        self._running = True
        self.ftl.on_space_low(self._on_space_low)
        return self.engine.process(self._loop(), name="gc-loop")

    def stop(self):
        self._running = False
        self._on_space_low()

    def _on_space_low(self):
        if not self._wakeup.triggered:
            self._wakeup.succeed()

    def _loop(self):
        while self._running:
            if self._wakeup.triggered:
                self._wakeup = self.engine.event()
            else:
                yield self._wakeup
                continue
            while self._running and self.ftl.allocator.needs_gc():
                victim = self.select_victim()
                if victim is None:
                    # Nothing collectible right now; wait for more writes
                    # to close open blocks, then re-check.
                    break
                yield self.engine.process(self.collect(victim))

    # -- policy ----------------------------------------------------------------

    def select_victim(self):
        """Greedy policy: the fully written block with fewest live pages.

        Only blocks that are not currently open for writing are candidates;
        the mapping's live count gives the migration cost directly.  Equal
        live counts break toward the *least-erased* block: a hot workload
        keeps producing fully-dead blocks, and a wear-blind tie-break
        (first block scanned wins) would funnel those erases by scan
        order, letting an already-skewed die skew further forever.
        """
        table = self.ftl.table
        geometry = self.ftl.geometry
        best = None
        best_live = None
        best_wear = None
        open_blocks = {
            (cursor.channel, cursor.way, block)
            for cursor in self.ftl.allocator._cursors.values()
            for block in cursor.blocks
        }
        for channel_id in range(geometry.channels):
            channel = self.ftl.channels[channel_id]
            for way in range(geometry.ways_per_channel):
                die = channel.die(way)
                for block_id, block in enumerate(die.blocks):
                    key = (channel_id, way, block_id)
                    if block.is_bad or key in open_blocks:
                        continue
                    if not block.is_full:
                        continue
                    live = table.live_pages_in(*key)
                    wear = block.erase_count
                    if (best_live is None or live < best_live
                            or (live == best_live and wear < best_wear)):
                        best, best_live, best_wear = key, live, wear
        return best

    # -- mechanism --------------------------------------------------------------

    def collect(self, victim):
        """Migrate live pages out of ``victim``, erase it, free it."""
        channel_id, way, block = victim
        channel = self.ftl.channels[channel_id]
        tracer = self.engine.tracer
        token = None
        if tracer.enabled:
            token = tracer.begin(self.name, "collect", channel=channel_id,
                                 way=way, block=block)
        migrated = 0
        for lba in self.ftl.table.live_lbas_in(channel_id, way, block):
            address = self.ftl.table.lookup(lba)
            page = yield channel.read(address.way, address.block, address.page)
            yield self.ftl.write(lba, page.payload, page.nbytes,
                                 op_class="gc")
            self.pages_migrated += 1
            migrated += 1
        # GC erases carry their class so the QoS policy can let host
        # reads suspend them (see repro/nand/dies.py).
        yield channel.erase(way, block, op_class="gc")
        self.ftl.allocator.release(channel_id, way, block)
        self.collections += 1
        if token is not None:
            tracer.end(token, pages_migrated=migrated)
