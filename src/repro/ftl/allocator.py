"""Free-block allocation across the flash array.

The allocator hands out erased blocks for writing and tracks each die's
free pool.  Placement policy is channel-striping round-robin, which is what
gives the device its parallelism: consecutive pages land on different
channels so their cell phases overlap.
"""


class OutOfSpaceError(Exception):
    """No erased block is available anywhere in the array."""


class BlockCursor:
    """An open block being filled page by page on one die."""

    __slots__ = ("channel", "way", "block", "next_page")

    def __init__(self, channel, way, block):
        self.channel = channel
        self.way = way
        self.block = block
        self.next_page = 0


class BlockAllocator:
    """Tracks free / open / full / bad blocks per die and places pages.

    ``place()`` returns ``(channel, way, block, page)`` for the next write,
    striping across channels then ways.  A block is returned to the free
    pool by :meth:`release` after the GC erases it.
    """

    def __init__(self, geometry, reserved_blocks_per_die=1):
        self.geometry = geometry
        # Free-block lists per (channel, way); blocks are identified by index.
        self._free = {
            (channel, way): list(range(geometry.blocks_per_die))
            for channel in range(geometry.channels)
            for way in range(geometry.ways_per_channel)
        }
        self._bad = set()  # (channel, way, block)
        self._cursors = {}  # (channel, way) -> BlockCursor
        self._die_order = [
            (channel, way)
            for way in range(geometry.ways_per_channel)
            for channel in range(geometry.channels)
        ]
        self._next_die = 0
        # GC must always find a spare block to migrate into.
        self.reserved_blocks_per_die = reserved_blocks_per_die

    # -- placement ----------------------------------------------------------------

    def place(self):
        """Choose the physical page for the next write.

        Returns ``(channel, way, block, page)``.  Raises
        :class:`OutOfSpaceError` when every die is exhausted (the GC should
        have run long before this).
        """
        for _ in range(len(self._die_order)):
            die = self._die_order[self._next_die]
            self._next_die = (self._next_die + 1) % len(self._die_order)
            cursor = self._cursor_for(die)
            if cursor is None:
                continue
            placement = (die[0], die[1], cursor.block, cursor.next_page)
            cursor.next_page += 1
            if cursor.next_page >= self.geometry.pages_per_block:
                del self._cursors[die]
            return placement
        raise OutOfSpaceError("no erased blocks left on any die")

    def _cursor_for(self, die):
        cursor = self._cursors.get(die)
        if cursor is not None:
            return cursor
        free = self._free[die]
        while free:
            block = free.pop(0)
            if (die[0], die[1], block) in self._bad:
                continue
            cursor = BlockCursor(die[0], die[1], block)
            self._cursors[die] = cursor
            return cursor
        return None

    # -- lifecycle ------------------------------------------------------------------

    def release(self, channel, way, block):
        """Return an erased block to the free pool."""
        if (channel, way, block) in self._bad:
            return
        self._free[(channel, way)].append(block)

    def mark_bad(self, channel, way, block):
        """Retire a block permanently (grown bad block)."""
        self._bad.add((channel, way, block))
        # Purge it from the free pool eagerly (a lazily-skipped bad block
        # would inflate free_blocks() and trip the integrity oracle).
        free = self._free[(channel, way)]
        if block in free:
            free.remove(block)
        cursor = self._cursors.get((channel, way))
        if cursor is not None and cursor.block == block:
            del self._cursors[(channel, way)]

    def abandon_open_block(self, channel, way):
        """Drop the open cursor on a die (after a program failure)."""
        self._cursors.pop((channel, way), None)

    # -- introspection ---------------------------------------------------------------

    def free_blocks(self, channel=None, way=None):
        """Count of free (erased, not bad) blocks, optionally for one die."""
        if channel is not None and way is not None:
            return len(self._free[(channel, way)])
        return sum(len(blocks) for blocks in self._free.values())

    @property
    def bad_blocks(self):
        return set(self._bad)

    def needs_gc(self):
        """True when some die's free pool fell to the reserve threshold."""
        return any(
            len(blocks) <= self.reserved_blocks_per_die
            for blocks in self._free.values()
        )
