"""Free-block allocation across the flash array.

The allocator hands out erased blocks for writing and tracks each die's
free pool.  Placement policy is channel-striping round-robin, which is what
gives the device its parallelism: consecutive pages land on different
channels so their cell phases overlap.

With a multi-plane geometry (``planes_per_die > 1``) the allocator is
*plane-aware*: an open cursor holds one aligned block per plane of its die
and fills them in lockstep (page 0 on every plane, then page 1, ...), so
:meth:`place_stripe` can hand the scheduler a whole multi-plane program's
worth of aligned placements at once.  On a single-plane geometry the
behavior is exactly the classic one-block cursor.
"""


class OutOfSpaceError(Exception):
    """No erased block is available anywhere in the array."""


class BlockCursor:
    """An open stripe of aligned blocks being filled page by page.

    ``blocks`` holds one block per plane (a single block on single-plane
    geometries, or when no aligned stripe was free).  Pages fill round-
    robin across the planes so every block obeys NAND's ascending
    program-order rule.
    """

    __slots__ = ("channel", "way", "blocks", "next_page", "next_plane")

    def __init__(self, channel, way, blocks):
        self.channel = channel
        self.way = way
        self.blocks = list(blocks)
        self.next_page = 0
        self.next_plane = 0

    @property
    def block(self):
        """The block the *next* placement lands on (compat accessor)."""
        return self.blocks[self.next_plane]


class BlockAllocator:
    """Tracks free / open / full / bad blocks per die and places pages.

    ``place()`` returns ``(channel, way, block, page)`` for the next write,
    striping across channels then ways (then planes within a die's open
    stripe).  A block is returned to the free pool by :meth:`release`
    after the GC erases it.
    """

    def __init__(self, geometry, reserved_blocks_per_die=1):
        self.geometry = geometry
        self.planes = geometry.planes_per_die
        # Free-block lists per (channel, way); blocks are identified by index.
        self._free = {
            (channel, way): list(range(geometry.blocks_per_die))
            for channel in range(geometry.channels)
            for way in range(geometry.ways_per_channel)
        }
        self._bad = set()  # (channel, way, block)
        self._cursors = {}  # (channel, way) -> BlockCursor
        self._die_order = [
            (channel, way)
            for way in range(geometry.ways_per_channel)
            for channel in range(geometry.channels)
        ]
        self._next_die = 0
        # GC must always find a spare block to migrate into.
        self.reserved_blocks_per_die = reserved_blocks_per_die

    # -- placement ----------------------------------------------------------------

    def place(self):
        """Choose the physical page for the next write.

        Returns ``(channel, way, block, page)``.  Raises
        :class:`OutOfSpaceError` when every die is exhausted (the GC should
        have run long before this).

        On a multi-plane geometry, single placements *prefer* a die whose
        stripe cursor sits mid-page (``next_plane != 0``): completing
        that page realigns the cursor to a plane boundary so
        :meth:`place_stripe` can use the die again.  Without this, a
        stream that mixes single and striped writes permanently
        fragments cursors and funnels every stripe onto the few dies
        that happen to stay aligned.
        """
        if self.planes > 1:
            for offset in range(len(self._die_order)):
                die = self._die_order[
                    (self._next_die + offset) % len(self._die_order)
                ]
                cursor = self._cursors.get(die)
                if cursor is not None and cursor.next_plane != 0:
                    placement = (
                        die[0], die[1], cursor.blocks[cursor.next_plane],
                        cursor.next_page,
                    )
                    self._advance(die, cursor)
                    return placement
        for _ in range(len(self._die_order)):
            die = self._die_order[self._next_die]
            self._next_die = (self._next_die + 1) % len(self._die_order)
            cursor = self._cursor_for(die)
            if cursor is None:
                continue
            placement = (
                die[0], die[1], cursor.blocks[cursor.next_plane],
                cursor.next_page,
            )
            self._advance(die, cursor)
            return placement
        raise OutOfSpaceError("no erased blocks left on any die")

    def place_stripe(self, count):
        """Aligned multi-plane placements: one page per plane of one die.

        Returns ``[(channel, way, block, page), ...]`` of length ``count``
        (every entry shares the channel, way, and page offset — ready for
        :meth:`~repro.nand.channel.Channel.program_multi`), or ``None``
        when the next stripe-capable die's cursor sits mid-page — the
        caller then falls back to single placements, which :meth:`place`
        routes to exactly such fragmented cursors to realign them.
        Giving up early (instead of skipping fragmented dies) is what
        keeps striped traffic spread across the array rather than
        stacking on whichever dies stayed aligned.
        """
        if count < 2 or count > self.planes:
            return None
        for _ in range(len(self._die_order)):
            die = self._die_order[self._next_die]
            cursor = self._cursor_for(die)
            if cursor is None:
                self._next_die = (self._next_die + 1) % len(self._die_order)
                continue
            if len(cursor.blocks) == count and cursor.next_plane == 0:
                self._next_die = (self._next_die + 1) % len(self._die_order)
                page = cursor.next_page
                placements = [
                    (die[0], die[1], block, page) for block in cursor.blocks
                ]
                cursor.next_page += 1
                if cursor.next_page >= self.geometry.pages_per_block:
                    del self._cursors[die]
                return placements
            if len(cursor.blocks) >= count and cursor.next_plane != 0:
                # Fragmented stripe cursor: leave ``_next_die`` pointing
                # here so the caller's single-write fallback lands on
                # this die and realigns it.
                return None
            # Single-block cursor: this die cannot take a stripe.
            self._next_die = (self._next_die + 1) % len(self._die_order)
        return None

    def _advance(self, die, cursor):
        cursor.next_plane += 1
        if cursor.next_plane >= len(cursor.blocks):
            cursor.next_plane = 0
            cursor.next_page += 1
            if cursor.next_page >= self.geometry.pages_per_block:
                del self._cursors[die]

    def _cursor_for(self, die):
        cursor = self._cursors.get(die)
        if cursor is not None:
            return cursor
        free = self._free[die]
        if self.planes > 1:
            stripe = self._find_stripe(die, free)
            if stripe is not None:
                for block in stripe:
                    free.remove(block)
                cursor = BlockCursor(die[0], die[1], stripe)
                self._cursors[die] = cursor
                return cursor
        while free:
            block = free.pop(0)
            if (die[0], die[1], block) in self._bad:
                continue
            cursor = BlockCursor(die[0], die[1], [block])
            self._cursors[die] = cursor
            return cursor
        return None

    def _find_stripe(self, die, free):
        """First fully-free, fully-good aligned stripe on this die."""
        planes = self.planes
        members = set(free)
        for block in free:
            if block % planes:
                continue
            stripe = list(range(block, block + planes))
            if all(b in members
                   and (die[0], die[1], b) not in self._bad
                   for b in stripe):
                return stripe
        return None

    # -- lifecycle ------------------------------------------------------------------

    def release(self, channel, way, block):
        """Return an erased block to the free pool."""
        if (channel, way, block) in self._bad:
            return
        self._free[(channel, way)].append(block)

    def mark_bad(self, channel, way, block):
        """Retire a block permanently (grown bad block)."""
        self._bad.add((channel, way, block))
        # Purge it from the free pool eagerly (a lazily-skipped bad block
        # would inflate free_blocks() and trip the integrity oracle).
        free = self._free[(channel, way)]
        if block in free:
            free.remove(block)
        cursor = self._cursors.get((channel, way))
        if cursor is not None and block in cursor.blocks:
            self._abandon_cursor((channel, way), cursor, exclude=block)

    def abandon_open_block(self, channel, way):
        """Drop the open cursor on a die (after a program failure)."""
        self._cursors.pop((channel, way), None)

    def _abandon_cursor(self, die, cursor, exclude=None):
        """Drop a cursor; untouched stripe mates return to the free pool."""
        del self._cursors[die]
        for block in cursor.blocks:
            if block == exclude:
                continue
            # Blocks that already took pages are no longer erased; they
            # stay out of the pool until the GC collects and erases them.
            # On a lockstep-filled stripe only blocks *behind* next_plane
            # at page 0 are still pristine.
            plane = cursor.blocks.index(block)
            untouched = (cursor.next_page == 0 and plane >= cursor.next_plane)
            if untouched and (die[0], die[1], block) not in self._bad:
                self._free[die].append(block)

    # -- introspection ---------------------------------------------------------------

    def free_blocks(self, channel=None, way=None):
        """Count of free (erased, not bad) blocks, optionally for one die."""
        if channel is not None and way is not None:
            return len(self._free[(channel, way)])
        return sum(len(blocks) for blocks in self._free.values())

    @property
    def bad_blocks(self):
        return set(self._bad)

    def needs_gc(self):
        """True when some die's free pool fell to the reserve threshold."""
        return any(
            len(blocks) <= self.reserved_blocks_per_die
            for blocks in self._free.values()
        )
