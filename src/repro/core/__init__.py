"""The X-SSD core: the paper's contribution.

This package implements the three modules of the Villars reference design
(Section 4, Fig. 4) on top of the conventional-SSD substrate:

* :mod:`repro.core.cmb` — the **CMB module**: a PM-backed, byte-addressable
  append area behind an MMIO window, with an SRAM intake queue, a credit
  counter, and credit-based advisory flow control (Section 4.1);
* :mod:`repro.core.transport` — the **Transport module**: mirrors the CMB
  write stream to peer devices over NTB, maintains shadow counters, and
  computes the replication-policy-visible counter (Section 4.2);
* :mod:`repro.core.destage` — the **Destage module**: moves the CMB ring's
  contiguous data into a ring of logical blocks on the conventional side,
  bundling pages and meeting a latency threshold with filler (Section 4.3);

plus the pieces that bind them:

* :mod:`repro.core.ring` — the sequenced ring buffer both sides share,
  enforcing the paper's gap rule (credit only advances over contiguous
  data);
* :mod:`repro.core.replication` — eager / lazy / chain counter policies;
* :mod:`repro.core.crash` — the power-loss protocol (destage-on-crash
  under supercapacitor reserve energy);
* :mod:`repro.core.device` — the assembled :class:`XssdDevice` and the
  Villars configurations (SRAM- and DRAM-backed).
"""

from repro.core.cmb import CmbModule
from repro.core.config import VillarsConfig, villars_dram, villars_sram
from repro.core.crash import PowerLossInjector
from repro.core.destage import DestageModule
from repro.core.device import XssdDevice
from repro.core.multiwriter import MultiWriterCmb, WriterLane
from repro.core.virtualization import CmbSegment, SegmentedCmb
from repro.core.replication import (
    ChainReplication,
    EagerReplication,
    LazyReplication,
    ReplicationPolicy,
)
from repro.core.ring import RingOverflowError, SequencedRing
from repro.core.transport import TransportModule, TransportRole

__all__ = [
    "SequencedRing",
    "RingOverflowError",
    "CmbModule",
    "DestageModule",
    "TransportModule",
    "TransportRole",
    "ReplicationPolicy",
    "EagerReplication",
    "LazyReplication",
    "ChainReplication",
    "PowerLossInjector",
    "XssdDevice",
    "MultiWriterCmb",
    "WriterLane",
    "SegmentedCmb",
    "CmbSegment",
    "VillarsConfig",
    "villars_sram",
    "villars_dram",
]
