"""Replication policies: what counter value the database gets to see.

Section 4.2: shadow counters can be combined in different ways, each
yielding a different replication protocol.

* **Eager** (the Villars default): the value returned is the most-delayed
  counter among the secondaries — a log entry counts as persisted only
  when it is persisted on *every* secondary.
* **Lazy**: return the primary's own counter; secondaries catch up
  asynchronously and never gate the database.
* **Chain**: return the counter of the *last* secondary in the chain;
  intermediate servers relay the tail's progress.

All policies are pure functions of ``(local_counter, shadow_counters)``
so they can be swapped at runtime via an admin command and property-tested
in isolation.
"""


class ReplicationPolicy:
    """Interface: combine local and shadow counters into the visible value."""

    name = "abstract"

    def visible_counter(self, local_value, shadows):
        """``shadows`` is an ordered mapping peer-name -> counter value."""
        raise NotImplementedError

    def __repr__(self):
        return f"{type(self).__name__}()"


class EagerReplication(ReplicationPolicy):
    """Persisted everywhere or not persisted at all (primary-secondary eager)."""

    name = "eager"

    def visible_counter(self, local_value, shadows):
        if not shadows:
            return local_value
        return min(min(shadows.values()), local_value)


class LazyReplication(ReplicationPolicy):
    """The database proceeds at local speed; replication trails behind."""

    name = "lazy"

    def visible_counter(self, local_value, shadows):
        return local_value


class ChainReplication(ReplicationPolicy):
    """Acknowledge at the pace of the chain's tail.

    The transport wires each device to report its successor's progress, so
    the primary's single shadow already reflects the tail; the policy just
    returns it (bounded by local persistence).
    """

    name = "chain"

    def visible_counter(self, local_value, shadows):
        if not shadows:
            return local_value
        # The primary keeps one shadow per direct successor; under chain
        # topology there is exactly one, already carrying the tail's value.
        tail_value = list(shadows.values())[-1]
        return min(tail_value, local_value)


POLICIES = {
    policy.name: policy
    for policy in (EagerReplication(), LazyReplication(), ChainReplication())
}


def policy_by_name(name):
    """Look up a policy instance by its wire name (admin command argument)."""
    try:
        return POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown replication policy {name!r}; "
            f"choose from {sorted(POLICIES)}"
        ) from None
