"""The power-loss protocol: what survives a sudden crash.

Section 4.1 ("Crash Consistency Behavior"): on power loss the CMB module
uses the Destage module to destage the CMB ring in full, under reserve
energy (supercapacitors / independent power in the prototype).  Destaging
stops at the first *gap* in the stream — consistent with the credit
counter, which also only advances over contiguous data.  After reboot, the
application finds the destaged prefix on the conventional side.

The injector also supports *failing* the reserve energy (an ablation the
paper's guarantees rule out, useful for testing that recovery code detects
truncated logs).
"""


class CrashReport:
    """What the power-loss event did, for assertions and post-mortems."""

    def __init__(self, at_time, queue_bytes_salvaged, pages_destaged,
                 chunks_lost_beyond_gap, durable_offset,
                 reserve_energy_ok=True, credit_at_crash=0):
        self.at_time = at_time
        self.queue_bytes_salvaged = queue_bytes_salvaged
        self.pages_destaged = pages_destaged
        self.chunks_lost_beyond_gap = chunks_lost_beyond_gap
        self.durable_offset = durable_offset
        self.reserve_energy_ok = reserve_energy_ok
        self.credit_at_crash = credit_at_crash

    def as_dict(self):
        """Plain-data form, for JSON output and byte-exact run comparison."""
        return {
            "at_time": self.at_time,
            "queue_bytes_salvaged": self.queue_bytes_salvaged,
            "pages_destaged": self.pages_destaged,
            "chunks_lost_beyond_gap": self.chunks_lost_beyond_gap,
            "durable_offset": self.durable_offset,
            "reserve_energy_ok": self.reserve_energy_ok,
            "credit_at_crash": self.credit_at_crash,
        }

    def __repr__(self):
        return (
            f"CrashReport(t={self.at_time:.0f}ns, "
            f"salvaged={self.queue_bytes_salvaged}B, "
            f"pages={self.pages_destaged}, "
            f"lost_chunks={self.chunks_lost_beyond_gap}, "
            f"durable_offset={self.durable_offset}, "
            f"reserve={'ok' if self.reserve_energy_ok else 'FAILED'})"
        )


class PowerLossInjector:
    """Injects a sudden power interruption into one X-SSD device."""

    def __init__(self, engine, device, reserve_energy_ok=True):
        self.engine = engine
        self.device = device
        self.reserve_energy_ok = reserve_energy_ok
        self.crashes = []

    def fail_supercap(self):
        """Degrade the reserve-energy path: the next crash is dirty.

        This is the ablation the paper's guarantees rule out — a failed
        supercapacitor means the intake queue and the un-destaged ring are
        lost, so recovery must detect a log truncated *below* the credit
        counter the host last saw.
        """
        self.reserve_energy_ok = False
        return self

    def power_loss(self):
        """Cut power now; returns a :class:`CrashReport`.

        With reserve energy: the intake queue drains to PM and the full
        contiguous ring destages to flash.  Without (supercap failure):
        queue contents are lost; only what already reached backing memory
        and flash survives.
        """
        device = self.device
        credit_at_crash = device.cmb.credit.value
        tracer = self.engine.tracer
        if tracer.enabled:
            tracer.instant(device.name, "power-loss",
                           credit=credit_at_crash,
                           reserve_ok=self.reserve_energy_ok)
        device.halt()
        salvaged = 0
        pages = 0
        if self.reserve_energy_ok:
            salvaged = device.cmb.drain_pending_to_backing()
            pages = device.destage.destage_all_now()
        lost = device.cmb.ring.drop_pending()
        report = CrashReport(
            at_time=self.engine.now,
            queue_bytes_salvaged=salvaged,
            pages_destaged=pages,
            chunks_lost_beyond_gap=lost,
            durable_offset=device.destage.destaged_offset,
            reserve_energy_ok=self.reserve_energy_ok,
            credit_at_crash=credit_at_crash,
        )
        self.crashes.append(report)
        return report
