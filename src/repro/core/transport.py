"""The Transport module: replicating the CMB stream across devices.

Data path (Fig. 6 of the paper): the primary's transport taps the CMB
intake, repackages each chunk as a TLP, and ships it over NTB to each
secondary — one mirror flow per secondary, each advancing at its own
pace.  A secondary's transport feeds arriving packets into its own CMB
module (so the secondary's persistence pipeline is identical to a local
write), and periodically reports its credit counter back to the primary,
which stores it in a *shadow counter*.

Control knobs:

* **role** — standalone / primary / secondary, switched at runtime via
  vendor-specific NVMe admin commands;
* **update period** — how often a secondary forwards its counter
  (Fig. 13's x-axis): frequent updates give the primary a fresh, tight
  view at the cost of interconnect bandwidth;
* **replication policy** — how the primary combines shadow counters into
  the value the database sees (:mod:`repro.core.replication`).
"""

import enum

from repro.core.replication import EagerReplication
from repro.pcie.tlp import Tlp, TlpType
from repro.sim.rng import derive
from repro.sim.stats import Counter

# Wire size of one credit-counter update: an 8-byte counter value in a
# minimal memory-write TLP.
COUNTER_UPDATE_BYTES = 8

# Per-chunk repackaging cost in the mirror path: the transport rewrites
# the TLP's address for the peer's domain and re-queues it on the NTB
# port (Section 4.2 "the module repackages the traffic").
MIRROR_REPACKAGE_NS = 800.0

# Cost of composing and posting one counter-update TLP on the secondary.
COUNTER_UPDATE_COST_NS = 400.0


class TransportRole(enum.Enum):
    STANDALONE = "standalone"
    PRIMARY = "primary"
    SECONDARY = "secondary"


class MirrorFlow:
    """One primary->secondary replication stream.

    Chunks queue here and a dedicated pump ships them in order over the
    NTB port, so a slow secondary delays only its own flow (Section 4.2:
    "it allows each secondary to receive traffic at an independent
    pace").

    Sends observed as dropped at the link layer are retried with bounded
    exponential backoff (the PCIe data-link layer's replay, writ large):
    ``retry_limit`` extra attempts spaced ``retry_backoff_ns * 2**n``
    apart, each scaled by seeded jitter in [0.5, 1.5) so concurrent
    flows do not replay in lockstep.  The jitter stream comes from
    ``rng`` (derived from the device's ``transport_seed``), which keeps
    chaos runs byte-deterministic.  A chunk that exhausts its retries is
    *abandoned* — recorded so reconfiguration-time resync can re-ship
    the range — because an unbounded replay against a dead cable would
    wedge the flow forever.
    """

    def __init__(self, engine, peer_name, ntb_port, retry_limit=4,
                 retry_backoff_ns=5_000.0, rng=None, name=None):
        self.engine = engine
        self.peer_name = peer_name
        self.ntb_port = ntb_port
        self.retry_limit = retry_limit
        self.retry_backoff_ns = retry_backoff_ns
        self._rng = rng
        self.name = name or f"mirror->{peer_name}"
        self._backlog = []
        self._kick = engine.event()
        self.bytes_shipped = 0
        self.sends_retried = 0
        self.chunks_abandoned = []  # (offset, nbytes) given up after retries
        self.running = True

    def offer(self, offset, nbytes, payload):
        self._backlog.append((offset, nbytes, payload))
        if not self._kick.triggered:
            self._kick.succeed()

    def pump(self):
        # The tracer is fixed for the engine's lifetime; resolving it (and
        # its enabled flag) once keeps the per-chunk loop free of
        # attribute-chain lookups.
        tracer = self.engine.tracer
        tracing = tracer.enabled
        while self.running:
            if not self._backlog:
                if self._kick.triggered:
                    self._kick = self.engine.event()
                    continue
                yield self._kick
                continue
            offset, nbytes, payload = self._backlog.pop(0)
            token = None
            if tracing:
                # One span per mirrored chunk: repackage -> delivered (or
                # abandoned).  Flow id = stream offset, linking the span
                # to the primary's intake and the peer's intake.
                token = tracer.begin(self.name, "mirror-ship", flow=offset,
                                     nbytes=nbytes)
            yield self.engine.timeout(MIRROR_REPACKAGE_NS)
            attempt = 0
            while self.running:
                tlp = Tlp(
                    TlpType.MEMORY_WRITE,
                    address=offset,
                    payload=nbytes,
                    metadata={"contributions": [(offset, nbytes, payload)],
                              "kind": "mirror"},
                )
                delivered = yield self.ntb_port.send(tlp)
                if delivered is not None:
                    self.bytes_shipped += nbytes
                    if token is not None:
                        tracer.end(token, attempts=attempt + 1)
                        token = None
                    break
                if attempt >= self.retry_limit:
                    self.chunks_abandoned.append((offset, nbytes))
                    if token is not None:
                        tracer.instant(self.name, "chunk-abandoned",
                                       flow=offset, nbytes=nbytes)
                        tracer.end(token, abandoned=True,
                                   attempts=attempt + 1)
                        token = None
                    break
                self.sends_retried += 1
                if token is not None:
                    tracer.instant(self.name, "send-retried", flow=offset,
                                   attempt=attempt)
                backoff = self.retry_backoff_ns * (2 ** attempt)
                if self._rng is not None:
                    backoff *= 0.5 + self._rng.random()
                yield self.engine.timeout(backoff)
                attempt += 1


class TransportModule:
    """Role-aware replication engine of one X-SSD device."""

    def __init__(self, engine, cmb, name="transport",
                 update_period_ns=400.0, policy=None, seed=0):
        self.engine = engine
        self.cmb = cmb
        self.name = name
        # Pre-resolved tracing guard: the tracer never changes after the
        # engine is built, so the receive path pays zero attribute chains
        # per packet when tracing is off.
        self._tracer = engine.tracer
        self._tracing = engine.tracer.enabled
        self.role = TransportRole.STANDALONE
        self.update_period_ns = update_period_ns
        self.policy = policy or EagerReplication()
        # Root of every randomized decision this transport makes (today:
        # mirror-retry backoff jitter).  Scenario builders thread their
        # master seed through the device config so runs replay exactly.
        self.seed = seed
        self.ntb_port = None
        self._flows = {}  # peer name -> MirrorFlow
        self.shadow_counters = {}  # peer name -> Counter
        # When each peer's last counter update arrived, by peer name —
        # heartbeat evidence for the failure detectors (repro.health).
        self.update_arrival_ns = {}
        self._primary_port = None  # secondary: where counter updates go
        self._primary_name = None
        self._shadow_watchers = []
        self._tap_installed = False
        self._reporter_running = False
        self.status_register = "ok"  # Section 7.1's transport status
        self.counter_updates_sent = 0
        self.counter_updates_received = 0
        self.corrupt_dropped = 0  # poisoned TLPs discarded at receive
        # A halted device no longer accepts packets: a dead replica's port
        # may still be cabled, but nothing behind it is listening.
        self.receiving = True
        self.dropped_while_down = 0
        # Replication history: every chunk that passed the intake tap,
        # retained while flows exist so a lagging or rejoining peer can be
        # resynced (the Section 7.1 reconfiguration step re-ships the
        # range the database knows the peer is missing; the simulator
        # keeps the chunks so tests can drive that step directly).
        self.history = []
        # Staleness detection: if a shadow counter lags the local counter
        # while no update arrives for this long, the replication path is
        # presumed broken and the status register flips to "stale".
        self.staleness_threshold_ns = 1_000_000.0  # 1 ms
        self._monitor_running = False

    # -- role management (driven by vendor admin commands) -------------------------

    def attach_ntb(self, port):
        """Give the transport its network adapter; installs the receive sink."""
        self.ntb_port = port
        port.attach_sink(self._on_ntb_packet)

    def attach_extra_port(self, port):
        """Route an additional port's traffic into this transport.

        Daisy-chained setups give a middle server two adapters: one toward
        its predecessor, one toward its successor.
        """
        port.attach_sink(self._on_ntb_packet)
        return port

    def set_standalone(self):
        self.role = TransportRole.STANDALONE
        for flow in self._flows.values():
            flow.running = False
        self._flows.clear()
        self.shadow_counters.clear()
        self._reporter_running = False
        return self.role

    def set_primary(self):
        if self.ntb_port is None:
            raise RuntimeError("attach an NTB port before becoming primary")
        self.role = TransportRole.PRIMARY
        self._reporter_running = False
        return self.role

    def set_secondary(self, primary_name):
        if self.ntb_port is None:
            raise RuntimeError("attach an NTB port before becoming secondary")
        self.role = TransportRole.SECONDARY
        self._primary_name = primary_name
        # Retain intake history even before any downstream flow exists: a
        # chain tail promoted to upstream at reattach time must be able to
        # re-ship the range a rejoining peer missed.
        if not self._tap_installed:
            self.cmb.tap_intake(self._on_local_write)
            self._tap_installed = True
        if not self._reporter_running:
            self._reporter_running = True
            self.engine.process(self._report_loop(),
                                name=f"{self.name}-reporter")
        return self.role

    def start_staleness_monitor(self, check_period_ns=200_000.0):
        """Background detection of stalled replication (Section 7.1).

        When the database's data outruns a secondary's shadow counter and
        no update arrives within the staleness threshold, the status
        register flips to ``"stale"`` so pwrite/fsync implementations can
        stop spinning on a counter that will never move and escalate to
        reconfiguration instead.
        """
        if self._monitor_running:
            raise RuntimeError("staleness monitor already running")
        self._monitor_running = True
        return self.engine.process(
            self._staleness_monitor(check_period_ns),
            name=f"{self.name}-staleness",
        )

    def stop_staleness_monitor(self):
        self._monitor_running = False

    def _staleness_monitor(self, check_period_ns):
        while self._monitor_running:
            yield self.engine.timeout(check_period_ns)
            if self.role is not TransportRole.PRIMARY:
                continue
            local = self.cmb.credit.value
            now = self.engine.now
            stale = False
            for counter in self.shadow_counters.values():
                lagging = counter.value < local
                quiet_for = now - counter.last_advanced_at
                if lagging and quiet_for > self.staleness_threshold_ns:
                    stale = True
            self.status_register = "stale" if stale else "ok"

    def add_peer(self, peer_name, port=None):
        """Open a mirror flow toward ``peer_name`` (over ``port`` if given).

        Primaries mirror to every peer; a *secondary* with a peer is a
        chain intermediate — it forwards the stream it receives onward
        (Section 4.2's chain-replication wiring).
        """
        if self.role is TransportRole.STANDALONE:
            raise RuntimeError("standalone devices do not mirror to peers")
        if peer_name in self._flows:
            raise ValueError(f"peer {peer_name!r} already registered")
        if not self._tap_installed:
            self.cmb.tap_intake(self._on_local_write)
            self._tap_installed = True
        flow = MirrorFlow(self.engine, peer_name, port or self.ntb_port,
                          rng=derive(self.seed, "mirror-backoff", peer_name),
                          name=f"{self.name}->{peer_name}")
        self._flows[peer_name] = flow
        self.shadow_counters[peer_name] = Counter(
            self.engine, name=f"shadow:{peer_name}"
        )
        self.engine.process(flow.pump(), name=f"mirror->{peer_name}")
        return flow

    def remove_peer(self, peer_name):
        """Tear down the mirror flow toward ``peer_name`` (dead or dropped).

        The flow's pump stops, the shadow counter is forgotten, and the
        visible counter immediately stops waiting on the departed peer —
        the transport half of the Section 7.1 reconfiguration flow.
        """
        flow = self._flows.pop(peer_name, None)
        if flow is None:
            raise KeyError(f"no mirror flow toward {peer_name!r}")
        flow.running = False
        if not flow._kick.triggered:
            flow._kick.succeed()
        self.shadow_counters.pop(peer_name, None)
        self.update_arrival_ns.pop(peer_name, None)
        return flow

    def resync_peer(self, peer_name, from_offset=0, skip_offsets=()):
        """Re-ship retained history chunks at/after ``from_offset``.

        ``skip_offsets`` names chunk starts the peer already holds parked
        beyond its gap (duplicates would be discarded at the peer anyway;
        skipping them saves wire bandwidth).  Chunks straddling
        ``from_offset`` are re-shipped from the missing byte onward.
        Returns the number of bytes offered.
        """
        flow = self._flows.get(peer_name)
        if flow is None:
            raise KeyError(f"no mirror flow toward {peer_name!r}")
        skip = set(skip_offsets)
        offered = 0
        for offset, nbytes, payload in self.history:
            end = offset + nbytes
            if end <= from_offset or offset in skip:
                continue
            if offset < from_offset:
                # Re-ship only the missing tail of a partially received
                # chunk (the torn-write case).
                flow.offer(from_offset, end - from_offset, payload)
                offered += end - from_offset
            else:
                flow.offer(offset, nbytes, payload)
                offered += nbytes
        return offered

    def halt(self):
        """Power loss: stop flows, reporting, monitoring, and receiving."""
        for flow in self._flows.values():
            flow.running = False
            if not flow._kick.triggered:
                flow._kick.succeed()
        self._reporter_running = False
        self._monitor_running = False
        self.receiving = False

    def restart_flows(self):
        """Replace halted mirror flows with fresh pumps (replica rejoin).

        Backlogged chunks of the dead flow are dropped — the rejoin
        protocol re-ships missing ranges from history instead, so the new
        pump starts clean.
        """
        self.receiving = True
        for peer_name, flow in list(self._flows.items()):
            if flow.running:
                continue
            fresh = MirrorFlow(
                self.engine, peer_name, flow.ntb_port,
                retry_limit=flow.retry_limit,
                retry_backoff_ns=flow.retry_backoff_ns,
                rng=flow._rng,  # continue the flow's jitter stream
                name=flow.name,
            )
            fresh.bytes_shipped = flow.bytes_shipped
            self._flows[peer_name] = fresh
            self.engine.process(fresh.pump(), name=f"mirror->{peer_name}")

    def watch_shadow(self, callback):
        """Register ``callback(peer_name, value)`` on shadow updates."""
        self._shadow_watchers.append(callback)

    # -- aggregate flow statistics ------------------------------------------------------

    @property
    def sends_retried(self):
        """Total link-layer retries across all mirror flows."""
        return sum(flow.sends_retried for flow in self._flows.values())

    @property
    def chunks_abandoned(self):
        """Chunks given up after exhausting retries, across all flows."""
        return [chunk for flow in self._flows.values()
                for chunk in flow.chunks_abandoned]

    # -- primary data path -----------------------------------------------------------

    def _on_local_write(self, offset, nbytes, payload):
        # Mirror whenever flows exist: a primary mirrors local writes,
        # a chain intermediate mirrors the stream it receives (its CMB
        # intake carries both cases — replication feeds the same intake).
        self.history.append((offset, nbytes, payload))
        for flow in self._flows.values():
            flow.offer(offset, nbytes, payload)

    # -- packet receive (both roles) ----------------------------------------------------

    def _on_ntb_packet(self, tlp):
        if not self.receiving:
            self.dropped_while_down += 1
            if self._tracing:
                self._tracer.instant(self.name, "dropped-while-down",
                                     address=tlp.address)
            return
        if tlp.metadata.get("corrupted"):
            # Failed end-to-end check: the packet never reaches the CMB.
            # Its stream range stays missing until re-shipped, exactly
            # like a drop — but the wire bandwidth was spent.
            self.corrupt_dropped += 1
            if self._tracing:
                self._tracer.instant(self.name, "corrupt-dropped",
                                     address=tlp.address)
            return
        kind = tlp.metadata.get("kind")
        if kind == "mirror":
            # Secondary: feed the mirrored write into the local CMB.
            self.cmb.receive_tlp(tlp)
        elif kind == "counter-update":
            peer = tlp.metadata["peer"]
            value = tlp.metadata["value"]
            self.counter_updates_received += 1
            self.update_arrival_ns[peer] = self.engine.now
            shadow = self.shadow_counters.get(peer)
            if shadow is not None:
                shadow.set_at_least(value)
                if self._tracing:
                    self._tracer.counter(self.name, f"shadow:{peer}",
                                         shadow.value)
                for watcher in self._shadow_watchers:
                    watcher(peer, shadow.value)
        # Unknown kinds are ignored (forward compatibility).

    # -- secondary reporting loop ---------------------------------------------------------

    def _report_loop(self):
        engine = self.engine
        last_sent = self._report_value()  # nothing to say until it moves
        while self._reporter_running:
            # Shared-instant wakeup: secondaries configured with the same
            # update period tick on the same instants, so a fleet of
            # reporters shares one wheel entry per period instead of one
            # entry each.
            yield engine.at(engine.now + self.update_period_ns)
            value = self._report_value()
            if value == last_sent:
                continue
            last_sent = value
            self.counter_updates_sent += 1
            if self._tracing:
                self._tracer.instant(self.name, "counter-update-sent",
                                     value=value)
            yield engine.timeout(COUNTER_UPDATE_COST_NS)
            update = Tlp(
                TlpType.MEMORY_WRITE,
                address=0,
                payload=COUNTER_UPDATE_BYTES,
                metadata={
                    "kind": "counter-update",
                    "peer": self.name,
                    "value": value,
                },
            )
            yield self.ntb_port.send(update)

    def _report_value(self):
        """What this secondary reports upstream.

        With a successor (chain topology) it relays the minimum of its own
        progress and the successor's shadow — which converges to the
        tail's counter, as chain replication requires.
        """
        own = self.cmb.credit.value
        if self.shadow_counters:
            successor = min(
                counter.value for counter in self.shadow_counters.values()
            )
            return min(own, successor)
        return own

    # -- the database-visible counter -------------------------------------------------------

    def visible_counter(self):
        """The credit value the control interface exposes under the policy."""
        shadows = {
            name: counter.value
            for name, counter in self.shadow_counters.items()
        }
        return self.policy.visible_counter(self.cmb.credit.value, shadows)
