"""The Destage module: moving the CMB ring into NAND, opportunistically.

The module watches the CMB ring's contiguous data and bundles it into
flash pages, which it writes through the conventional side's scheduler as
``Source.DESTAGE`` requests into a dedicated LBA ring (Section 4.3,
Fig. 7).  Policy knobs:

* the **latency threshold**: if data has waited longer than the threshold
  but is less than a page's worth, destage it anyway, padding the page
  with filler;
* the scheduler's priority mode decides how destage programs compete with
  conventional writes (opportunistic destaging, Fig. 12).

The destaged area is itself a ring of LBAs: when it wraps, the head
advances (oldest log data is overwritten).  Head and tail are visible
through the log control interface; the secondary-side read path
(:func:`repro.host.api.x_pread`) uses them.
"""

from repro.ssd.scheduler import Source, WriteRequest


class DestagePage:
    """One flash page's worth of destaged log data (possibly padded)."""

    __slots__ = ("stream_offset", "chunks", "data_bytes", "filler_bytes")

    def __init__(self, stream_offset, chunks, data_bytes, filler_bytes):
        self.stream_offset = stream_offset
        self.chunks = chunks  # list of (offset, nbytes, payload)
        self.data_bytes = data_bytes
        self.filler_bytes = filler_bytes

    @property
    def end_offset(self):
        return self.stream_offset + self.data_bytes


class DestageModule:
    """Connects a CMB ring to the conventional side's flash."""

    def __init__(self, engine, cmb, scheduler, page_bytes,
                 lba_ring_start=0, lba_ring_blocks=4096,
                 latency_threshold_ns=50_000.0, max_outstanding_pages=32,
                 name="destage"):
        if lba_ring_blocks < 1:
            raise ValueError("destage ring needs at least one block")
        if max_outstanding_pages < 1:
            raise ValueError("need at least one outstanding destage page")
        self.engine = engine
        self.cmb = cmb
        self.scheduler = scheduler
        self.page_bytes = page_bytes
        self.lba_ring_start = lba_ring_start
        self.lba_ring_blocks = lba_ring_blocks
        self.latency_threshold_ns = latency_threshold_ns
        # Destaging pipelines across the flash array: up to this many page
        # programs in flight at once (the device's parallelism is what
        # lets the conventional side absorb the fast side's stream).
        self.max_outstanding_pages = max_outstanding_pages
        self.name = name
        # Pre-resolved tracing guard (the tracer is fixed per engine):
        # issue/completion run once per destaged page and should pay no
        # attribute chains when tracing is off.
        self._tracer = engine.tracer
        self._tracing = engine.tracer.enabled
        # Ring-of-LBAs state: sequence numbers count destaged pages forever;
        # the LBA is sequence % ring size.  head = oldest retained page.
        self.tail_sequence = 0  # next sequence to allocate
        self.durable_tail = 0  # sequences below this are readable on flash
        self.head_sequence = 0
        # Stream offset up to which data is safely on the conventional side.
        self.destaged_offset = 0
        self.pages_written = 0
        self.filler_bytes_total = 0
        # Out-of-order completion tracking (prefix rule, like the WAL's).
        self._outstanding = 0
        self._completed_pages = {}  # sequence -> DestagePage
        self._inflight_pages = {}  # sequence -> DestagePage (issued)
        # Tracing: open page-program spans keyed by sequence.
        self._trace_tokens = {}
        self._running = False
        self._kick = engine.event()
        cmb.watch_credit(lambda _value: self._wake())

    # -- lifecycle -----------------------------------------------------------------

    def start(self):
        if self._running:
            raise RuntimeError("destage module already started")
        self._running = True
        return self.engine.process(self._loop(), name=f"{self.name}-loop")

    def stop(self):
        self._running = False
        self._wake()

    def _wake(self):
        if not self._kick.triggered:
            self._kick.succeed()

    # -- the destage loop -----------------------------------------------------------

    def _loop(self):
        # Minimum wait quantum: floating-point clocks cannot represent
        # arbitrarily small remainders near large timestamps, so a naive
        # `timeout(threshold - waited)` can round to a zero-advance event
        # and spin.  One nanosecond is far below anything we measure.
        min_wait = 1.0
        waiting_since = None
        while self._running:
            if self._outstanding >= self.max_outstanding_pages:
                yield self._next_kick()
                continue
            available = self.cmb.ring.consumable_bytes()
            if available >= self.page_bytes:
                yield self.engine.process(self._issue_page())
                waiting_since = None
                continue
            if available > 0:
                if waiting_since is None:
                    waiting_since = self.engine.now
                deadline = waiting_since + self.latency_threshold_ns
                if self.engine.now >= deadline - min_wait:
                    # Partial page with filler to bound latency.
                    yield self.engine.process(self._issue_page())
                    waiting_since = None
                    continue
                # Wait for either more data or the threshold to expire; the
                # losing timer is cancelled so repeated kicks do not pile
                # dead timeout entries onto the heap.
                remaining = max(deadline - self.engine.now, min_wait)
                kick = self._next_kick()
                expiry = self.engine.timeout(remaining)
                yield self.engine.any_of([kick, expiry])
                expiry.cancel()
                continue
            waiting_since = None
            yield self._next_kick()

    def _next_kick(self):
        if self._kick.triggered:
            self._kick = self.engine.event()
        return self._kick

    def _issue_page(self):
        """Bundle the ring's head into one page and launch its program.

        Only the backing-memory read is awaited here (it orders the
        pipeline); the flash program itself proceeds concurrently with
        further issues, up to ``max_outstanding_pages``.
        """
        chunks = self.cmb.ring.consume(self.page_bytes)
        if not chunks:
            return
        total = sum(nbytes for _offset, nbytes, _payload in chunks)
        # The storage controller reads the backing memory directly (the
        # second of the two data movements of Section 5.1); on a DRAM
        # CMB this read contends with regular buffering traffic.
        yield self.cmb.backing.read(total)
        filler = max(0, self.page_bytes - total)
        page = DestagePage(
            stream_offset=chunks[0][0],
            chunks=chunks,
            data_bytes=total,
            filler_bytes=filler,
        )
        sequence = self.tail_sequence
        self.tail_sequence += 1
        if self.tail_sequence - self.head_sequence > self.lba_ring_blocks:
            self.head_sequence = self.tail_sequence - self.lba_ring_blocks
        lba = self.lba_ring_start + sequence % self.lba_ring_blocks
        self._outstanding += 1
        self._inflight_pages[sequence] = page
        tracer = self._tracer
        if self._tracing:
            # One span per destaged page, issue -> program completion; the
            # flow id is the page's stream offset, tying it back to the
            # CMB intake spans of the chunks it bundles.
            self._trace_tokens[sequence] = tracer.begin(
                self.name, "page-program", flow=page.stream_offset,
                sequence=sequence, lba=lba, data_bytes=total,
                filler_bytes=filler,
            )
            tracer.counter(self.name, "outstanding", self._outstanding)
        # The PM ring space is reclaimable as soon as the page is issued:
        # the in-flight program is covered by reserve energy (the crash
        # path emergency-completes issued pages), so the bytes no longer
        # need their ring slot.  Decoupling space from program completion
        # is what lets destaging pipeline deeper than the small SRAM ring.
        self.cmb.ring.release(page.end_offset)
        self.cmb.ring_space_freed()
        done = self.scheduler.enqueue(
            WriteRequest(
                source=Source.DESTAGE,
                lba=lba,
                payload=page,
                nbytes=self.page_bytes,  # a full flash page is programmed
            )
        )
        done.then(lambda _event, s=sequence, p=page: self._on_programmed(s, p))

    def _on_programmed(self, sequence, page):
        """Apply completions in sequence order (prefix rule)."""
        self._outstanding -= 1
        self._inflight_pages.pop(sequence, None)
        tracer = self._tracer
        if self._tracing:
            token = self._trace_tokens.pop(sequence, None)
            if token is not None:
                tracer.end(token)
            tracer.counter(self.name, "outstanding", self._outstanding)
        self._completed_pages[sequence] = page
        advanced = False
        while self.durable_tail in self._completed_pages:
            applied = self._completed_pages.pop(self.durable_tail)
            self.durable_tail += 1
            self.pages_written += 1
            self.filler_bytes_total += applied.filler_bytes
            # Durable prefix (space was already released at issue time).
            self.destaged_offset = applied.end_offset
            advanced = True
        if advanced and self._tracing:
            # The *publication* point: out-of-order completions only
            # become durable here, so this instant — not the program-done
            # span end — is the destage-ack transition checkers care
            # about.
            tracer.instant(self.name, "destage-ack",
                           flow=self.destaged_offset,
                           offset=self.destaged_offset,
                           tail=self.durable_tail)
        self._wake()

    @property
    def outstanding_pages(self):
        """Page programs issued to the scheduler but not yet completed."""
        return self._outstanding

    # -- crash path --------------------------------------------------------------------

    def destage_all_now(self):
        """Crash protocol: destage the full contiguous ring synchronously.

        Runs under reserve energy (Section 4.1, "Crash Consistency
        Behavior"): the device finishes destaging everything up to the
        first gap, then stops.  Returns the number of pages written.
        Simulation time does not advance — the host is already down; what
        matters is the post-reboot state.
        """
        pages = 0
        # First settle pages already consumed from the ring: completed
        # ones apply directly; in-flight programs finish under reserve
        # energy (their data would otherwise leave a hole in the stream).
        while (self.durable_tail in self._completed_pages
               or self.durable_tail in self._inflight_pages):
            sequence = self.durable_tail
            page = self._completed_pages.pop(
                sequence, None
            ) or self._inflight_pages.pop(sequence)
            lba = self.lba_ring_start + sequence % self.lba_ring_blocks
            if self.scheduler.ftl.table.lookup(lba) is None:
                self._emergency_program(lba, page)
            self.durable_tail = sequence + 1
            self.pages_written += 1
            self.filler_bytes_total += page.filler_bytes
            self.destaged_offset = page.end_offset
            self.cmb.ring.release(page.end_offset)
            pages += 1
        self._inflight_pages.clear()
        self._completed_pages.clear()
        # Then destage whatever contiguous data remains in the PM ring.
        while self.cmb.ring.consumable_bytes() > 0:
            chunks = self.cmb.ring.consume(self.page_bytes)
            total = sum(nbytes for _offset, nbytes, _payload in chunks)
            page = DestagePage(
                stream_offset=chunks[0][0],
                chunks=chunks,
                data_bytes=total,
                filler_bytes=max(0, self.page_bytes - total),
            )
            sequence = self.tail_sequence
            self.tail_sequence += 1
            if self.tail_sequence - self.head_sequence > self.lba_ring_blocks:
                self.head_sequence = self.tail_sequence - self.lba_ring_blocks
            lba = self.lba_ring_start + sequence % self.lba_ring_blocks
            # Bypass the scheduler: reserve energy powers a direct path.
            self.scheduler.ftl.table.unbind(lba)
            self._emergency_program(lba, page)
            self.durable_tail = max(self.durable_tail, sequence + 1)
            self.destaged_offset = page.end_offset
            self.cmb.ring.release(page.end_offset)
            pages += 1
        # Anything beyond the first gap is lost (consistent with the
        # credit counter the host saw); the crash injector accounts for
        # the dropped chunks.
        self.pages_written += pages
        return pages

    def _emergency_program(self, lba, page):
        """Zero-time program used only by the power-loss path."""
        ftl = self.scheduler.ftl
        channel_id, way, block, page_no = ftl.allocator.place()
        channel = ftl.channels[channel_id]
        die = channel.die(way)
        die.program_page(block, page_no, page, self.page_bytes)
        from repro.nand.geometry import PhysicalPageAddress

        ftl.table.bind(lba, PhysicalPageAddress(channel_id, way, block,
                                                page_no))

    # -- read path (for x_pread and secondaries) -----------------------------------------

    def read_page(self, sequence):
        """Read one destaged page by sequence number; returns an event.

        Raises ``IndexError`` for sequences outside [head, tail).
        """
        if not self.head_sequence <= sequence < self.durable_tail:
            raise IndexError(
                f"sequence {sequence} outside retained window "
                f"[{self.head_sequence}, {self.durable_tail})"
            )
        lba = self.lba_ring_start + sequence % self.lba_ring_blocks
        return self.scheduler.ftl.read(lba)
