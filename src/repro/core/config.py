"""Device configuration: the Villars reference builds.

Two presets mirror the prototype's CMB backing options (Section 6):

* :func:`villars_sram` — 128 KiB of FPGA BlockRAM at 4 GB/s;
* :func:`villars_dram` — 128 MiB carved out of the DDR3 data-buffer pool
  at 2 GB/s, optionally *sharing the buffer's port* so fast-side intake
  contends with regular buffering.

Both constrain the PCIe interface to x4 Gen2 (2 GB/s) as the paper does
for CMB experiments.
"""

from dataclasses import dataclass, field, replace

from repro.sim.units import KIB, MIB
from repro.ssd.device import SsdConfig
from repro.ssd.scheduler import SchedulingMode


@dataclass
class VillarsConfig:
    """Everything needed to assemble one Villars device."""

    ssd: SsdConfig = field(default_factory=SsdConfig)
    backing_kind: str = "sram"  # "sram" or "dram"
    cmb_capacity: int = 128 * KIB
    cmb_queue_bytes: int = 32 * KIB  # the best-performing size (Fig. 11)
    dram_shares_buffer_port: bool = True
    destage_latency_threshold_ns: float = 50_000.0
    destage_ring_blocks: int = 4096
    transport_update_period_ns: float = 400.0  # Fig. 13's best frequency
    # Seed for the transport's randomized retry backoff; scenario builders
    # thread their master seed through here so chaos runs replay byte-
    # for-byte (the jitter streams derive from this value per peer).
    transport_seed: int = 0
    # Hard cap on bytes accepted-but-not-yet-persisted at the CMB intake.
    # None (the default) preserves the unbounded-intake behavior; a bound
    # makes the intake shed excess chunks instead of queueing without
    # limit (see repro/health — overload protection).
    cmb_intake_bound_bytes: int | None = None

    def __post_init__(self):
        if self.backing_kind not in ("sram", "dram"):
            raise ValueError("backing_kind must be 'sram' or 'dram'")
        if self.cmb_queue_bytes <= 0:
            raise ValueError("queue size must be positive")
        if self.cmb_capacity < self.cmb_queue_bytes:
            raise ValueError("CMB capacity must hold at least the queue")
        if (self.cmb_intake_bound_bytes is not None
                and self.cmb_intake_bound_bytes < self.cmb_queue_bytes):
            raise ValueError("intake bound cannot be below the queue size")


def villars_sram(**overrides):
    """The Villars-SRAM configuration (BlockRAM-backed CMB)."""
    config = VillarsConfig(backing_kind="sram", cmb_capacity=128 * KIB)
    return replace(config, **overrides) if overrides else config


def villars_dram(**overrides):
    """The Villars-DRAM configuration (data-buffer-pool-backed CMB)."""
    config = VillarsConfig(backing_kind="dram", cmb_capacity=128 * MIB)
    return replace(config, **overrides) if overrides else config


def with_scheduling_mode(config, mode):
    """A copy of ``config`` whose conventional side uses ``mode``."""
    if not isinstance(mode, SchedulingMode):
        raise TypeError("mode must be a SchedulingMode")
    return replace(config, ssd=replace(config.ssd, scheduling_mode=mode))
