"""The CMB module: the fast side's intake pipeline and credit counter.

Data path (Fig. 5 of the paper):

1. TLPs arriving from the PCIe system carry store contributions;
2. each contribution enters an SRAM intake **queue** whose size was
   pre-negotiated with the database — this size is the flow-control
   budget;
3. a drain process moves queued chunks into the **backing memory** (SRAM
   or DRAM, see :mod:`repro.pm.backing`), paying its port bandwidth;
4. once a chunk reaches backing memory — never before — the **credit
   counter** advances, but only over *contiguous* stream bytes (the gap
   rule);
5. the host polls the counter over the control MMIO interface.

Writes are persistent once in backing memory (Section 4.1, "we offer the
following semantics").  The Transport module, when active, taps the intake
stream to mirror it to secondaries.
"""

from repro.core.ring import RingOverflowError, SequencedRing
from repro.sim.resources import Container, Store
from repro.sim.stats import Counter


class CmbModule:
    """The byte-addressable fast side of one X-SSD device."""

    def __init__(self, engine, backing, queue_bytes, name="cmb",
                 intake_bound_bytes=None):
        if queue_bytes <= 0:
            raise ValueError("intake queue size must be positive")
        if intake_bound_bytes is not None and intake_bound_bytes <= 0:
            raise ValueError("intake bound must be positive when set")
        self.engine = engine
        self.backing = backing
        self.queue_bytes = queue_bytes
        self.name = name
        # Overload protection: ``queue_bytes`` caps SRAM *occupancy*, but
        # chunks waiting for queue space pile up without limit.  The
        # intake bound caps that whole accepted-but-unpersisted backlog;
        # a chunk arriving past the bound is shed (posted MMIO writes
        # cannot be nacked) and its range stays missing until re-shipped,
        # exactly like a dropped TLP.  None = unbounded (the default).
        self.intake_bound_bytes = intake_bound_bytes
        self.intake_backlog_bytes = 0
        self.intake_backlog_peak = 0
        self.chunks_shed = 0
        self.bytes_shed = 0
        self.ring = SequencedRing(capacity=backing.capacity)
        self.credit = Counter(engine, name=f"{name}.credit")
        # Intake queue: chunk FIFO plus a byte-space accountant.
        self._intake = Store(engine)
        self._queue_space = Container(engine, capacity=queue_bytes,
                                      init=queue_bytes)
        self._intake_taps = []
        self._credit_watchers = []
        # Tracing: open intake spans keyed by stream offset (one span
        # covers a chunk's life from PCIe arrival to persistence).
        self._trace_tokens = {}
        # The chunk the drain is currently persisting; it still occupies
        # SRAM until the PM write completes, so the crash path can salvage
        # it (reserve energy finishes the move).
        # Chunks whose PM write is in flight (issued, not yet applied).
        # They still occupy SRAM queue slots until the write completes,
        # and the crash path can salvage them (reserve energy finishes
        # the moves).  Completions apply strictly in FIFO order because
        # they share one port.
        self._persisting = []
        # Kicked by the destage module when it frees ring space; the drain
        # waits on it instead of overflowing the PM ring.
        self._ring_room_kick = engine.event()
        self._running = False
        self.bytes_received = 0
        self.chunks_received = 0
        # Torn-write injection: when armed, the next arriving chunk loses
        # its tail on the wire (a WC buffer that flushed partially, a host
        # that died mid-store).  The missing bytes leave a gap the credit
        # counter can never cross until the range is re-shipped.
        self._torn_armed = 0
        self.torn_writes = 0
        # Chunks whose stream range conflicted with already-received data
        # (a retransmission racing the original over a slow link).  The
        # device discards them instead of crashing: the ring's strict
        # protocol check stays intact for genuine violations, while the
        # replication path tolerates duplicate delivery.
        self.chunks_discarded = 0

    # -- wiring -------------------------------------------------------------------

    def start(self):
        """Launch the queue drain process."""
        if self._running:
            raise RuntimeError("CMB module already started")
        self._running = True
        return self.engine.process(self._drain(), name=f"{self.name}-drain")

    def stop(self):
        self._running = False

    def tap_intake(self, callback):
        """Register ``callback(offset, nbytes, payload)`` on every arrival.

        The Transport module mirrors the write stream through this tap —
        the mirroring point is the CMB intake, per Fig. 6 step (1).
        """
        self._intake_taps.append(callback)

    def watch_credit(self, callback):
        """Register ``callback(value)`` fired when the credit advances."""
        self._credit_watchers.append(callback)

    def arm_torn_write(self, count=1):
        """Truncate the next ``count`` arriving chunks to half their bytes."""
        if count < 0:
            raise ValueError("count must be >= 0")
        self._torn_armed += count

    # -- device-side intake ----------------------------------------------------------

    def receive(self, offset, nbytes, payload=None):
        """Accept a write chunk arriving via PCIe; returns an enqueue event.

        The event fires when the chunk has entered the intake queue (space
        permitting).  Persistence happens later, asynchronously, in the
        drain process; the host learns about it from the credit counter.
        """
        if nbytes <= 0:
            raise ValueError("chunks must carry at least one byte")
        tracer = self.engine.tracer
        if self._torn_armed and nbytes > 1:
            self._torn_armed -= 1
            self.torn_writes += 1
            nbytes = nbytes // 2  # the tail never arrived
            if tracer.enabled:
                tracer.instant(self.name, "torn-write", flow=offset,
                               nbytes=nbytes)
        if (self.intake_bound_bytes is not None
                and self.intake_backlog_bytes + nbytes
                > self.intake_bound_bytes):
            # Shed before any accounting or taps: a shed chunk was never
            # received, so it is neither mirrored nor recorded — its
            # stream range is simply missing, like a drop on the wire.
            self.chunks_shed += 1
            self.bytes_shed += nbytes
            if tracer.enabled:
                tracer.instant(self.name, "intake-shed", flow=offset,
                               nbytes=nbytes,
                               backlog=self.intake_backlog_bytes)
            return self.engine.timeout(0.0)
        self.intake_backlog_bytes += nbytes
        self.intake_backlog_peak = max(self.intake_backlog_peak,
                                       self.intake_backlog_bytes)
        self.bytes_received += nbytes
        self.chunks_received += 1
        if tracer.enabled:
            # One span per chunk: arrival on the wire -> persisted in PM.
            # A retransmission reuses the offset; the superseded span
            # stays open in the trace, which is exactly what happened.
            self._trace_tokens[offset] = tracer.begin(
                self.name, "intake", flow=offset, nbytes=nbytes,
            )
        for tap in self._intake_taps:
            tap(offset, nbytes, payload)
        return self.engine.process(
            self._enqueue(offset, nbytes, payload),
            name=f"{self.name}-enqueue",
        )

    def receive_tlp(self, tlp):
        """Adapter: unpack an MMIO TLP's contributions into :meth:`receive`.

        Contributions are ``(stream_offset, nbytes, payload)`` triples the
        host API attached in ``tlp.metadata`` (the simulator's stand-in for
        inferring stream position from the write address).
        """
        contributions = tlp.metadata.get("contributions")
        if contributions is None:
            # Raw traffic from a non-streamed source: treat the wire
            # address as the stream offset (first-lap semantics).
            contributions = [(tlp.address, tlp.payload, None)]
        last = None
        for offset, nbytes, payload in contributions:
            last = self.receive(offset, nbytes, payload)
        if last is None:
            # Carrier TLP with no logical data attached.
            last = self.engine.timeout(0.0)
        return last

    def _enqueue(self, offset, nbytes, payload):
        yield self._queue_space.get(nbytes)
        yield self._intake.put((offset, nbytes, payload))

    # -- drain: queue -> backing memory -----------------------------------------------

    def ring_space_freed(self):
        """Destage notification: the PM ring released some space."""
        if not self._ring_room_kick.triggered:
            self._ring_room_kick.succeed()

    def _ring_room_wait(self):
        if self._ring_room_kick.triggered:
            self._ring_room_kick = self.engine.event()
        return self._ring_room_kick

    def _drain(self):
        while self._running:
            chunk = yield self._intake.get()
            offset, nbytes, payload = chunk
            # Stall while the PM ring's window is full: space frees as the
            # destage module moves the head to flash.  The stall holds the
            # intake queue occupied, which is exactly how back-pressure
            # propagates to the host's credit budget.
            while (offset + nbytes
                   > self.ring.released + self.ring.capacity):
                if not self._running:
                    return
                yield self._ring_room_wait()
            # Issue the PM write and keep draining: writes pipeline on the
            # backing port (its bandwidth serializes them; per-access
            # latency overlaps), completing in FIFO order.
            self._persisting.append(chunk)
            self.backing.write(nbytes).then(self._on_persisted)

    def _on_persisted(self, _event):
        if not self._persisting:
            return  # a crash already salvaged the pipeline
        offset, nbytes, payload = self._persisting.pop(0)
        self.intake_backlog_bytes = max(0, self.intake_backlog_bytes - nbytes)
        self._queue_space.put(nbytes)
        tracer = self.engine.tracer
        token = self._trace_tokens.pop(offset, None)
        try:
            advanced = self.ring.write(offset, nbytes, payload)
        except RingOverflowError:
            self.chunks_discarded += 1
            if tracer.enabled:
                tracer.instant(self.name, "chunk-discarded", flow=offset,
                               nbytes=nbytes)
                if token is not None:
                    tracer.end(token, discarded=True)
            return
        if tracer.enabled and token is not None:
            tracer.end(token, advanced=advanced)
        if advanced:
            value = self.credit.advance(advanced)
            if tracer.enabled:
                tracer.counter(self.name, "credit", value)
            for watcher in self._credit_watchers:
                watcher(value)

    # -- control interface --------------------------------------------------------------

    def read_credit(self):
        """The counter value as the control interface returns it (instant).

        The *latency* of polling is paid by the caller through the MMIO
        ``load`` on the control region; this accessor is the device-side
        register read.
        """
        return self.credit.value

    @property
    def in_flight_bytes(self):
        """Bytes received but not yet persisted (queue + gaps)."""
        return self.bytes_received - self.credit.value

    @property
    def queue_free_bytes(self):
        """Free space left in the SRAM intake queue (flow-control head-room)."""
        return self._queue_space.level

    def drain_pending_to_backing(self):
        """Synchronously flush queue contents into the ring (crash path).

        Used by the power-loss protocol: reserve energy lets the device
        finish moving the intake queue into PM without simulation time
        (the supercapacitor budget is modeled in
        :mod:`repro.core.crash`).  Returns the bytes made contiguous.
        """
        advanced = 0
        salvaged = list(self._persisting) + list(self._intake.peek_all())
        self._persisting = []
        for offset, nbytes, payload in salvaged:
            try:
                advanced += self.ring.write(offset, nbytes, payload)
            except RingOverflowError:
                self.chunks_discarded += 1
        self._intake._items.clear()
        self.intake_backlog_bytes = 0
        if advanced:
            self.credit.advance(advanced)
        return advanced
