"""Multi-writer credit counters: the Section 7.1 extension.

A single credit counter cannot serve several CMB writer threads: none of
them could tell which writer's bytes advanced it.  The paper's suggested
fix is per-core counters with writers pinned to cores — "akin to
maintaining several NVMe work submission queues".

:class:`MultiWriterCmb` implements that extension over an existing
:class:`~repro.core.cmb.CmbModule`: the stream is still one ring (so
destaging and replication are untouched), but each registered writer
owns a *lane* with

* an atomic cursor allocating that writer's chunks out of the shared
  stream (interleaved, as the device tolerates out-of-order arrival
  within the flow-control window), and
* a private credit counter that advances only with *this lane's* bytes.

The global gap rule still holds: a lane's counter advances only when the
lane's bytes are persistent, which the module derives from the global
contiguous frontier and the lane's chunk ledger.
"""

from repro.sim.stats import Counter


class WriterLane:
    """One writer thread's view of the fast side."""

    __slots__ = ("cmb", "lane_id", "credit", "issued_bytes", "_chunk_ends",
                 "throttle_waits")

    def __init__(self, cmb, lane_id, engine):
        self.cmb = cmb
        self.lane_id = lane_id
        self.credit = Counter(engine, name=f"lane{lane_id}.credit")
        self.issued_bytes = 0
        # Times this lane had to wait at the fair-share gate before it
        # could claim a stream range (only with ``fair_share_bytes`` set).
        self.throttle_waits = 0
        # Stream end-offsets of this lane's chunks, in issue order; the
        # lane's credit covers a chunk once the global frontier passes it.
        self._chunk_ends = []

    def note_issue(self, end_offset, nbytes):
        self.issued_bytes += nbytes
        self._chunk_ends.append((end_offset, nbytes))

    def absorb_frontier(self, frontier):
        """Advance the lane counter over chunks the frontier covers."""
        advanced = 0
        while self._chunk_ends and self._chunk_ends[0][0] <= frontier:
            _end, nbytes = self._chunk_ends.pop(0)
            advanced += nbytes
        if advanced:
            self.credit.advance(advanced)
        return advanced

    @property
    def unacknowledged_bytes(self):
        return self.issued_bytes - self.credit.value


class MultiWriterCmb:
    """Per-writer counters multiplexed over one CMB stream.

    Usage::

        multi = MultiWriterCmb(device)
        lane_a = multi.register_writer()
        lane_b = multi.register_writer()
        # each worker thread:
        yield multi.write(lane_a, nbytes, payload)
        yield multi.fsync(lane_a)          # waits on lane_a's bytes ONLY
    """

    def __init__(self, device, max_writers=8, fair_share_bytes=None):
        if max_writers < 1:
            raise ValueError("need at least one writer slot")
        if fair_share_bytes is not None and fair_share_bytes <= 0:
            raise ValueError("fair share must be positive when set")
        self.device = device
        self.engine = device.engine
        self.max_writers = max_writers
        # Per-writer throttling (opt-in): a lane may not hold more than
        # this many unacknowledged bytes, so a greedy writer waits at the
        # gate instead of monopolizing the shared flow-control budget.
        # None preserves the classic unthrottled lanes.
        self.fair_share_bytes = fair_share_bytes
        self.lanes = []
        device.cmb.watch_credit(self._on_global_credit)

    # -- registration -------------------------------------------------------------

    def register_writer(self):
        """Allocate a lane (a per-core counter) for one writer thread."""
        if len(self.lanes) >= self.max_writers:
            raise RuntimeError(
                f"device exposes only {self.max_writers} writer counters"
            )
        lane = WriterLane(self, len(self.lanes), self.engine)
        self.lanes.append(lane)
        return lane

    # -- data path -----------------------------------------------------------------

    def write(self, lane, nbytes, payload=None):
        """Append ``nbytes`` on ``lane``; returns the issue event.

        The stream range is claimed atomically, so concurrent lanes never
        overlap; arrival interleaving is resolved by the ring as usual.
        """
        if lane not in self.lanes:
            raise ValueError("lane does not belong to this device")
        if nbytes <= 0:
            raise ValueError("writes need at least one byte")
        if self.fair_share_bytes is not None:
            return self.engine.process(
                self._throttled_write(lane, nbytes, payload),
                name=f"lane{lane.lane_id}-write",
            )
        return self._issue(lane, nbytes, payload)

    def _issue(self, lane, nbytes, payload):
        offset = self.device.claim_stream_range(nbytes)
        lane.note_issue(offset + nbytes, nbytes)
        done = self.device.fast_write(offset, nbytes, payload)
        fence_done = self.engine.event()

        def _fence(_event):
            self.device.fast_fence().then(lambda _ev: fence_done.succeed())

        done.then(_fence)
        return fence_done

    def _throttled_write(self, lane, nbytes, payload):
        """Wait at the fair-share gate, then issue like a plain write.

        The gate holds the lane *before* it claims a stream range, so a
        throttled writer never leaves gaps — it just yields the shared
        budget to the other lanes until its own bytes are acknowledged.
        """
        waited = False
        # A lane with nothing outstanding always gets one write through,
        # even one bigger than its share — otherwise it could never move.
        while (lane.unacknowledged_bytes
               and lane.unacknowledged_bytes + nbytes
               > self.fair_share_bytes):
            if not waited:
                waited = True
                lane.throttle_waits += 1
            # Each poll pays the control round trip, same as an fsync.
            yield self.device.read_credit_raw()
            lane.absorb_frontier(self.device.cmb.ring.frontier)
        yield self._issue(lane, nbytes, payload)

    def fsync(self, lane):
        """Block until every byte this lane issued is persistent."""
        return self.engine.process(self._fsync(lane), name="lane-fsync")

    def _fsync(self, lane):
        while lane.credit.value < lane.issued_bytes:
            # Each poll pays the control-interface round trip, as with
            # the single-counter device.
            yield self.device.read_credit_raw()
            lane.absorb_frontier(self.device.cmb.ring.frontier)
        return lane.credit.value

    # -- plumbing -------------------------------------------------------------------

    def _on_global_credit(self, _value):
        frontier = self.device.cmb.ring.frontier
        for lane in self.lanes:
            lane.absorb_frontier(frontier)
