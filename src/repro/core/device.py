"""The assembled X-SSD device (Villars reference design).

A :class:`XssdDevice` contains:

* a full conventional SSD (:class:`~repro.ssd.device.ConventionalSsd`) —
  unchanged, as in the prototype;
* the CMB module over SRAM or DRAM backing, exposed through a
  Write-Combining MMIO region on the device's PCIe link;
* the Destage module wired into the conventional side's scheduler;
* the Transport module, reachable via vendor-specific admin commands.

The device is fully NVMe-conformant: everything the fast side adds is
either an MMIO region (CMB/control) or a vendor-specific admin command —
no protocol changes (Section 4.2).
"""

from repro.core.cmb import CmbModule
from repro.core.config import VillarsConfig
from repro.core.destage import DestageModule
from repro.core.replication import policy_by_name
from repro.core.transport import TransportModule
from repro.pcie.mmio import CachePolicy, MmioRegion
from repro.pm.backing import dram_backing, sram_backing
from repro.ssd.device import ConventionalSsd
from repro.ssd.nvme import AdminOpcode


class XssdDevice:
    """One X-SSD device: conventional side + fast side + transport."""

    def __init__(self, engine, config=None, name="villars"):
        self.engine = engine
        self.config = config or VillarsConfig()
        self.name = name
        cfg = self.config

        # Conventional side: an unmodified NVMe SSD.
        self.conventional = ConventionalSsd(engine, cfg.ssd, name=f"{name}.conv")

        # Fast side backing memory.  The DRAM variant's port models its
        # effective share of the DDR3 pool (the rest goes to refresh and
        # the device's regular buffering activity — Section 6's setup).
        if cfg.backing_kind == "sram":
            self.backing = sram_backing(engine, capacity=cfg.cmb_capacity)
        else:
            self.backing = dram_backing(engine, capacity=cfg.cmb_capacity)

        # CMB module + its MMIO windows (data: WC; control: UC loads).
        self.cmb = CmbModule(
            engine, self.backing, queue_bytes=cfg.cmb_queue_bytes,
            name=f"{name}.cmb",
            intake_bound_bytes=cfg.cmb_intake_bound_bytes,
        )
        self.cmb_region = MmioRegion(
            engine, self.conventional.link, size=cfg.cmb_capacity,
            policy=CachePolicy.WRITE_COMBINING, name=f"{name}.cmb-mmio",
        )
        self.cmb_region.on_write(self.cmb.receive_tlp)
        self.control_region = MmioRegion(
            engine, self.conventional.link, size=4096,
            policy=CachePolicy.UNCACHED, name=f"{name}.ctrl-mmio",
        )

        # Destage module rides the conventional side's scheduler.
        self.destage = DestageModule(
            engine, self.cmb, self.conventional.scheduler,
            page_bytes=cfg.ssd.geometry.page_bytes,
            lba_ring_blocks=cfg.destage_ring_blocks,
            latency_threshold_ns=cfg.destage_latency_threshold_ns,
            name=f"{name}.destage",
        )

        # Transport module (optional; dormant until given a role).
        self.transport = TransportModule(
            engine, self.cmb, name=name,
            update_period_ns=cfg.transport_update_period_ns,
            seed=cfg.transport_seed,
        )

        self._register_admin_handlers()
        # The single allocation point for the fast-side stream: every
        # writer (drop-in log file, x_alloc allocator, multi-writer
        # lanes) claims its byte ranges here, so several host-side
        # abstractions can share one device without colliding.
        self._stream_cursor = 0
        self._halted = False
        self._started = False

    # -- stream allocation -------------------------------------------------------

    @property
    def stream_claimed(self):
        """Total stream bytes claimed by all writers so far."""
        return self._stream_cursor

    def claim_stream_range(self, nbytes):
        """Atomically reserve the next ``nbytes`` of the log stream."""
        if nbytes <= 0:
            raise ValueError("claims need at least one byte")
        offset = self._stream_cursor
        self._stream_cursor += nbytes
        return offset

    # -- lifecycle -----------------------------------------------------------------

    def start(self):
        if self._started:
            raise RuntimeError(f"{self.name} already started")
        self._started = True
        self.conventional.start()
        self.cmb.start()
        self.destage.start()
        return self

    def halt(self):
        """Stop all activity (power loss); state is preserved for autopsy."""
        self._halted = True
        self.cmb.stop()
        self.destage.stop()
        self.transport.halt()
        self.conventional.scheduler.stop()
        self.conventional.hic.stop()
        self.conventional.gc.stop()

    def restart(self):
        """Bring a halted device back online (replica reboot/rejoin).

        Restarts every stopped loop over the *surviving* state — mappings,
        destaged pages, and the PM ring carry over, matching a real reboot
        where only volatile queues were lost.  The transport role is kept;
        re-registering with a primary is the cluster layer's job.
        """
        if not self._halted:
            raise RuntimeError(f"{self.name} is not halted")
        self._halted = False
        self.conventional.hic.start(pumps=self.config.ssd.hic_pumps)
        self.conventional.scheduler.start()
        if self.config.ssd.gc_enabled:
            self.conventional.gc.start()
        self.cmb.start()
        self.destage.start()
        self.transport.restart_flows()
        return self

    @property
    def halted(self):
        return self._halted

    # -- fast-side host interface -----------------------------------------------------

    def fast_write(self, stream_offset, nbytes, payload=None):
        """Host store(s) of ``nbytes`` at ``stream_offset`` through CMB MMIO.

        Returns an event firing when the stores (and any WC flush) have
        been issued to the link.  Persistence is observed separately via
        the credit counter — exactly the split the drop-in API manages.
        """
        ring_address = stream_offset % self.config.cmb_capacity
        if ring_address + nbytes <= self.config.cmb_capacity:
            return self.cmb_region.store(
                ring_address, nbytes,
                tag={"contributions": [(stream_offset, nbytes, payload)]},
            )
        # The write wraps the MMIO ring: split into two stores, issued
        # back to back.  Both are posted writes on the same link, so
        # their delivery order — and therefore the intake order at the
        # device — matches the stream order.
        first = self.config.cmb_capacity - ring_address
        head = self.cmb_region.store(
            ring_address, first,
            tag={"contributions": [(stream_offset, first, payload)]},
        )
        tail = self.cmb_region.store(
            0, nbytes - first,
            tag={"contributions": [
                (stream_offset + first, nbytes - first, payload)
            ]},
        )
        return self.engine.all_of([head, tail])

    def fast_fence(self):
        """Flush the host's WC buffer toward the device."""
        return self.cmb_region.fence()

    def read_credit(self):
        """Poll the policy-visible credit counter over the control MMIO.

        Event value is the counter (an integer byte count).
        """
        done = self.engine.event()
        load = self.control_region.load(8)

        def _return_value(_event):
            done.succeed(self.transport.visible_counter())

        load.then(_return_value)
        return done

    def read_credit_raw(self):
        """The local (policy-free) counter, same MMIO cost."""
        done = self.engine.event()
        self.control_region.load(8).then(
            lambda _ev: done.succeed(self.cmb.credit.value)
        )
        return done

    # -- vendor-specific admin commands (Section 4.2 / 7.1) -----------------------------

    def _register_admin_handlers(self):
        firmware = self.conventional.firmware

        def set_standalone(_command):
            return self.transport.set_standalone().value

        def set_primary(_command):
            return self.transport.set_primary().value

        def set_secondary(command):
            primary = command.arguments.get("primary", "unknown")
            return self.transport.set_secondary(primary).value

        def add_peer(command):
            peer = command.arguments["peer"]
            self.transport.add_peer(peer)
            return peer

        def remove_peer(command):
            peer = command.arguments["peer"]
            self.transport.remove_peer(peer)
            return peer

        def configure(command):
            if "replication_policy" in command.arguments:
                self.transport.policy = policy_by_name(
                    command.arguments["replication_policy"]
                )
            if "update_period_ns" in command.arguments:
                self.transport.update_period_ns = float(
                    command.arguments["update_period_ns"]
                )
            if "scheduling_mode" in command.arguments:
                self.conventional.scheduler.mode = (
                    command.arguments["scheduling_mode"]
                )
            if "destage_latency_threshold_ns" in command.arguments:
                self.destage.latency_threshold_ns = float(
                    command.arguments["destage_latency_threshold_ns"]
                )
            return "configured"

        def query_status(_command):
            return {
                "role": self.transport.role.value,
                "transport_status": self.transport.status_register,
                "credit": self.cmb.credit.value,
                "visible_credit": self.transport.visible_counter(),
                "destaged_offset": self.destage.destaged_offset,
                "destage_head": self.destage.head_sequence,
                "destage_tail": self.destage.tail_sequence,
            }

        firmware.register_admin_handler(
            AdminOpcode.XSSD_SET_STANDALONE, set_standalone)
        firmware.register_admin_handler(
            AdminOpcode.XSSD_SET_PRIMARY, set_primary)
        firmware.register_admin_handler(
            AdminOpcode.XSSD_SET_SECONDARY, set_secondary)
        firmware.register_admin_handler(AdminOpcode.XSSD_ADD_PEER, add_peer)
        firmware.register_admin_handler(
            AdminOpcode.XSSD_REMOVE_PEER, remove_peer)
        firmware.register_admin_handler(AdminOpcode.XSSD_CONFIGURE, configure)
        firmware.register_admin_handler(
            AdminOpcode.XSSD_QUERY_STATUS, query_status)

    # -- convenience ---------------------------------------------------------------------

    def admin(self, opcode, **arguments):
        """Issue a vendor admin command through the NVMe path."""
        return self.conventional.admin(opcode, **arguments)
