"""Device observability: one structured snapshot of a Villars device.

Operators of a real device would read these through SMART-style log
pages; benchmarks and examples use them to explain results.  The
snapshot is plain data (nested dicts of numbers/strings), cheap to take,
and safe to take at any simulation instant — it never advances time.
"""

from repro.ssd.scheduler import Source


def _nand_counters(channels):
    """Die-resource-manager counters summed across a device's channels."""
    totals = {}
    for channel in channels:
        for key, value in channel.resources.snapshot().items():
            totals[key] = totals.get(key, 0) + value
    return totals


def device_snapshot(device):
    """A structured metrics snapshot of one :class:`XssdDevice`."""
    cmb = device.cmb
    ring = cmb.ring
    destage = device.destage
    conventional = device.conventional
    scheduler = conventional.scheduler
    transport = device.transport
    elapsed = device.engine.now

    return {
        "time_ns": elapsed,
        "fast_side": {
            "bytes_received": cmb.bytes_received,
            "chunks_received": cmb.chunks_received,
            "credit": cmb.credit.value,
            "in_flight_bytes": cmb.in_flight_bytes,
            "queue_free_bytes": cmb.queue_free_bytes,
            "intake_backlog_bytes": cmb.intake_backlog_bytes,
            "intake_backlog_peak": cmb.intake_backlog_peak,
            "ring": {
                "capacity": ring.capacity,
                "frontier": ring.frontier,
                "released": ring.released,
                "used_bytes": ring.used_bytes,
                "has_gap": ring.has_gap,
            },
            "backing": {
                "bytes_written": device.backing.bytes_written,
                "bytes_read": device.backing.bytes_read,
                "port_utilization": device.backing.port.utilization(elapsed),
            },
        },
        "destage": {
            "pages_written": destage.pages_written,
            "filler_bytes": destage.filler_bytes_total,
            "destaged_offset": destage.destaged_offset,
            "outstanding_pages": destage.outstanding_pages,
            "ring_window": (destage.head_sequence, destage.durable_tail,
                            destage.tail_sequence),
        },
        "conventional_side": {
            "scheduler_mode": scheduler.mode.value,
            "pages_by_source": {
                "conventional": scheduler.dispatched[Source.CONVENTIONAL],
                "destage": scheduler.dispatched[Source.DESTAGE],
            },
            "bytes_by_source": {
                "conventional": scheduler.bytes_written[Source.CONVENTIONAL],
                "destage": scheduler.bytes_written[Source.DESTAGE],
            },
            "ftl": {
                "writes": conventional.ftl.writes_served,
                "reads": conventional.ftl.reads_served,
                "program_failures": conventional.ftl.program_failures,
                "read_retries": conventional.ftl.read_retries,
                "read_retirements": conventional.ftl.read_retirements,
                "mapped_lbas": len(conventional.ftl.table),
                "free_blocks": conventional.ftl.allocator.free_blocks(),
                "bad_blocks": len(conventional.ftl.allocator.bad_blocks),
            },
            "gc": {
                "collections": conventional.gc.collections,
                "pages_migrated": conventional.gc.pages_migrated,
            },
            "nand": _nand_counters(conventional.channels),
            "buffer": {
                "used_bytes": conventional.data_buffer.used_bytes,
                "hits": conventional.data_buffer.hits,
                "misses": conventional.data_buffer.misses,
            },
        },
        "transport": {
            "role": transport.role.value,
            "status": transport.status_register,
            "policy": transport.policy.name,
            "visible_credit": transport.visible_counter(),
            "shadow_counters": {
                name: counter.value
                for name, counter in transport.shadow_counters.items()
            },
            "updates_sent": transport.counter_updates_sent,
            "updates_received": transport.counter_updates_received,
        },
        "health": {
            # Stamped by ChainSupervisor._mirror_brownout; devices that
            # never ran under a supervisor report zeros.
            "brownout_enters": getattr(device, "brownout_enters", 0),
            "brownout_exits": getattr(device, "brownout_exits", 0),
            "brownout_active": getattr(device, "brownout_active", 0),
        },
        "faults": {
            "torn_writes": cmb.torn_writes,
            "chunks_discarded": cmb.chunks_discarded,
            "chunks_shed": cmb.chunks_shed,
            "bytes_shed": cmb.bytes_shed,
            "corrupt_dropped": transport.corrupt_dropped,
            "sends_retried": transport.sends_retried,
            "chunks_abandoned": len(transport.chunks_abandoned),
        },
        "link": {
            "tlps_down": conventional.link.tlps_down,
            "tlps_up": conventional.link.tlps_up,
            "down_utilization": conventional.link.downstream.utilization(
                elapsed
            ),
            "up_utilization": conventional.link.upstream.utilization(
                elapsed
            ),
        },
    }


def format_snapshot(snapshot, indent=0):
    """Render a snapshot as indented text for logs and examples."""
    lines = []
    pad = "  " * indent
    for key, value in snapshot.items():
        if isinstance(value, dict):
            lines.append(f"{pad}{key}:")
            lines.append(format_snapshot(value, indent + 1))
        elif isinstance(value, float):
            lines.append(f"{pad}{key}: {value:.3f}")
        else:
            lines.append(f"{pad}{key}: {value}")
    return "\n".join(lines)
