"""The sequenced ring buffer: ordered byte stream over a bounded window.

Both sides of a Villars device are rings over the same logical stream
(Section 3.1, Fig. 3): the fast side's PM ring takes writes at the tail,
the conventional side's (much larger) LBA ring receives the destaged data.

The ring works in *absolute stream offsets* — every byte ever appended has
a unique, monotonically increasing position.  Three pointers partition the
stream:

    released <= frontier <= highest pending write end
        |           |
        |           +-- contiguous frontier: every byte below is present
        +-------------- bytes below are destaged/freed (ring space reclaimed)

The paper's two subtleties both live here:

* **mostly sequential arrival** — writes may land out of order within the
  window (Section 4.1); out-of-order chunks park in ``pending`` until the
  hole before them fills;
* **the gap rule** — the credit counter only advances when contiguous
  chunks form; destaging stops at the first gap (Section 4.1, "Crash
  Consistency Behavior").  ``frontier`` *is* that rule.
"""


class RingOverflowError(Exception):
    """A write landed beyond the ring's free window.

    Flow control is advisory (Section 4.1): a host that ignores its credit
    budget can overrun the ring, and the device rejects the write.  Seeing
    this exception in a simulation means the client violated the protocol.
    """


class SequencedRing:
    """A bounded window over an append-only byte stream.

    Payloads ride with their chunks so downstream consumers (destage,
    recovery, secondary apply) can reconstruct the exact data stream.
    """

    def __init__(self, capacity):
        if capacity <= 0:
            raise ValueError("ring capacity must be positive")
        self.capacity = capacity
        self.released = 0  # all bytes below: freed
        self.frontier = 0  # all bytes below: received contiguously
        self._consumed = 0  # all bytes below: handed to the consumer
        # Contiguous chunks awaiting consumption: list of
        # (offset, nbytes, payload), sorted, covering [consumed, frontier).
        self._ready = []
        # Out-of-order chunks keyed by start offset.
        self._pending = {}

    # -- write side -------------------------------------------------------------

    def write(self, offset, nbytes, payload=None):
        """Accept ``nbytes`` at stream ``offset``; returns newly contiguous bytes.

        Raises :class:`RingOverflowError` when the write does not fit in the
        window ``[released, released + capacity)``.  Overlapping rewrites of
        already-received bytes are rejected as protocol violations too.
        """
        if nbytes < 0:
            raise ValueError("negative write size")
        if nbytes == 0:
            return 0
        end = offset + nbytes
        if end > self.released + self.capacity:
            raise RingOverflowError(
                f"write [{offset}, {end}) exceeds window "
                f"[{self.released}, {self.released + self.capacity})"
            )
        if offset < self.frontier:
            raise RingOverflowError(
                f"write at {offset} overlaps received data "
                f"(frontier {self.frontier})"
            )
        if offset in self._pending:
            raise RingOverflowError(f"duplicate write at offset {offset}")
        self._pending[offset] = (nbytes, payload)
        return self._advance_frontier()

    def _advance_frontier(self):
        """Absorb pending chunks that now touch the frontier."""
        advanced = 0
        while self.frontier in self._pending:
            nbytes, payload = self._pending.pop(self.frontier)
            self._ready.append((self.frontier, nbytes, payload))
            self.frontier += nbytes
            advanced += nbytes
        return advanced

    # -- read / consume side -------------------------------------------------------

    def consumable_bytes(self):
        """Bytes that are contiguous but not yet consumed."""
        return self.frontier - self._consumed

    def consume(self, max_bytes):
        """Take up to ``max_bytes`` of contiguous chunks, in stream order.

        Returns a list of ``(offset, nbytes, payload)``.  A chunk is never
        split: the last chunk may push the total slightly over
        ``max_bytes`` only if it is the *first* chunk taken (so a consumer
        asking for at least one page's worth always makes progress).
        """
        if max_bytes <= 0:
            return []
        taken = []
        total = 0
        while self._ready:
            offset, nbytes, payload = self._ready[0]
            if taken and total + nbytes > max_bytes:
                break
            taken.append(self._ready.pop(0))
            total += nbytes
            self._consumed += nbytes
            if total >= max_bytes:
                break
        return taken

    def peek_ready(self):
        """Non-destructive view of the consumable chunks."""
        return list(self._ready)

    # -- space management -------------------------------------------------------------

    def release(self, up_to):
        """Free ring space below stream offset ``up_to`` (post-destage)."""
        if up_to > self._consumed:
            raise ValueError(
                f"cannot release beyond consumed point "
                f"({up_to} > {self._consumed})"
            )
        if up_to > self.released:
            self.released = up_to

    @property
    def used_bytes(self):
        """Window bytes not yet released (includes pending gaps)."""
        highest = max(
            [self.frontier]
            + [offset + nbytes for offset, (nbytes, _p) in self._pending.items()]
        )
        return highest - self.released

    @property
    def free_bytes(self):
        return self.capacity - self.used_bytes

    @property
    def has_gap(self):
        """True when out-of-order chunks wait behind a hole."""
        return bool(self._pending)

    def gap_ranges(self):
        """The missing byte ranges blocking the frontier (for diagnostics)."""
        if not self._pending:
            return []
        ranges = []
        cursor = self.frontier
        for offset in sorted(self._pending):
            if offset > cursor:
                ranges.append((cursor, offset))
            cursor = max(cursor, offset + self._pending[offset][0])
        return ranges

    def drop_pending(self):
        """Discard out-of-order chunks (crash: data beyond the gap is lost)."""
        dropped = len(self._pending)
        self._pending.clear()
        return dropped
