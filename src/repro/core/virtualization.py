"""CMB segmentation for multi-tenant use: the Section 7.2 extension.

Hyperscalers would want many virtual databases sharing one device.  The
paper observes nothing in the X-SSD architecture prevents an SR-IOV-style
implementation: "segment the CMB across smaller, independent regions",
each with its own replication configuration, assigned to different
virtual machines.

:class:`SegmentedCmb` implements the device-side core of that idea over
the simulation: it carves the CMB capacity into fixed segments, each with

* its own :class:`~repro.core.ring.SequencedRing` window and credit
  counter (full isolation — one tenant's gaps or back-pressure never
  affect another's counter);
* its own destage cursor into a dedicated LBA sub-ring on the
  conventional side;
* per-segment statistics for accounting/billing-style introspection.

The intake queue and the PM port remain shared (they are physical), so
tenants contend on bandwidth exactly as virtual functions of one device
would.
"""

from repro.core.ring import SequencedRing
from repro.sim.stats import Counter


class CmbSegment:
    """One tenant's virtual fast side."""

    def __init__(self, engine, segment_id, capacity, name):
        self.segment_id = segment_id
        self.name = name
        self.capacity = capacity
        self.ring = SequencedRing(capacity=capacity)
        self.credit = Counter(engine, name=f"{name}.credit")
        self.bytes_received = 0
        self.chunks_received = 0

    @property
    def in_flight_bytes(self):
        return self.bytes_received - self.credit.value


class SegmentedCmb:
    """Carves one device's CMB into isolated tenant segments.

    The segment table is static per configuration cycle, like SR-IOV
    virtual functions: ``provision(name)`` hands out the next segment,
    ``segment_write`` routes a tenant write through the device's shared
    intake bandwidth into the tenant's private ring, and the per-segment
    credit counter answers that tenant's durability questions.
    """

    def __init__(self, device, segments=4):
        if segments < 1:
            raise ValueError("need at least one segment")
        capacity = device.config.cmb_capacity
        if capacity % segments:
            raise ValueError("CMB capacity must divide evenly by segments")
        self.device = device
        self.engine = device.engine
        self.segment_capacity = capacity // segments
        self.total_segments = segments
        self._segments = []
        self._by_name = {}

    def provision(self, tenant_name):
        """Allocate the next free segment to ``tenant_name``."""
        if tenant_name in self._by_name:
            raise ValueError(f"tenant {tenant_name!r} already provisioned")
        if len(self._segments) >= self.total_segments:
            raise RuntimeError("all CMB segments are provisioned")
        segment = CmbSegment(
            self.engine, len(self._segments), self.segment_capacity,
            name=f"seg-{tenant_name}",
        )
        self._segments.append(segment)
        self._by_name[tenant_name] = segment
        return segment

    def segment_of(self, tenant_name):
        try:
            return self._by_name[tenant_name]
        except KeyError:
            raise KeyError(f"unknown tenant {tenant_name!r}") from None

    # -- data path ------------------------------------------------------------------

    def segment_write(self, segment, offset, nbytes, payload=None):
        """A tenant write at its *segment-relative* stream offset.

        Physically the bytes cross the shared link and PM port (so
        tenants contend on bandwidth), but ring state and credit are
        fully private.  Returns an event firing at persistence.
        """
        if segment not in self._segments:
            raise ValueError("segment does not belong to this device")
        if nbytes <= 0:
            raise ValueError("writes need at least one byte")
        segment.bytes_received += nbytes
        segment.chunks_received += 1
        done = self.engine.event()

        def _persisted(_event):
            advanced = segment.ring.write(offset, nbytes, payload)
            if advanced:
                segment.credit.advance(advanced)
            done.succeed(segment.credit.value)

        # Shared physical path: link store, then the PM port.
        issue = self.device.fast_fence()  # flush any unrelated WC state

        def _through_port(_event):
            self.device.backing.write(nbytes).then(_persisted)

        issue.then(_through_port)
        return done

    def release_segment_space(self, segment, up_to):
        """Tenant-side destage acknowledgment: frees its private window."""
        consumed = segment.ring.consume(up_to)
        if consumed:
            end = consumed[-1][0] + consumed[-1][1]
            segment.ring.release(end)
        return consumed

    # -- accounting ------------------------------------------------------------------

    def usage_report(self):
        """Per-tenant byte counters (the hyperscaler billing view)."""
        return {
            name: {
                "received": segment.bytes_received,
                "persistent": segment.credit.value,
                "in_flight": segment.in_flight_bytes,
            }
            for name, segment in self._by_name.items()
        }
