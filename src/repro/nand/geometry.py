"""Flash geometry: channels / ways / dies / blocks / pages and addressing."""

from dataclasses import dataclass

from repro.sim.units import KIB


@dataclass(frozen=True)
class PhysicalPageAddress:
    """A fully resolved flash page location."""

    channel: int
    way: int
    block: int
    page: int

    def __str__(self):
        return f"ch{self.channel}/w{self.way}/b{self.block}/p{self.page}"


@dataclass(frozen=True)
class Geometry:
    """The shape of the flash array.

    Defaults approximate the Cosmos+ OpenSSD platform (8 channels x 8 ways,
    16 KiB pages, 256 pages per block).  ``blocks_per_die`` defaults small
    so unit tests stay fast; device-level configs raise it.
    """

    channels: int = 8
    ways_per_channel: int = 8
    blocks_per_die: int = 64
    pages_per_block: int = 256
    page_bytes: int = 16 * KIB
    #: Planes per die.  Blocks interleave across planes (block ``b`` lives
    #: on plane ``b % planes_per_die``); multi-plane operations address one
    #: aligned block per plane.  The default of 1 keeps the idealized
    #: single-plane behavior; realistic configs use 2 or 4.
    planes_per_die: int = 1

    def __post_init__(self):
        for name in (
            "channels",
            "ways_per_channel",
            "blocks_per_die",
            "pages_per_block",
            "page_bytes",
            "planes_per_die",
        ):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        if self.blocks_per_die % self.planes_per_die:
            raise ValueError(
                "blocks_per_die must be a multiple of planes_per_die"
            )

    @property
    def dies(self):
        """Total number of independently busy flash dies."""
        return self.channels * self.ways_per_channel

    @property
    def pages_per_die(self):
        return self.blocks_per_die * self.pages_per_block

    # -- plane addressing ----------------------------------------------------

    def plane_of(self, block):
        """The plane a block index belongs to (interleaved layout)."""
        return block % self.planes_per_die

    def stripe_base(self, block):
        """First block of the aligned multi-plane stripe containing ``block``."""
        return block - (block % self.planes_per_die)

    def stripe_of(self, block):
        """All block indices of the aligned stripe containing ``block``."""
        base = self.stripe_base(block)
        return list(range(base, base + self.planes_per_die))

    @property
    def total_pages(self):
        return self.dies * self.pages_per_die

    @property
    def capacity_bytes(self):
        return self.total_pages * self.page_bytes

    def validate(self, address):
        """Raise ``ValueError`` if ``address`` is outside the array."""
        if not 0 <= address.channel < self.channels:
            raise ValueError(f"channel {address.channel} out of range")
        if not 0 <= address.way < self.ways_per_channel:
            raise ValueError(f"way {address.way} out of range")
        if not 0 <= address.block < self.blocks_per_die:
            raise ValueError(f"block {address.block} out of range")
        if not 0 <= address.page < self.pages_per_block:
            raise ValueError(f"page {address.page} out of range")

    def page_index(self, address):
        """Flatten an address into a dense integer (for mapping tables)."""
        self.validate(address)
        die = address.channel * self.ways_per_channel + address.way
        return (
            die * self.pages_per_die
            + address.block * self.pages_per_block
            + address.page
        )

    def address_of(self, page_index):
        """Inverse of :meth:`page_index`."""
        if not 0 <= page_index < self.total_pages:
            raise ValueError(f"page index {page_index} out of range")
        die, rest = divmod(page_index, self.pages_per_die)
        block, page = divmod(rest, self.pages_per_block)
        channel, way = divmod(die, self.ways_per_channel)
        return PhysicalPageAddress(channel, way, block, page)
