"""Exception hierarchy for modeled NAND faults.

These are *modeled* device conditions, not simulator bugs: the firmware is
expected to catch and handle them (bad-block remapping, ECC retries), just
as real firmware does.
"""


class NandError(Exception):
    """Base class for modeled flash faults."""


class BadBlockError(NandError):
    """The target block is marked bad; the operation was not performed."""


class WriteWithoutEraseError(NandError):
    """Attempt to program a page that was not erased since its last program."""


class ProgramOrderError(NandError):
    """Pages within a block must be programmed in ascending order."""


class UncorrectableError(NandError):
    """Read hit more bit errors than the ECC can correct."""


class ProgramFailedError(NandError):
    """A page program did not verify; the block must be retired."""
