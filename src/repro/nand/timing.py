"""NAND operation timings.

The numbers default to the MLC-class NAND the Cosmos+ platform carries:
program latency in the several-hundred-microsecond range, reads around
70 us, block erases in milliseconds, and an NV-DDR channel bus around
400 MB/s.  The simulation's conclusions depend on the *orders of
magnitude* — flash programs are ~1000x slower than PM stores — and these
are faithful.
"""

from dataclasses import dataclass

from repro.sim.units import MICROS, MILLIS


@dataclass(frozen=True)
class NandTiming:
    """Latency and bus parameters for one flash generation."""

    t_program: float = 600 * MICROS
    t_read: float = 70 * MICROS
    t_erase: float = 3 * MILLIS
    bus_bandwidth: float = 0.4  # bytes/ns == GB/s, NV-DDR2-class
    #: Latency to park an in-flight erase on an ERASE SUSPEND command
    #: (the die finishes the current erase pulse before yielding).
    t_erase_suspend: float = 25 * MICROS
    #: Penalty paid on ERASE RESUME before erase progress continues
    #: (re-ramping the erase voltage).
    t_erase_resume: float = 35 * MICROS
    #: Cell-time multipliers for multi-plane operations: both planes
    #: program/erase concurrently off one command, at (nearly) the
    #: single-plane cell latency.
    multiplane_program_factor: float = 1.0
    multiplane_erase_factor: float = 1.0

    def __post_init__(self):
        if min(self.t_program, self.t_read, self.t_erase) <= 0:
            raise ValueError("NAND latencies must be positive")
        if self.bus_bandwidth <= 0:
            raise ValueError("bus bandwidth must be positive")
        if min(self.t_erase_suspend, self.t_erase_resume) < 0:
            raise ValueError("suspend/resume latencies must be >= 0")
        if min(self.multiplane_program_factor,
               self.multiplane_erase_factor) <= 0:
            raise ValueError("multi-plane factors must be positive")

    def transfer_time(self, nbytes):
        """Time to move ``nbytes`` over the channel bus."""
        return nbytes / self.bus_bandwidth


#: Cosmos+ OpenSSD defaults used by the Villars reference configuration.
COSMOS_PLUS = NandTiming()

#: A faster SLC-like part, useful in ablations.
FAST_SLC = NandTiming(
    t_program=200 * MICROS,
    t_read=25 * MICROS,
    t_erase=1.5 * MILLIS,
    bus_bandwidth=0.8,
)
