"""NAND operation timings.

The numbers default to the MLC-class NAND the Cosmos+ platform carries:
program latency in the several-hundred-microsecond range, reads around
70 us, block erases in milliseconds, and an NV-DDR channel bus around
400 MB/s.  The simulation's conclusions depend on the *orders of
magnitude* — flash programs are ~1000x slower than PM stores — and these
are faithful.
"""

from dataclasses import dataclass

from repro.sim.units import MICROS, MILLIS


@dataclass(frozen=True)
class NandTiming:
    """Latency and bus parameters for one flash generation."""

    t_program: float = 600 * MICROS
    t_read: float = 70 * MICROS
    t_erase: float = 3 * MILLIS
    bus_bandwidth: float = 0.4  # bytes/ns == GB/s, NV-DDR2-class

    def __post_init__(self):
        if min(self.t_program, self.t_read, self.t_erase) <= 0:
            raise ValueError("NAND latencies must be positive")
        if self.bus_bandwidth <= 0:
            raise ValueError("bus bandwidth must be positive")

    def transfer_time(self, nbytes):
        """Time to move ``nbytes`` over the channel bus."""
        return nbytes / self.bus_bandwidth


#: Cosmos+ OpenSSD defaults used by the Villars reference configuration.
COSMOS_PLUS = NandTiming()

#: A faster SLC-like part, useful in ablations.
FAST_SLC = NandTiming(
    t_program=200 * MICROS,
    t_read=25 * MICROS,
    t_erase=1.5 * MILLIS,
    bus_bandwidth=0.8,
)
