"""Flash dies, blocks, and pages: state, constraints, and busy tracking.

A :class:`FlashDie` is the unit of operation exclusivity — one program,
read, or erase at a time.  Blocks enforce erase-before-program and in-order
page programming.  Page contents are arbitrary Python payloads plus a byte
count: the simulator tracks data identity for correctness checks (FTL,
recovery) without materializing real 16 KiB buffers.
"""

from repro.nand.errors import (
    BadBlockError,
    ProgramOrderError,
    WriteWithoutEraseError,
)
from repro.sim.resources import Resource


class Page:
    """One flash page: either erased, or holding a payload."""

    __slots__ = ("payload", "nbytes", "programmed")

    def __init__(self):
        self.payload = None
        self.nbytes = 0
        self.programmed = False

    def program(self, payload, nbytes):
        if self.programmed:
            raise WriteWithoutEraseError("page already programmed")
        self.payload = payload
        self.nbytes = nbytes
        self.programmed = True

    def erase(self):
        self.payload = None
        self.nbytes = 0
        self.programmed = False


class Block:
    """A block of pages with NAND programming constraints."""

    def __init__(self, pages_per_block):
        self.pages = [Page() for _ in range(pages_per_block)]
        self.next_page = 0  # NAND requires ascending program order
        self.erase_count = 0
        # Reads since the last erase: read disturb accumulates on the
        # block's cells and is cleared by erasing (see repro/nand/ecc.py).
        self.read_count = 0
        self.is_bad = False

    def mark_bad(self):
        self.is_bad = True

    def program(self, page_number, payload, nbytes):
        if self.is_bad:
            raise BadBlockError("block is marked bad")
        if page_number != self.next_page:
            raise ProgramOrderError(
                f"page {page_number} programmed out of order "
                f"(expected {self.next_page})"
            )
        self.pages[page_number].program(payload, nbytes)
        self.next_page += 1

    def read(self, page_number):
        if self.is_bad:
            raise BadBlockError("block is marked bad")
        self.read_count += 1
        return self.pages[page_number]

    def erase(self):
        if self.is_bad:
            raise BadBlockError("block is marked bad")
        for page in self.pages:
            page.erase()
        self.next_page = 0
        self.erase_count += 1
        self.read_count = 0

    @property
    def is_full(self):
        return self.next_page >= len(self.pages)


class FlashDie:
    """One die: a set of blocks plus a single-operation busy resource.

    The storage controller acquires the die, waits the operation's latency
    (plus bus transfer time for the data phase), then releases.  The
    acquire/operate/release protocol lives in :class:`~repro.nand.channel.Channel`
    so scheduling policy stays out of the die model.
    """

    def __init__(self, engine, geometry, timing, channel_id, way_id):
        self.engine = engine
        self.geometry = geometry
        self.timing = timing
        self.channel_id = channel_id
        self.way_id = way_id
        self.blocks = [
            Block(geometry.pages_per_block)
            for _ in range(geometry.blocks_per_die)
        ]
        self.busy = Resource(engine, capacity=1)
        self.programs = 0
        self.reads = 0
        self.erases = 0

    @property
    def is_idle(self):
        """True when no operation holds the die and none is queued."""
        return self.busy.in_use == 0 and self.busy.queue_length == 0

    def program_page(self, block, page, payload, nbytes):
        """State change only; timing is applied by the channel."""
        self.blocks[block].program(page, payload, nbytes)
        self.programs += 1

    def read_page(self, block, page):
        self.reads += 1
        return self.blocks[block].read(page)

    def erase_block(self, block):
        self.blocks[block].erase()
        self.erases += 1
