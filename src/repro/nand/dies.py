"""Per-die resource management: suspend/resume, cache registers, planes.

Real NAND dies are richer than a one-operation lock.  Following the
SimpleSSD/Amber line of work (model *all* the resources — dies, planes,
cache registers — or tail latency is fiction), this module adds:

* **Erase suspend/resume** — a host read arriving at a die mid-erase can
  suspend the erase (``t_erase_suspend`` to park it), be served, and let
  the erase resume (``t_erase_resume`` penalty, bounded number of
  suspensions per erase).  Which operation *classes* may be suspended is
  a QoS decision (:class:`DieQos`), because suspending GC erases helps
  read tails while suspending destage erases can hurt log durability
  latency.
* **Cache-program pipelining** — each die has one cache register per
  plane group; the next page's data phase (bus transfer into the
  register) overlaps the cell array's current program, so a sequential
  stream pays ``max(t_transfer, t_program)`` per page instead of the sum.
* **Multi-plane accounting** — per-die plane occupancy plus validation
  that a multi-plane operation addresses one aligned block per plane at
  the same page offset (the constraint real parts impose).

The manager owns *policy-free mechanism*: the channel drives the
protocol, the FTL/scheduler pick operation classes, and :class:`DieQos`
(shared between the scheduler and every channel) decides what is allowed.
"""

from collections import deque
from dataclasses import dataclass, field

from repro.sim.resources import Resource


@dataclass
class DieQos:
    """Shared QoS policy for die-level operation sequencing.

    One instance is shared by every channel's resource manager and the
    write scheduler (see :meth:`repro.ssd.scheduler.WriteScheduler.set_qos`),
    so a single admin update changes behavior device-wide.  The defaults
    are all *off*: an untouched device behaves exactly like the idealized
    backend (one op per die, no preemption), which keeps the existing
    figures and replay determinism intact.
    """

    #: Master switch: host reads may suspend in-flight erases.
    suspend_for_reads: bool = False
    #: Erase classes that may be suspended ("gc", "destage", "host").
    suspendable_classes: tuple = ("gc",)
    #: Real parts bound how often one erase may be interrupted.
    max_suspends_per_erase: int = 4
    #: Scheduler batches same-source writes into multi-plane programs.
    multi_plane_writes: bool = False
    #: Programs pipeline through the die cache register.
    cache_program: bool = False

    def allows_suspension(self, op_class):
        return (self.suspend_for_reads
                and op_class in self.suspendable_classes)


@dataclass
class _ActiveErase:
    """Bookkeeping for one in-flight (possibly suspended) erase."""

    op_class: str
    suspends_left: int
    #: Armed while the erase is interruptible; firing it starts suspension.
    interrupt: object = None
    #: True between the interrupt firing and the read window opening
    #: (reads arriving in that span still join the window).
    opening: bool = False


class _DieState:
    """Per-die mutable state the manager arbitrates over."""

    __slots__ = ("busy", "cache_slot", "erase", "read_queue", "window",
                 "resume", "adopted")

    def __init__(self, busy, engine):
        self.busy = busy  # the FlashDie's one-op Resource (shared view)
        self.cache_slot = Resource(engine, capacity=1)
        self.erase = None  # _ActiveErase while an erase holds the die
        self.read_queue = deque()  # grant events for preempting reads
        self.window = False  # True while suspended-erase reads are served
        self.resume = None  # event the draining window fires for the erase
        # Grant events converted to plain busy holders when their erase
        # ended before a window could serve them (see run_erase finally).
        self.adopted = set()


class _ReadGrant:
    """Handle returned by :meth:`DieResourceManager.read_grant`."""

    __slots__ = ("event", "preempted")

    def __init__(self, event, preempted):
        self.event = event
        self.preempted = preempted


class DieResourceManager:
    """Tracks busy state, cache registers, and suspension per die.

    One manager serves one channel's ways.  All grant paths reduce to the
    die's FIFO :class:`Resource` when the corresponding QoS feature is
    off, so an all-defaults :class:`DieQos` reproduces the idealized
    backend event-for-event.
    """

    def __init__(self, engine, geometry, timing, dies, qos=None):
        self.engine = engine
        self.geometry = geometry
        self.timing = timing
        self.qos = qos if qos is not None else DieQos()
        self._states = [_DieState(die.busy, engine) for die in dies]
        # Introspection counters (the nand bench reads these).
        self.suspends = 0
        self.resumes = 0
        self.reads_preempting = 0
        self.cache_programs = 0
        self.multi_plane_programs = 0
        self.multi_plane_erases = 0

    # -- plain acquisition (programs, non-preempting ops) --------------------

    def acquire(self, way):
        """FIFO die grant, exactly the semantics of ``die.busy.request()``."""
        return self._states[way].busy.request()

    def release(self, way):
        self._states[way].busy.release()

    # -- read path (may preempt a suspendable erase) -------------------------

    def read_grant(self, way):
        """Grant for a read; preempts a suspendable in-flight erase.

        Returns a :class:`_ReadGrant`; yield its ``event``, do the read,
        then call :meth:`end_read` with the grant.  When no suspendable
        erase is in flight this is exactly ``die.busy.request()``.
        """
        state = self._states[way]
        erase = state.erase
        if erase is not None:
            joinable = (
                state.window
                or erase.opening
                or (erase.interrupt is not None
                    and not erase.interrupt.triggered
                    and erase.suspends_left > 0)
            )
            if joinable:
                event = self.engine.event()
                state.read_queue.append(event)
                self.reads_preempting += 1
                if state.window:
                    pass  # served when the current reader finishes
                elif not erase.opening:
                    erase.opening = True
                    erase.interrupt.succeed()
                return _ReadGrant(event, preempted=True)
        return _ReadGrant(state.busy.request(), preempted=False)

    def end_read(self, way, grant):
        state = self._states[way]
        if grant.preempted:
            if grant.event in state.adopted:
                # Served via the normal FIFO after its erase ended.
                state.adopted.discard(grant.event)
                state.busy.release()
            else:
                self._grant_next(state)
        else:
            state.busy.release()

    def _open_window(self, state):
        state.window = True
        if state.erase is not None:
            state.erase.opening = False
        self._grant_next(state)

    def _grant_next(self, state):
        if state.read_queue:
            state.read_queue.popleft().succeed()
        else:
            state.window = False
            state.resume.succeed()

    # -- erase protocol (driven by the channel via ``yield from``) -----------

    def run_erase(self, way, duration, op_class, erase_blocks):
        """Generator implementing the (suspendable) erase cell phase.

        The caller must hold the die (via :meth:`acquire`).  ``erase_blocks``
        is a thunk applying the state change; it runs up front, as the
        idealized backend did.  When the QoS forbids suspension for
        ``op_class`` this is exactly the old one-shot cell timer.
        """
        engine = self.engine
        if not self.qos.allows_suspension(op_class):
            erase_blocks()
            yield engine.at(engine.now + duration)
            return
        state = self._states[way]
        erase = _ActiveErase(
            op_class=op_class,
            suspends_left=self.qos.max_suspends_per_erase,
        )
        state.erase = erase
        erase_blocks()
        remaining = duration
        try:
            while remaining > 0:
                interrupt = engine.event()
                erase.interrupt = interrupt
                if state.read_queue and erase.suspends_left > 0:
                    # Readers queued while we were resuming: re-suspend
                    # immediately rather than making them wait out the
                    # remaining cell time.
                    erase.opening = True
                    interrupt.succeed()
                timer = engine.timeout(remaining)
                started = engine.now
                yield engine.any_of([timer, interrupt])
                erase.interrupt = None
                if not interrupt.triggered:
                    break
                timer.cancel()
                remaining -= engine.now - started
                erase.suspends_left -= 1
                self.suspends += 1
                if self.timing.t_erase_suspend > 0:
                    yield engine.timeout(self.timing.t_erase_suspend)
                state.resume = resume = engine.event()
                self._open_window(state)
                yield resume
                state.resume = None
                self.resumes += 1
                if self.timing.t_erase_resume > 0:
                    yield engine.timeout(self.timing.t_erase_resume)
        finally:
            state.erase = None
            # Readers that queued but never saw a window (erase finished
            # or budget exhausted at the same instant) fall back to
            # normal FIFO acquisition so nobody deadlocks.
            while state.read_queue:
                event = state.read_queue.popleft()
                state.adopted.add(event)
                state.busy.request().then(
                    lambda _grant, e=event: e.succeed()
                )

    # -- cache register ------------------------------------------------------

    def cache_slot(self, way):
        """The die's one-deep cache-register pipeline slot."""
        return self._states[way].cache_slot

    # -- multi-plane validation ----------------------------------------------

    def validate_multi_plane(self, ops):
        """Check a multi-plane op list: one aligned block per plane,
        identical page offset.  ``ops`` is ``[(block, page), ...]``."""
        geometry = self.geometry
        if not 2 <= len(ops) <= geometry.planes_per_die:
            raise ValueError(
                f"multi-plane op needs 2..{geometry.planes_per_die} "
                f"planes, got {len(ops)}"
            )
        blocks = [block for block, _page in ops]
        planes = {geometry.plane_of(block) for block in blocks}
        if len(planes) != len(blocks):
            raise ValueError(
                f"multi-plane blocks {blocks} collide on a plane"
            )
        bases = {geometry.stripe_base(block) for block in blocks}
        if len(bases) != 1:
            raise ValueError(
                f"multi-plane blocks {blocks} are not stripe-aligned"
            )
        pages = {page for _block, page in ops}
        if len(pages) != 1:
            raise ValueError(
                f"multi-plane pages must share one offset, got {pages}"
            )

    # -- introspection -------------------------------------------------------

    def suspended_erases(self):
        """Ways whose erase is currently parked serving reads."""
        return [way for way, state in enumerate(self._states)
                if state.window]

    def snapshot(self):
        """Counter snapshot for benches and gauges."""
        return {
            "suspends": self.suspends,
            "resumes": self.resumes,
            "reads_preempting": self.reads_preempting,
            "cache_programs": self.cache_programs,
            "multi_plane_programs": self.multi_plane_programs,
            "multi_plane_erases": self.multi_plane_erases,
        }
