"""NAND flash substrate: geometry, timing, dies, channels, error model.

This is the conventional side's storage medium (Section 2.2's Flash Arrays
and the Storage Controller's view of them).  The model captures what the
evaluation depends on:

* the program/read/erase latency asymmetry versus PM (hundreds of
  microseconds versus hundreds of nanoseconds) — the reason the fast side
  exists at all;
* per-die busy exclusivity and per-channel bus sharing — the "gaps" that
  opportunistic destaging (Section 4.3, Fig. 12) schedules into;
* erase-before-program and in-order page programming — the constraints the
  FTL exists to hide.

Parameters default to the Cosmos+ OpenSSD platform the paper prototyped on.
"""

from repro.nand.channel import Channel
from repro.nand.dies import DieQos, DieResourceManager
from repro.nand.ecc import EccFaultModel, ProgramFaultModel, WearCurve
from repro.nand.errors import (
    BadBlockError,
    NandError,
    ProgramOrderError,
    UncorrectableError,
    WriteWithoutEraseError,
)
from repro.nand.flash_array import Block, FlashDie, Page
from repro.nand.geometry import Geometry, PhysicalPageAddress
from repro.nand.timing import NandTiming

__all__ = [
    "Geometry",
    "PhysicalPageAddress",
    "NandTiming",
    "FlashDie",
    "Block",
    "Page",
    "Channel",
    "DieQos",
    "DieResourceManager",
    "EccFaultModel",
    "ProgramFaultModel",
    "WearCurve",
    "NandError",
    "BadBlockError",
    "UncorrectableError",
    "ProgramOrderError",
    "WriteWithoutEraseError",
]
