"""Error model: bit errors, ECC correction, and bad-block genesis.

The Villars paper handles flash faults in the conventional way (Section
7.1): a failed destage program means a bad block, handled internally by
picking a new block.  This module provides the fault injector the tests
and ablations use to exercise those paths deterministically.
"""

from repro.nand.errors import UncorrectableError
from repro.sim.rng import derive


class EccFaultModel:
    """Probabilistic read-error injector with deterministic seeding.

    ``raw_bit_error_rate`` maps to a per-read probability that the codeword
    exceeds the ECC's correction budget.  Real devices see RBERs around
    1e-7..1e-4 depending on wear; for fault-injection tests we crank the
    probability up instead of simulating trillions of reads.
    """

    def __init__(self, seed=0, uncorrectable_probability=0.0):
        if not 0.0 <= uncorrectable_probability <= 1.0:
            raise ValueError("probability outside [0, 1]")
        self.probability = uncorrectable_probability
        self._rng = derive(seed, "ecc")
        self.reads_checked = 0
        self.errors_raised = 0
        self._forced = set()
        self._forced_next = 0

    def force_error_at(self, channel, way, block, page):
        """Make every read of this exact page fail (deterministic tests).

        A hard fault: the page stays uncorrectable across read retries,
        unlike :meth:`force_next_errors` whose injections are transient
        and can be recovered by a retry.
        """
        self._forced.add((channel, way, block, page))

    def force_next_errors(self, count=1):
        """Fail the next ``count`` reads regardless of address.

        This is the schedule-driven injection hook: a fault plan knows
        *when* a read should fail, not which physical page the FTL will
        happen to touch.
        """
        if count < 0:
            raise ValueError("count must be >= 0")
        self._forced_next += count

    def check_read(self, channel, way, block, page):
        """Called by the channel on every read's cell phase."""
        self.reads_checked += 1
        key = (channel, way, block, page)
        if self._forced_next:
            self._forced_next -= 1
            self.errors_raised += 1
            raise UncorrectableError(f"injected uncorrectable read at {key}")
        if key in self._forced:
            self.errors_raised += 1
            raise UncorrectableError(f"forced error at {key}")
        if self.probability and self._rng.random() < self.probability:
            self.errors_raised += 1
            raise UncorrectableError(f"uncorrectable read at {key}")


class ProgramFaultModel:
    """Injects program (write) failures so bad-block handling can be tested.

    The firmware consults :meth:`should_fail` before committing a program;
    a failure marks the block bad and the firmware must re-place the data —
    the destage-failure scenario of Section 7.1.
    """

    def __init__(self, seed=0, failure_probability=0.0):
        if not 0.0 <= failure_probability <= 1.0:
            raise ValueError("probability outside [0, 1]")
        self.probability = failure_probability
        self._rng = derive(seed, "program-fault")
        self._forced = set()
        self._forced_next = 0
        self.failures = 0

    def force_failure_at(self, channel, way, block):
        self._forced.add((channel, way, block))

    def force_next_failures(self, count=1):
        """Fail the next ``count`` programs wherever the allocator places them."""
        if count < 0:
            raise ValueError("count must be >= 0")
        self._forced_next += count

    def should_fail(self, channel, way, block):
        key = (channel, way, block)
        if self._forced_next:
            self._forced_next -= 1
            self.failures += 1
            return True
        if key in self._forced:
            self._forced.discard(key)
            self.failures += 1
            return True
        if self.probability and self._rng.random() < self.probability:
            self.failures += 1
            return True
        return False
