"""Error model: bit errors, ECC correction, and bad-block genesis.

The Villars paper handles flash faults in the conventional way (Section
7.1): a failed destage program means a bad block, handled internally by
picking a new block.  This module provides the fault injector the tests
and ablations use to exercise those paths deterministically.
"""

from repro.nand.errors import UncorrectableError
from repro.sim.rng import derive


class WearCurve:
    """Raw bit error rate as a function of block wear and read disturb.

    Real devices see RBERs around 1e-7 (fresh) to 1e-4 (end of life):
    program/erase cycling degrades the tunnel oxide, and every read of a
    block disturbs its unread cells until the next erase resets them.
    The curve is deliberately simple — a power law in the erase-count
    fraction of rated endurance plus a linear read-disturb term, capped
    at ``max_ber`` — because the *shape* (aged blocks fail reads more,
    hammered blocks fail until erased) is what the retry-then-retire
    path and the aging bench measure.

    ``uncorrectable_scale`` converts a raw BER into the per-read
    probability that the codeword exceeds the ECC correction budget.
    The default keeps fresh blocks effectively error-free while an
    end-of-life block fails a few percent of reads; tests and the aged
    bench crank it instead of simulating trillions of reads.
    """

    def __init__(self, base_ber=1e-7, max_ber=1e-4, endurance=3_000,
                 disturb_reads=100_000, exponent=2.0,
                 uncorrectable_scale=300.0):
        if not 0 < base_ber <= max_ber:
            raise ValueError("need 0 < base_ber <= max_ber")
        if endurance < 1 or disturb_reads < 1:
            raise ValueError("endurance and disturb_reads must be >= 1")
        self.base_ber = base_ber
        self.max_ber = max_ber
        self.endurance = endurance
        self.disturb_reads = disturb_reads
        self.exponent = exponent
        self.uncorrectable_scale = uncorrectable_scale

    def ber(self, erase_count, read_count):
        """Raw bit error rate for a block with this wear state."""
        wear = min(1.0, erase_count / self.endurance) ** self.exponent
        disturb = min(1.0, read_count / self.disturb_reads)
        degraded = min(1.0, wear + disturb)
        return self.base_ber + (self.max_ber - self.base_ber) * degraded

    def uncorrectable_probability(self, erase_count, read_count):
        """Per-read probability the ECC budget is exceeded."""
        return min(
            1.0, self.ber(erase_count, read_count) * self.uncorrectable_scale
        )


class EccFaultModel:
    """Probabilistic read-error injector with deterministic seeding.

    Without a ``wear_curve`` the per-read uncorrectable probability is
    the constant ``uncorrectable_probability``.  With one, the
    probability is a function of the target block's erase count and
    read-disturb count (the channel passes both), so aging devices
    actually degrade and the FTL's retry-then-retire path fires
    organically on worn blocks.
    """

    def __init__(self, seed=0, uncorrectable_probability=0.0,
                 wear_curve=None):
        if not 0.0 <= uncorrectable_probability <= 1.0:
            raise ValueError("probability outside [0, 1]")
        self.probability = uncorrectable_probability
        self.wear_curve = wear_curve
        self._rng = derive(seed, "ecc")
        self.reads_checked = 0
        self.errors_raised = 0
        self._forced = set()
        self._forced_next = 0

    def force_error_at(self, channel, way, block, page):
        """Make every read of this exact page fail (deterministic tests).

        A hard fault: the page stays uncorrectable across read retries,
        unlike :meth:`force_next_errors` whose injections are transient
        and can be recovered by a retry.
        """
        self._forced.add((channel, way, block, page))

    def force_next_errors(self, count=1):
        """Fail the next ``count`` reads regardless of address.

        This is the schedule-driven injection hook: a fault plan knows
        *when* a read should fail, not which physical page the FTL will
        happen to touch.
        """
        if count < 0:
            raise ValueError("count must be >= 0")
        self._forced_next += count

    def check_read(self, channel, way, block, page, erase_count=0,
                   read_count=0):
        """Called by the channel on every read's cell phase.

        ``erase_count`` and ``read_count`` describe the target block's
        wear state; they only matter when a :class:`WearCurve` is
        attached.
        """
        self.reads_checked += 1
        key = (channel, way, block, page)
        if self._forced_next:
            self._forced_next -= 1
            self.errors_raised += 1
            raise UncorrectableError(f"injected uncorrectable read at {key}")
        if key in self._forced:
            self.errors_raised += 1
            raise UncorrectableError(f"forced error at {key}")
        if self.wear_curve is not None:
            probability = self.wear_curve.uncorrectable_probability(
                erase_count, read_count
            )
        else:
            probability = self.probability
        if probability and self._rng.random() < probability:
            self.errors_raised += 1
            raise UncorrectableError(
                f"uncorrectable read at {key} "
                f"(wear {erase_count} erases, {read_count} reads)"
            )


class ProgramFaultModel:
    """Injects program (write) failures so bad-block handling can be tested.

    The firmware consults :meth:`should_fail` before committing a program;
    a failure marks the block bad and the firmware must re-place the data —
    the destage-failure scenario of Section 7.1.
    """

    def __init__(self, seed=0, failure_probability=0.0):
        if not 0.0 <= failure_probability <= 1.0:
            raise ValueError("probability outside [0, 1]")
        self.probability = failure_probability
        self._rng = derive(seed, "program-fault")
        self._forced = set()
        self._forced_next = 0
        self.failures = 0

    def force_failure_at(self, channel, way, block):
        self._forced.add((channel, way, block))

    def force_next_failures(self, count=1):
        """Fail the next ``count`` programs wherever the allocator places them."""
        if count < 0:
            raise ValueError("count must be >= 0")
        self._forced_next += count

    def should_fail(self, channel, way, block):
        key = (channel, way, block)
        if self._forced_next:
            self._forced_next -= 1
            self.failures += 1
            return True
        if key in self._forced:
            self._forced.discard(key)
            self.failures += 1
            return True
        if self.probability and self._rng.random() < self.probability:
            self.failures += 1
            return True
        return False
