"""The flash channel: a shared bus in front of the dies on one channel.

Data phases (moving page bytes to or from a die) serialize on the channel
bus; cell phases (tPROG, tR, tBERS) run inside the die and overlap with
other dies' bus activity.  This split is what creates the scheduling
"gaps" that opportunistic destaging exploits (Section 4.3): while one
die's cells are busy programming, the bus is free to feed another die.

Die-level sequencing beyond the one-op lock — erase suspend/resume,
cache-program pipelining, multi-plane commands — is arbitrated by the
channel's :class:`~repro.nand.dies.DieResourceManager`; which of those
features is active is a :class:`~repro.nand.dies.DieQos` policy decision
shared with the write scheduler.
"""

from repro.nand.dies import DieResourceManager
from repro.nand.flash_array import FlashDie
from repro.sim.resources import BandwidthPipe


class Channel:
    """One channel: its bus plus the dies (ways) hanging off it.

    All operations follow the same acquire-die / bus-transfer / cell-time /
    release protocol and return an event carrying the operation result.
    An optional read ``fault_model`` (see :mod:`repro.nand.ecc`) can fail
    reads with uncorrectable errors; a wear-aware model receives the target
    block's erase and read-disturb counts.
    """

    def __init__(self, engine, geometry, timing, channel_id, fault_model=None,
                 qos=None, name=None):
        self.engine = engine
        self.geometry = geometry
        self.timing = timing
        self.channel_id = channel_id
        self.fault_model = fault_model
        self.name = name or f"ch{channel_id}"
        self.dies = [
            FlashDie(engine, geometry, timing, channel_id, way)
            for way in range(geometry.ways_per_channel)
        ]
        self.resources = DieResourceManager(
            engine, geometry, timing, self.dies, qos=qos
        )
        self.bus = BandwidthPipe(
            engine, timing.bus_bandwidth, name=f"ch{channel_id}.bus"
        )
        # Tracing hooks resolved once: ``engine.tracer`` is fixed for the
        # engine's lifetime, so the per-operation attribute chain (engine
        # -> tracer -> enabled) is wasted work on the data path.
        self._tracer = engine.tracer
        self._tracing = engine.tracer.enabled

    def die(self, way):
        return self.dies[way]

    @property
    def qos(self):
        return self.resources.qos

    # -- operations ---------------------------------------------------------

    def program(self, way, block, page, payload, nbytes=None, cache=False):
        """Program one page; event value is the physical (block, page).

        With ``cache=True`` the data phase loads the die's cache register
        and may overlap the previous program's cell phase (cache-program
        pipelining); the completion still means "this page is in the
        array".
        """
        if nbytes is None:
            nbytes = self.geometry.page_bytes
        proc = (self._cache_program_proc if cache else self._program_proc)
        return self.engine.process(
            proc(way, block, page, payload, nbytes),
            name=f"prog ch{self.channel_id} w{way}",
        )

    def program_multi(self, way, ops, cache=False):
        """Multi-plane program: one cell phase covers one page per plane.

        ``ops`` is ``[(block, page, payload, nbytes), ...]`` addressing
        distinct planes of one aligned stripe at the same page offset.
        Event value is the list of physical ``(block, page)`` pairs.
        """
        ops = [
            (block, page, payload,
             self.geometry.page_bytes if nbytes is None else nbytes)
            for block, page, payload, nbytes in ops
        ]
        self.resources.validate_multi_plane(
            [(block, page) for block, page, _payload, _nbytes in ops]
        )
        return self.engine.process(
            self._program_multi_proc(way, ops, cache),
            name=f"mprog ch{self.channel_id} w{way}",
        )

    def read(self, way, block, page):
        """Read one page; event value is the :class:`Page`."""
        return self.engine.process(
            self._read_proc(way, block, page),
            name=f"read ch{self.channel_id} w{way}",
        )

    def erase(self, way, block, op_class="host"):
        """Erase one block; event value is None.

        ``op_class`` tags the erase for QoS: erases whose class is in
        ``qos.suspendable_classes`` may be suspended by host reads.
        """
        return self.engine.process(
            self._erase_proc(way, [block], op_class,
                             self.timing.t_erase),
            name=f"erase ch{self.channel_id} w{way}",
        )

    def erase_multi(self, way, blocks, op_class="host"):
        """Multi-plane erase: one tBERS covers one block per plane."""
        self.resources.validate_multi_plane([(block, 0) for block in blocks])
        duration = self.timing.t_erase * self.timing.multiplane_erase_factor
        self.resources.multi_plane_erases += 1
        return self.engine.process(
            self._erase_proc(way, list(blocks), op_class, duration),
            name=f"merase ch{self.channel_id} w{way}",
        )

    # -- protocol -----------------------------------------------------------

    def _program_proc(self, way, block, page, payload, nbytes):
        die = self.dies[way]
        tracer = self._tracer
        token = None
        if self._tracing:
            # The flow id follows the destaged page's stream offset when
            # the payload carries one (DestagePage does); conventional
            # payloads trace without a flow arrow.
            token = tracer.begin(
                self.name, "program", way=way, block=block, page=page,
                flow=getattr(payload, "stream_offset", None), nbytes=nbytes,
            )
        yield self.resources.acquire(way)
        try:
            # Data phase first (bus), then the cell program (die-internal).
            yield self.bus.transfer(nbytes)
            die.program_page(block, page, payload, nbytes)
            # Cell time via the shared-instant event: programs on other
            # dies finishing at the same tick ride the same wheel entry
            # and complete in one callback sweep.
            engine = self.engine
            yield engine.at(engine.now + self.timing.t_program)
        finally:
            self.resources.release(way)
            if token is not None:
                tracer.end(token)
        return (block, page)

    def _cache_program_proc(self, way, block, page, payload, nbytes):
        die = self.dies[way]
        resources = self.resources
        tracer = self._tracer
        token = None
        if self._tracing:
            token = tracer.begin(
                self.name, "cache-program", way=way, block=block, page=page,
                flow=getattr(payload, "stream_offset", None), nbytes=nbytes,
            )
        # The cache register takes the data phase while the cell array may
        # still be busy with the previous page; the slot frees as soon as
        # our cell phase begins, letting the next page's transfer overlap.
        slot = resources.cache_slot(way)
        yield slot.request()
        slot_held = True
        try:
            yield self.bus.transfer(nbytes)
            yield resources.acquire(way)
            try:
                die.program_page(block, page, payload, nbytes)
                slot.release()
                slot_held = False
                resources.cache_programs += 1
                engine = self.engine
                yield engine.at(engine.now + self.timing.t_program)
            finally:
                resources.release(way)
        finally:
            if slot_held:
                slot.release()
            if token is not None:
                tracer.end(token)
        return (block, page)

    def _program_multi_proc(self, way, ops, cache):
        die = self.dies[way]
        resources = self.resources
        tracer = self._tracer
        token = None
        if self._tracing:
            token = tracer.begin(
                self.name, "multi-plane-program", way=way,
                blocks=[block for block, _p, _d, _n in ops],
                page=ops[0][1],
                nbytes=sum(nbytes for _b, _p, _d, nbytes in ops),
            )
        slot = resources.cache_slot(way) if cache else None
        slot_held = False
        if slot is not None:
            yield slot.request()
            slot_held = True
        try:
            if slot is None:
                yield resources.acquire(way)
            try:
                # One data phase per plane serializes on the bus; the cell
                # phase is shared.
                for _block, _page, _payload, nbytes in ops:
                    yield self.bus.transfer(nbytes)
                if slot is not None:
                    yield resources.acquire(way)
                try:
                    for block, page, payload, nbytes in ops:
                        die.program_page(block, page, payload, nbytes)
                    if slot_held:
                        slot.release()
                        slot_held = False
                    resources.multi_plane_programs += 1
                    engine = self.engine
                    duration = (self.timing.t_program
                                * self.timing.multiplane_program_factor)
                    yield engine.at(engine.now + duration)
                finally:
                    if slot is not None:
                        resources.release(way)
            finally:
                if slot is None:
                    resources.release(way)
        finally:
            if slot_held:
                slot.release()
            if token is not None:
                tracer.end(token)
        return [(block, page) for block, page, _payload, _nbytes in ops]

    def _read_proc(self, way, block, page):
        die = self.dies[way]
        tracer = self._tracer
        token = None
        if self._tracing:
            token = tracer.begin(self.name, "read", way=way, block=block,
                                 page=page)
        grant = self.resources.read_grant(way)
        yield grant.event
        try:
            # Cell read first, then the data phase moves bytes out.
            engine = self.engine
            yield engine.at(engine.now + self.timing.t_read)
            if self.fault_model is not None:
                target = die.blocks[block]
                self.fault_model.check_read(
                    self.channel_id, way, block, page,
                    erase_count=target.erase_count,
                    read_count=target.read_count,
                )
            result = die.read_page(block, page)
            yield self.bus.transfer(result.nbytes or self.geometry.page_bytes)
        finally:
            self.resources.end_read(way, grant)
            if token is not None:
                tracer.end(token)
        return result

    def _erase_proc(self, way, blocks, op_class, duration):
        die = self.dies[way]
        tracer = self._tracer
        token = None
        if self._tracing:
            token = tracer.begin(self.name, "erase", way=way, blocks=blocks,
                                 op_class=op_class)
        yield self.resources.acquire(way)
        try:
            def erase_blocks():
                for block in blocks:
                    die.erase_block(block)

            yield from self.resources.run_erase(
                way, duration, op_class, erase_blocks
            )
        finally:
            self.resources.release(way)
            if token is not None:
                tracer.end(token)
        return None

    # -- introspection -------------------------------------------------------

    def idle_ways(self):
        """Ways with no operation running or queued (scheduling gaps)."""
        return [way for way, die in enumerate(self.dies) if die.is_idle]
