"""The flash channel: a shared bus in front of the dies on one channel.

Data phases (moving page bytes to or from a die) serialize on the channel
bus; cell phases (tPROG, tR, tBERS) run inside the die and overlap with
other dies' bus activity.  This split is what creates the scheduling
"gaps" that opportunistic destaging exploits (Section 4.3): while one
die's cells are busy programming, the bus is free to feed another die.
"""

from repro.nand.flash_array import FlashDie
from repro.sim.resources import BandwidthPipe


class Channel:
    """One channel: its bus plus the dies (ways) hanging off it.

    All operations follow the same acquire-die / bus-transfer / cell-time /
    release protocol and return an event carrying the operation result.
    An optional read ``fault_model`` (see :mod:`repro.nand.ecc`) can fail
    reads with uncorrectable errors.
    """

    def __init__(self, engine, geometry, timing, channel_id, fault_model=None,
                 name=None):
        self.engine = engine
        self.geometry = geometry
        self.timing = timing
        self.channel_id = channel_id
        self.fault_model = fault_model
        self.name = name or f"ch{channel_id}"
        self.dies = [
            FlashDie(engine, geometry, timing, channel_id, way)
            for way in range(geometry.ways_per_channel)
        ]
        self.bus = BandwidthPipe(
            engine, timing.bus_bandwidth, name=f"ch{channel_id}.bus"
        )
        # Tracing hooks resolved once: ``engine.tracer`` is fixed for the
        # engine's lifetime, so the per-operation attribute chain (engine
        # -> tracer -> enabled) is wasted work on the data path.
        self._tracer = engine.tracer
        self._tracing = engine.tracer.enabled

    def die(self, way):
        return self.dies[way]

    # -- operations ---------------------------------------------------------

    def program(self, way, block, page, payload, nbytes=None):
        """Program one page; event value is the physical (block, page)."""
        if nbytes is None:
            nbytes = self.geometry.page_bytes
        return self.engine.process(
            self._program_proc(way, block, page, payload, nbytes),
            name=f"prog ch{self.channel_id} w{way}",
        )

    def read(self, way, block, page):
        """Read one page; event value is the :class:`Page`."""
        return self.engine.process(
            self._read_proc(way, block, page),
            name=f"read ch{self.channel_id} w{way}",
        )

    def erase(self, way, block):
        """Erase one block; event value is None."""
        return self.engine.process(
            self._erase_proc(way, block),
            name=f"erase ch{self.channel_id} w{way}",
        )

    # -- protocol -----------------------------------------------------------

    def _program_proc(self, way, block, page, payload, nbytes):
        die = self.dies[way]
        tracer = self._tracer
        token = None
        if self._tracing:
            # The flow id follows the destaged page's stream offset when
            # the payload carries one (DestagePage does); conventional
            # payloads trace without a flow arrow.
            token = tracer.begin(
                self.name, "program", way=way, block=block, page=page,
                flow=getattr(payload, "stream_offset", None), nbytes=nbytes,
            )
        yield die.busy.request()
        try:
            # Data phase first (bus), then the cell program (die-internal).
            yield self.bus.transfer(nbytes)
            die.program_page(block, page, payload, nbytes)
            # Cell time via the shared-instant event: programs on other
            # dies finishing at the same tick ride the same wheel entry
            # and complete in one callback sweep.
            engine = self.engine
            yield engine.at(engine.now + self.timing.t_program)
        finally:
            die.busy.release()
            if token is not None:
                tracer.end(token)
        return (block, page)

    def _read_proc(self, way, block, page):
        die = self.dies[way]
        tracer = self._tracer
        token = None
        if self._tracing:
            token = tracer.begin(self.name, "read", way=way, block=block,
                                 page=page)
        yield die.busy.request()
        try:
            # Cell read first, then the data phase moves bytes out.
            engine = self.engine
            yield engine.at(engine.now + self.timing.t_read)
            if self.fault_model is not None:
                self.fault_model.check_read(self.channel_id, way, block, page)
            result = die.read_page(block, page)
            yield self.bus.transfer(result.nbytes or self.geometry.page_bytes)
        finally:
            die.busy.release()
            if token is not None:
                tracer.end(token)
        return result

    def _erase_proc(self, way, block):
        die = self.dies[way]
        tracer = self._tracer
        token = None
        if self._tracing:
            token = tracer.begin(self.name, "erase", way=way, block=block)
        yield die.busy.request()
        try:
            die.erase_block(block)
            engine = self.engine
            yield engine.at(engine.now + self.timing.t_erase)
        finally:
            die.busy.release()
            if token is not None:
                tracer.end(token)
        return None

    # -- introspection -------------------------------------------------------

    def idle_ways(self):
        """Ways with no operation running or queued (scheduling gaps)."""
        return [way for way, die in enumerate(self.dies) if die.is_idle]
