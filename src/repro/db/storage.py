"""In-memory tables: the database's working state.

A table is a hash-indexed key/value store with last-committed visibility
and per-transaction staging.  The concurrency model is deliberately simple
(the storage stack, not the concurrency control, is this reproduction's
subject): transactions stage writes privately and install them atomically
at commit; write-write conflicts abort the later committer (first-committer
-wins OCC).
"""


class Table:
    """One relation: committed rows plus version stamps."""

    def __init__(self, name):
        self.name = name
        self._rows = {}  # key -> value
        self._versions = {}  # key -> commit LSN of the installed value
        self.commits_applied = 0

    def get(self, key):
        """Last committed value for ``key``, or None."""
        return self._rows.get(key)

    def version_of(self, key):
        """Commit LSN of the installed value (0 if never written)."""
        return self._versions.get(key, 0)

    def install(self, key, value, commit_lsn):
        """Install a committed value (engine/recovery/replication use only)."""
        if value is None:
            self._rows.pop(key, None)
            self._versions[key] = commit_lsn
        else:
            self._rows[key] = value
            self._versions[key] = commit_lsn
        self.commits_applied += 1

    def scan(self):
        """Iterate committed (key, value) pairs (stable snapshot copy)."""
        return list(self._rows.items())

    def __len__(self):
        return len(self._rows)

    def checksum(self):
        """Order-independent digest of the committed state.

        Used by tests to compare a recovered or replicated database with
        the original without materializing sorted dumps.
        """
        total = 0
        for key, value in self._rows.items():
            total ^= hash((self.name, key, repr(value)))
        return total
