"""Write-ahead log records and their on-wire sizing.

A record's byte size is what the storage stack sees; the structured fields
are what recovery and replication apply.  Sizing: a fixed header plus the
key and value footprints — small for OLTP updates, matching the
observation the paper cites that OLTP log records are well under 20 KB.
"""

import enum
from dataclasses import dataclass

# Header: LSN + txn id + kind + table id + lengths.
RECORD_HEADER_BYTES = 32


class RecordKind(enum.Enum):
    INSERT = "insert"
    UPDATE = "update"
    DELETE = "delete"
    COMMIT = "commit"
    ABORT = "abort"


def _footprint(value):
    """Approximate serialized size of a key or value."""
    if value is None:
        return 0
    if isinstance(value, bytes):
        return len(value)
    if isinstance(value, str):
        return len(value.encode("utf-8", errors="replace"))
    if isinstance(value, int):
        return 8
    if isinstance(value, float):
        return 8
    if isinstance(value, (tuple, list)):
        return sum(_footprint(item) for item in value)
    if isinstance(value, dict):
        return sum(
            _footprint(k) + _footprint(v) for k, v in value.items()
        )
    return 16  # opaque object: pointer-ish placeholder


def record_bytes(record):
    """Serialized size of ``record`` in bytes."""
    return (
        RECORD_HEADER_BYTES
        + _footprint(record.key)
        + _footprint(record.value)
    )


@dataclass(frozen=True)
class LogRecord:
    """One WAL entry."""

    lsn: int
    txn_id: int
    kind: RecordKind
    table: str = ""
    key: object = None
    value: object = None

    @property
    def nbytes(self):
        return record_bytes(self)

    def is_data(self):
        return self.kind in (RecordKind.INSERT, RecordKind.UPDATE,
                             RecordKind.DELETE)
