"""The database substrate: an in-memory engine with WAL and replication.

The paper's experiments drive the storage stack with ERMIA, an open-source
memory-optimized database generating TPC-C write-ahead logs at hundreds of
ktxn/s.  This package provides the equivalent workload source, faithful in
the aspects the evaluation depends on:

* all data lives in memory; the transaction log is the only persistence
  traffic (main-memory DB discipline);
* **group commit**: transactions wait until a threshold of log bytes
  (16 KB in the paper's setup) accumulates before the flush, so commit
  latency falls as worker count rises;
* per-worker log writers with queue depth 1 (each worker has at most one
  outstanding flush);
* the log writer is pluggable: any object with ``x_pwrite``/``x_fsync``
  (the Villars drop-in API, or any baseline from
  :mod:`repro.host.baselines`) can absorb the stream;
* recovery replays the destaged log back into tables, and a secondary
  server applies shipped log pages to stay hot (Fig. 1's step (3)).
"""

from repro.db.engine import Database, DatabaseStats
from repro.db.log_record import LogRecord, RecordKind, record_bytes
from repro.db.recovery import recover_from_pages, extract_records
from repro.db.storage import Table
from repro.db.txn import Transaction, TransactionAborted
from repro.db.wal import LogManager

__all__ = [
    "Database",
    "DatabaseStats",
    "Table",
    "Transaction",
    "TransactionAborted",
    "LogManager",
    "LogRecord",
    "RecordKind",
    "record_bytes",
    "recover_from_pages",
    "extract_records",
]
