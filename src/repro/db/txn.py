"""Transactions: private write staging, OCC validation, commit pipeline.

A transaction reads committed state, stages writes privately, and at
commit time (a) validates that nothing it read changed underneath it,
(b) emits its log records, (c) waits for the log manager to declare them
durable (group commit), and (d) installs its writes.  Durability-before-
visibility keeps recovery simple: a value is in a table only if its
commit record is on (replicated, if configured) persistent storage.
"""

from repro.db.log_record import LogRecord, RecordKind


class TransactionAborted(Exception):
    """Raised at commit when validation fails (write-write conflict)."""


class Transaction:
    """One unit of work against a :class:`~repro.db.engine.Database`."""

    def __init__(self, database, txn_id):
        self.database = database
        self.txn_id = txn_id
        self.started_at = database.engine.now
        self._writes = {}  # (table, key) -> value
        self._read_versions = {}  # (table, key) -> version LSN at read time
        self.state = "active"

    # -- data operations -----------------------------------------------------------

    def read(self, table_name, key):
        """Committed-or-own-write read."""
        self._check_active()
        if (table_name, key) in self._writes:
            return self._writes[(table_name, key)]
        table = self.database.table(table_name)
        self._read_versions[(table_name, key)] = table.version_of(key)
        return table.get(key)

    def write(self, table_name, key, value):
        """Stage an insert/update (``None`` deletes)."""
        self._check_active()
        self.database.table(table_name)  # validate the table exists
        self._writes[(table_name, key)] = value

    def _check_active(self):
        if self.state != "active":
            raise TransactionAborted(
                f"transaction {self.txn_id} is {self.state}"
            )

    # -- commit ----------------------------------------------------------------------

    def commit(self):
        """Validate, log, await durability, install.

        Returns an event whose value is the commit LSN; a validation
        failure raises :class:`TransactionAborted` at the yield point.
        """
        return self.database.engine.process(
            self._commit_proc(), name=f"commit-{self.txn_id}"
        )

    def _commit_proc(self):
        self._check_active()
        self._validate()
        if not self._writes:
            self.state = "committed"
            self.database.stats.commits += 1
            self.database.stats.record_latency(
                self.database.engine.now - self.started_at
            )
            self.database.stats.mark_commit_time(self.database.engine.now)
            yield self.database.engine.timeout(0.0)
            return 0
        self._acquire_commit_locks()
        try:
            records = self._build_records()
            commit_lsn = records[-1].lsn
            yield self.database.log_manager.append_and_wait(records)
            for (table_name, key), value in self._writes.items():
                self.database.table(table_name).install(
                    key, value, commit_lsn
                )
        finally:
            self._release_commit_locks()
        self.state = "committed"
        self.database.stats.commits += 1
        self.database.stats.record_latency(
            self.database.engine.now - self.started_at
        )
        self.database.stats.mark_commit_time(self.database.engine.now)
        return commit_lsn

    def _acquire_commit_locks(self):
        """First-committer-wins: a concurrent committer touching our write
        set is already past validation, so we must abort, not wait."""
        locks = self.database.commit_locks
        conflict = [key for key in self._writes if key in locks]
        if conflict:
            self.state = "aborted"
            self.database.stats.aborts += 1
            raise TransactionAborted(
                f"txn {self.txn_id}: write set conflicts with an "
                f"in-flight commit on {conflict[0]}"
            )
        locks.update(self._writes)

    def _release_commit_locks(self):
        self.database.commit_locks.difference_update(self._writes)

    def _validate(self):
        for (table_name, key), seen_version in self._read_versions.items():
            current = self.database.table(table_name).version_of(key)
            if current != seen_version:
                self.state = "aborted"
                self.database.stats.aborts += 1
                raise TransactionAborted(
                    f"txn {self.txn_id}: {table_name}[{key!r}] changed "
                    f"(read v{seen_version}, now v{current})"
                )

    def _build_records(self):
        records = []
        for (table_name, key), value in self._writes.items():
            kind = RecordKind.UPDATE if value is not None else RecordKind.DELETE
            records.append(
                LogRecord(
                    lsn=self.database.next_lsn(),
                    txn_id=self.txn_id,
                    kind=kind,
                    table=table_name,
                    key=key,
                    value=value,
                )
            )
        records.append(
            LogRecord(
                lsn=self.database.next_lsn(),
                txn_id=self.txn_id,
                kind=RecordKind.COMMIT,
            )
        )
        return records

    def commit_async(self):
        """Pipelined commit: validate, log, install *now*, ack later.

        This is the early-lock-release discipline memory-optimized engines
        use so a worker can start its next transaction while the group
        commit is still in flight: writes become visible immediately; the
        returned event fires when the log manager declares the records
        durable.  On a crash, an installed-but-not-yet-durable transaction
        simply vanishes at recovery (its COMMIT record never hit storage),
        which is exactly the contract recovery tests assert.

        Returns the durability event (value: commit LSN).  Raises
        :class:`TransactionAborted` synchronously on validation failure.
        """
        self._check_active()
        self._validate()
        if not self._writes:
            self.state = "committed"
            self.database.stats.commits += 1
            self.database.stats.record_latency(0.0)
            self.database.stats.mark_commit_time(self.database.engine.now)
            return self.database.engine.timeout(0.0, value=0)
        self._acquire_commit_locks()
        try:
            records = self._build_records()
            commit_lsn = records[-1].lsn
            durable = self.database.log_manager.append_and_wait(records)
            for (table_name, key), value in self._writes.items():
                self.database.table(table_name).install(
                    key, value, commit_lsn
                )
        finally:
            self._release_commit_locks()
        self.state = "committed"
        started = self.started_at
        database = self.database

        def _on_durable(_event):
            database.stats.commits += 1
            database.stats.record_latency(database.engine.now - started)
            database.stats.mark_commit_time(database.engine.now)

        durable.then(_on_durable)
        return durable

    def abort(self):
        self.state = "aborted"
        self.database.stats.aborts += 1
