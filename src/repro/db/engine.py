"""The database engine: tables, transactions, workers, statistics.

The engine owns the tables and the log manager and runs *workers* —
processes that repeatedly draw a transaction from a workload generator,
execute it, and commit.  Each worker has at most one transaction in
flight (the queue-depth-1 logging behavior the paper's experiments note),
and workers map one-to-one to the paper's "threads" axis in Fig. 9.
"""

from repro.db.storage import Table
from repro.db.txn import Transaction, TransactionAborted
from repro.db.wal import LogManager
from repro.sim.stats import LatencyRecorder
from repro.sim.units import KIB


class DatabaseStats:
    """Commit/abort counters and transaction latency samples."""

    def __init__(self):
        self.commits = 0
        self.aborts = 0
        self.latency = LatencyRecorder()
        self.first_commit_at = None
        self.last_commit_at = 0.0

    def record_latency(self, latency_ns):
        self.latency.record(latency_ns)

    def mark_commit_time(self, now_ns):
        if self.first_commit_at is None:
            self.first_commit_at = now_ns
        self.last_commit_at = now_ns

    def throughput_per_s(self, elapsed_ns):
        if elapsed_ns <= 0:
            return 0.0
        return self.commits * 1e9 / elapsed_ns

    @property
    def mean_latency_ns(self):
        return self.latency.mean


class Database:
    """An in-memory database persisting only its WAL."""

    def __init__(self, engine, log_file, group_commit_bytes=16 * KIB,
                 group_commit_timeout_ns=100_000.0, name="db",
                 max_inflight_flushes=1):
        self.engine = engine
        self.name = name
        self.log_manager = LogManager(
            engine, log_file,
            group_commit_bytes=group_commit_bytes,
            group_commit_timeout_ns=group_commit_timeout_ns,
            max_inflight_flushes=max_inflight_flushes,
        )
        self._tables = {}
        self._next_txn_id = 1
        self._next_lsn = 1
        # Commit-time write locks: (table, key) pairs owned by transactions
        # between validation and install.  First committer wins.
        self.commit_locks = set()
        self.stats = DatabaseStats()

    # -- schema -----------------------------------------------------------------------

    def create_table(self, name):
        if name in self._tables:
            raise ValueError(f"table {name!r} already exists")
        table = Table(name)
        self._tables[name] = table
        return table

    def table(self, name):
        try:
            return self._tables[name]
        except KeyError:
            raise KeyError(f"no such table: {name!r}") from None

    def tables(self):
        return dict(self._tables)

    # -- transactions --------------------------------------------------------------------

    def begin(self):
        txn = Transaction(self, self._next_txn_id)
        self._next_txn_id += 1
        return txn

    def next_lsn(self):
        lsn = self._next_lsn
        self._next_lsn += 1
        return lsn

    # -- workers ----------------------------------------------------------------------------

    def run_worker(self, workload, transactions=None, duration_ns=None,
                   retry_aborted=True, txn_cpu_ns=0.0, async_commit=False):
        """Start one worker process; returns its completion event.

        ``workload`` is an iterator of transaction bodies — callables
        ``body(txn)`` that perform reads/writes on the open transaction.
        The worker stops after ``transactions`` commits or when the
        engine clock passes ``duration_ns``, whichever comes first.

        ``txn_cpu_ns`` charges simulated CPU time per transaction (an
        in-memory engine spends a handful of microseconds of compute per
        TPC-C transaction; without this the simulation would execute
        transactions in zero time and every throughput curve would be
        storage-bound only).

        ``async_commit`` switches the worker to the pipelined discipline
        (see :meth:`Transaction.commit_async`): it issues the commit,
        throttles on the log manager's backlog, and moves on — the
        behavior that lets one worker keep a deep flush pipeline busy.
        """
        if transactions is None and duration_ns is None:
            raise ValueError("bound the worker by count or duration")
        return self.engine.process(
            self._worker(workload, transactions, duration_ns, retry_aborted,
                         txn_cpu_ns, async_commit),
            name=f"{self.name}-worker",
        )

    def _worker(self, workload, transactions, duration_ns, retry_aborted,
                txn_cpu_ns, async_commit):
        deadline = (
            self.engine.now + duration_ns if duration_ns is not None else None
        )
        issued = 0
        last_durable = None
        for body in workload:
            if transactions is not None and issued >= transactions:
                break
            if deadline is not None and self.engine.now >= deadline:
                break
            while True:
                txn = self.begin()
                try:
                    body(txn)
                    if txn_cpu_ns:
                        yield self.engine.timeout(txn_cpu_ns)
                    if async_commit:
                        if not self.log_manager.has_room:
                            yield self.log_manager.wait_for_room()
                        last_durable = txn.commit_async()
                    else:
                        yield txn.commit()
                except TransactionAborted:
                    if retry_aborted:
                        continue
                issued += 1
                break
        if last_durable is not None and not last_durable.triggered:
            yield last_durable  # drain the pipeline before finishing
        return issued

    def checksum(self):
        """Digest of all committed table state (for replica comparison)."""
        total = 0
        for table in self._tables.values():
            total ^= table.checksum()
        return total
