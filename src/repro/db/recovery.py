"""Recovery: rebuilding committed state from the destaged log.

The destaged stream on the conventional side carries the WAL as chunk
payloads of the form ``(batch, cursor, step)`` — a byte slice of one
:class:`~repro.db.wal.LogBatch`.  Recovery walks the pages in stream
order, reassembles how many bytes of each batch made it to durable
storage, takes the record prefix those bytes fully cover, and redoes
every record belonging to a transaction whose COMMIT record survived.

This is redo-only (ARIES-lite) recovery, which suffices because the
engine installs values into tables only after durability: there is never
an un-undone dirty page to roll back.
"""

from repro.db.log_record import RecordKind


def extract_records(pages):
    """Reassemble the durable record stream from destaged pages.

    ``pages`` are :class:`~repro.core.destage.DestagePage` objects in
    stream order.  Returns the list of fully durable records, in LSN
    order.  A batch whose tail bytes miss the durable prefix contributes
    only the records its covered bytes span — the torn-tail rule.
    """
    covered_bytes = {}  # id(batch) -> (batch, bytes seen)
    order = []  # batches in first-seen order
    for page in pages:
        for _offset, nbytes, payload in page.chunks:
            if payload is None:
                continue
            batch, _cursor, step = payload
            key = id(batch)
            if key not in covered_bytes:
                covered_bytes[key] = [batch, 0]
                order.append(key)
            covered_bytes[key][1] += step
    records = []
    for key in order:
        batch, nbytes = covered_bytes[key]
        records.extend(batch.records_covered_by(nbytes))
    records.sort(key=lambda record: record.lsn)
    return records


def durable_commit_ids(pages):
    """Transaction ids whose COMMIT record is fully durable, in LSN order.

    The commit order on the log is the order transactions became durable,
    which is what differential checkers compare against a reference
    model's submission order.
    """
    commits = [
        record for record in extract_records(pages)
        if record.kind is RecordKind.COMMIT
    ]
    commits.sort(key=lambda record: record.lsn)
    return [record.txn_id for record in commits]


def recover_from_pages(database, pages):
    """Redo the durable log into ``database``'s tables.

    Only transactions with a durable COMMIT record are applied (atomicity:
    a torn tail cannot expose half a transaction).  Returns the number of
    transactions redone.
    """
    records = extract_records(pages)
    committed = {
        record.txn_id
        for record in records
        if record.kind is RecordKind.COMMIT
    }
    commit_lsn_of = {
        record.txn_id: record.lsn
        for record in records
        if record.kind is RecordKind.COMMIT
    }
    redone = set()
    for record in records:
        if not record.is_data() or record.txn_id not in committed:
            continue
        table = database.table(record.table)
        value = None if record.kind is RecordKind.DELETE else record.value
        table.install(record.key, value, commit_lsn_of[record.txn_id])
        redone.add(record.txn_id)
    return len(redone)


def apply_records(database, records):
    """Apply already-extracted records (the secondary's hot-apply path)."""
    committed = {
        record.txn_id
        for record in records
        if record.kind is RecordKind.COMMIT
    }
    commit_lsn_of = {
        record.txn_id: record.lsn
        for record in records
        if record.kind is RecordKind.COMMIT
    }
    applied = set()
    for record in records:
        if not record.is_data() or record.txn_id not in committed:
            continue
        value = None if record.kind is RecordKind.DELETE else record.value
        database.table(record.table).install(
            record.key, value, commit_lsn_of[record.txn_id]
        )
        applied.add(record.txn_id)
    return len(applied)
