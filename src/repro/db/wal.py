"""The log manager: group commit with pipelined flushes.

Committing transactions append their records here and wait.  A dispatcher
carves the pending records into *batches* — one group commit each — and
hands them to up to ``max_inflight_flushes`` concurrent flush workers.
That mirrors ERMIA's logging system, which pins one log writer per core:
with eight workers, eight 16 KB flushes can be in flight against the
device at once, and the device's write latency bounds throughput at
roughly ``inflight x batch / latency`` — the ~200 ktxn/s ceiling the
paper observes on the conventional NVMe side.

Durability follows the WAL prefix rule: a transaction is releasable only
when its batch *and every earlier batch* has reached storage, so
out-of-order flush completions never expose a durability hole.

Group-commit discipline (the paper's setup): a batch closes when
``group_commit_bytes`` (16 KB there) of records accumulate — or when
``group_commit_timeout_ns`` expires with committers waiting, so a lone
transaction is not stranded.  With more workers the byte threshold fills
faster, which is why transaction latency *drops* as workers are added
(Fig. 9's latency plot).

Back-pressure: ``pending_bytes`` beyond ``pending_cap_bytes`` means the
flush pipeline has fallen behind; committers should ``wait_for_room()``
before generating more work (the engine's async workers do).
"""

from repro.sim.resources import Resource
from repro.sim.units import KIB


class LogBatch:
    """Records flushed together; the unit the storage layer carries.

    The payload object handed to ``x_pwrite`` is the batch itself, so the
    destaged stream lets recovery recover record boundaries (byte-accurate
    prefixes of a batch yield the records fully covered).
    """

    __slots__ = ("records", "nbytes", "first_lsn", "last_lsn", "sequence")

    def __init__(self, records, sequence=0):
        self.records = records
        self.nbytes = sum(record.nbytes for record in records)
        self.first_lsn = records[0].lsn
        self.last_lsn = records[-1].lsn
        self.sequence = sequence

    def records_covered_by(self, nbytes):
        """The prefix of records whose bytes fit entirely in ``nbytes``."""
        covered = []
        total = 0
        for record in self.records:
            total += record.nbytes
            if total > nbytes:
                break
            covered.append(record)
        return covered


class LogManager:
    """Group-commit WAL writer over any x_pwrite/x_fsync log file."""

    def __init__(self, engine, log_file, group_commit_bytes=16 * KIB,
                 group_commit_timeout_ns=100_000.0, max_inflight_flushes=1,
                 pending_cap_bytes=None):
        if group_commit_bytes <= 0:
            raise ValueError("group commit threshold must be positive")
        if max_inflight_flushes < 1:
            raise ValueError("need at least one flush slot")
        self.engine = engine
        self.log_file = log_file
        # Pre-resolved tracing guard: one flush span per group commit,
        # zero attribute chains when tracing is off.
        self._tracer = engine.tracer
        self._tracing = engine.tracer.enabled
        self.group_commit_bytes = group_commit_bytes
        self.group_commit_timeout_ns = group_commit_timeout_ns
        self.max_inflight_flushes = max_inflight_flushes
        self.pending_cap_bytes = (
            pending_cap_bytes
            if pending_cap_bytes is not None
            else 4 * group_commit_bytes * max_inflight_flushes
        )
        self._pending = []  # records waiting to be batched
        self._pending_bytes = 0
        self._waiters = []  # (commit_lsn, event)
        self._room_waiters = []
        self.durable_lsn = 0
        self.flushes = 0
        self.bytes_flushed = 0
        self.batches = []  # every flushed batch, oldest first
        # Pipelined flush state.
        self._flush_slots = Resource(engine, capacity=max_inflight_flushes)
        self._next_batch_sequence = 0
        self._completed_sequences = set()
        self._durable_sequence = 0  # batches below this are durable
        self._batch_last_lsn = {}  # sequence -> last lsn of that batch
        self._dispatcher_running = False
        self._kick = engine.event()
        self._running = True

    # -- the commit-side interface ----------------------------------------------------

    @property
    def pending_bytes(self):
        return self._pending_bytes

    @property
    def has_room(self):
        return self._pending_bytes < self.pending_cap_bytes

    def wait_for_room(self):
        """Event firing once the pending backlog is under the cap."""
        event = self.engine.event()
        if self.has_room:
            event.succeed()
        else:
            self._room_waiters.append(event)
        return event

    def append_and_wait(self, records):
        """Queue ``records`` and return an event firing when durable."""
        if not records:
            raise ValueError("a commit needs at least one record")
        self._pending.extend(records)
        self._pending_bytes += sum(record.nbytes for record in records)
        done = self.engine.event()
        self._waiters.append((records[-1].lsn, done))
        if not self._dispatcher_running:
            self._dispatcher_running = True
            self.engine.process(self._dispatcher(), name="wal-dispatcher")
        else:
            # Ring the dispatcher on every append: it decides whether the
            # group is full or the timer should arm.
            self._wake()
        return done

    def _wake(self):
        if not self._kick.triggered:
            self._kick.succeed()

    def set_group_commit(self, group_commit_bytes=None,
                         group_commit_timeout_ns=None):
        """Retune the group-commit thresholds at runtime.

        The dispatcher re-reads both knobs on every carve and every timer
        arm, so new values take effect from the next batch boundary
        without touching records already pending, batches already in
        flight, or the durable prefix — this is the SLO controller's
        WAL actuator, and it is safe by construction: nothing here can
        skip or reorder acked durability work.  Returns
        ``((old_bytes, new_bytes), (old_timeout, new_timeout))``.
        """
        old_bytes = self.group_commit_bytes
        old_timeout = self.group_commit_timeout_ns
        if group_commit_bytes is not None:
            if group_commit_bytes <= 0:
                raise ValueError("group commit threshold must be positive")
            self.group_commit_bytes = int(group_commit_bytes)
        if group_commit_timeout_ns is not None:
            if group_commit_timeout_ns <= 0:
                raise ValueError("group commit timeout must be positive")
            self.group_commit_timeout_ns = float(group_commit_timeout_ns)
        # A waiting dispatcher may be holding out for the *old* byte
        # threshold; ring it so a lowered threshold applies promptly.
        self._wake()
        return ((old_bytes, self.group_commit_bytes),
                (old_timeout, self.group_commit_timeout_ns))

    # -- the dispatcher ------------------------------------------------------------------

    def _dispatcher(self):
        while self._running and (self._pending or self._waiters):
            if not self._pending:
                yield self._next_kick()
                continue
            if self._pending_bytes < self.group_commit_bytes:
                # Wait for the group to fill or the timer to expire; the
                # losing timer is cancelled so it leaves the heap lazily
                # instead of firing into a dead callback.
                expiry = self.engine.timeout(self.group_commit_timeout_ns)
                yield self.engine.any_of([self._next_kick(), expiry])
                expiry.cancel()
                if not self._pending:
                    continue
            batch_records, remainder = self._carve_group()
            batch = LogBatch(batch_records, self._next_batch_sequence)
            self._next_batch_sequence += 1
            self._batch_last_lsn[batch.sequence] = batch.last_lsn
            self._pending = remainder
            self._pending_bytes -= batch.nbytes
            self._release_room_waiters()
            # Block here while all flush slots are busy: this is the
            # back-pressure point that bounds throughput by the device.
            yield self._flush_slots.request()
            self.engine.process(self._flush(batch), name="wal-flush")
        self._dispatcher_running = False

    def _next_kick(self):
        if self._kick.triggered:
            self._kick = self.engine.event()
        return self._kick

    def _carve_group(self):
        """Split pending records into one group-sized batch and the rest.

        A batch takes whole records up to ``group_commit_bytes`` (always
        at least one, so oversized records still flush); the remainder
        feeds the next batch — which can dispatch to another flush slot
        immediately, giving the pipeline its depth.
        """
        taken = []
        taken_bytes = 0
        index = 0
        for record in self._pending:
            if taken and taken_bytes + record.nbytes > self.group_commit_bytes:
                break
            taken.append(record)
            taken_bytes += record.nbytes
            index += 1
            if taken_bytes >= self.group_commit_bytes:
                break
        return taken, self._pending[index:]

    def _flush(self, batch):
        tracer = self._tracer
        token = None
        if self._tracing:
            token = tracer.begin("wal", "flush", sequence=batch.sequence,
                                 nbytes=batch.nbytes,
                                 records=len(batch.records))
        try:
            yield self.log_file.x_pwrite(batch, batch.nbytes)
            yield self.log_file.x_fsync()
        finally:
            self._flush_slots.release()
            if token is not None:
                tracer.end(token)
        self.flushes += 1
        self.bytes_flushed += batch.nbytes
        self.batches.append(batch)
        self._completed_sequences.add(batch.sequence)
        self._advance_durable()

    def _advance_durable(self):
        """Prefix rule: durability only advances over contiguous batches."""
        moved = False
        while self._durable_sequence in self._completed_sequences:
            self._completed_sequences.discard(self._durable_sequence)
            self.durable_lsn = max(
                self.durable_lsn,
                self._batch_last_lsn.pop(self._durable_sequence),
            )
            self._durable_sequence += 1
            moved = True
        if moved:
            self._release_waiters()

    def _release_waiters(self):
        still_waiting = []
        for commit_lsn, event in self._waiters:
            if commit_lsn <= self.durable_lsn:
                event.succeed(commit_lsn)
            else:
                still_waiting.append((commit_lsn, event))
        self._waiters = still_waiting

    def _release_room_waiters(self):
        if self.has_room and self._room_waiters:
            waiters, self._room_waiters = self._room_waiters, []
            for event in waiters:
                event.succeed()

    def stop(self):
        self._running = False
        self._wake()
