"""Ablation A1 — all three scheduling modes under symmetric overload.

The paper reports that destage priority behaves symmetrically to
conventional priority ("we obtained a similar result ... and omit the
results for brevity").  This ablation runs all three modes with both
streams offered at 60% (120% total) and verifies the symmetry claim.
"""

from repro.bench import format_table
from repro.bench.fig12_destage_priority import run_one

COLUMNS = (
    ("mode", "mode", ""),
    ("conv_achieved_pct", "conv achieved [%]", ".1f"),
    ("fast_achieved_pct", "fast achieved [%]", ".1f"),
)


def test_destage_mode_symmetry(run_once):
    def sweep():
        return [
            run_one(mode, fast_fraction=0.6, conventional_fraction=0.6,
                    duration_ns=30e6)
            for mode in ("neutral", "conventional-priority",
                         "destage-priority")
        ]

    rows = run_once(sweep)
    print()
    print(format_table(rows, COLUMNS,
                       title="A1 — scheduling modes, 60% + 60% offered"))
    by_mode = {row["mode"]: row for row in rows}

    neutral = by_mode["neutral"]
    conv_prio = by_mode["conventional-priority"]
    dest_prio = by_mode["destage-priority"]

    # Symmetric inputs + neutral policy -> symmetric outcomes.
    assert abs(neutral["conv_achieved_pct"]
               - neutral["fast_achieved_pct"]) < 8
    # Each priority mode protects its preferred stream...
    assert conv_prio["conv_achieved_pct"] > neutral["conv_achieved_pct"]
    assert dest_prio["fast_achieved_pct"] > neutral["fast_achieved_pct"]
    # ...and the two modes are mirror images of each other.
    assert abs(conv_prio["conv_achieved_pct"]
               - dest_prio["fast_achieved_pct"]) < 8
    assert abs(conv_prio["fast_achieved_pct"]
               - dest_prio["conv_achieved_pct"]) < 8
