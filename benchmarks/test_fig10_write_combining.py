"""Bench E2 — Fig. 10: write-combining vs uncached by write size.

Regenerates both panels: normalized fast-side throughput versus write
size under WC and UC mappings, for SRAM-backed (left) and DRAM-backed
(right) CMBs.
"""

from repro.bench import format_series, format_table
from repro.bench.fig10_write_combining import run_fig10

COLUMNS = (
    ("backing", "backing", ""),
    ("policy", "policy", ""),
    ("write_bytes", "write [B]", "d"),
    ("throughput_bytes_per_ns", "throughput [GB/s]", ".3f"),
    ("normalized", "normalized", ".3f"),
)


def cell(rows, backing, policy, size):
    for row in rows:
        if (row["backing"], row["policy"], row["write_bytes"]) == (
            backing, policy, size,
        ):
            return row
    raise KeyError((backing, policy, size))


def test_fig10(run_once):
    rows = run_once(run_fig10)
    print()
    print(format_table(rows, COLUMNS, title="Fig. 10 — write combining"))
    for backing in ("sram", "dram"):
        subset = [r for r in rows if r["backing"] == backing]
        print(f"\n{backing} normalized series:")
        print(format_series(subset, "write_bytes", "normalized", "policy",
                            y_spec=".2f"))

    sizes = sorted({row["write_bytes"] for row in rows})
    for backing in ("sram", "dram"):
        # WC >= UC at every size the paper tested.
        for size in sizes:
            wc = cell(rows, backing, "WC", size)["normalized"]
            uc = cell(rows, backing, "UC", size)["normalized"]
            assert wc >= uc * 0.99, (backing, size)
        # Throughput grows with write size up to the WC buffer.
        wc_curve = [cell(rows, backing, "WC", s)["normalized"] for s in sizes]
        for earlier, later in zip(wc_curve, wc_curve[1:]):
            assert later >= earlier * 0.9

    # SRAM: the maximum is only reached at 64-byte writes.
    assert cell(rows, "sram", "WC", 64)["normalized"] > 0.95
    assert cell(rows, "sram", "WC", 16)["normalized"] < 0.8
    # DRAM: the port, not the link, limits — max reached from 16 bytes.
    assert cell(rows, "dram", "WC", 16)["normalized"] > 0.9
