"""Bench E3 — Fig. 11: group-commit size x CMB queue size on SRAM.

Regenerates both panels: per-write latency (top) and throughput (bottom)
for group-commit sizes on the x-axis with queue sizes as series.
"""

from repro.bench import format_series, format_table
from repro.bench.fig11_queue_size import run_fig11
from repro.sim.units import KIB

COLUMNS = (
    ("queue_kib", "queue [KiB]", "d"),
    ("group_kib", "group [KiB]", "d"),
    ("mean_latency_us", "latency [us]", ".1f"),
    ("throughput_mb_per_s", "throughput [MB/s]", ".0f"),
    ("credit_checks", "credit checks", "d"),
)


def cell(rows, queue_kib, group_kib):
    for row in rows:
        if (row["queue_kib"], row["group_kib"]) == (queue_kib, group_kib):
            return row
    raise KeyError((queue_kib, group_kib))


def test_fig11(run_once):
    rows = run_once(run_fig11)
    print()
    print(format_table(rows, COLUMNS,
                       title="Fig. 11 — group commit x queue size (SRAM)"))
    print("\nlatency series [us] (series = queue KiB):")
    print(format_series(rows, "group_kib", "mean_latency_us", "queue_kib"))
    print("throughput series [MB/s] (series = queue KiB):")
    print(format_series(rows, "group_kib", "throughput_mb_per_s",
                        "queue_kib", y_spec=".0f"))

    queue_sizes = sorted({row["queue_kib"] for row in rows})
    group_sizes = sorted({row["group_kib"] for row in rows})

    # Latency is dominated by the write size once the queue holds it:
    # along any queue series, latency grows with the group size.
    for queue_kib in queue_sizes:
        curve = [cell(rows, queue_kib, g)["mean_latency_us"]
                 for g in group_sizes]
        for earlier, later in zip(curve, curve[1:]):
            assert later >= earlier * 0.95, (queue_kib, curve)

    # A queue >= the write needs no mid-write credit checks; smaller
    # queues pay checks proportional to the deficit.
    assert (cell(rows, 4, 64)["credit_checks"]
            > cell(rows, 32, 64)["credit_checks"])

    # The 32 KiB queue achieves (near-)best throughput across group sizes
    # (the paper's headline for this experiment).
    for group_kib in group_sizes:
        best = max(cell(rows, q, group_kib)["throughput_mb_per_s"]
                   for q in queue_sizes)
        q32 = cell(rows, 32, group_kib)["throughput_mb_per_s"]
        assert q32 >= 0.9 * best, (group_kib, q32, best)
