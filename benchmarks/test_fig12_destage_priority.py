"""Bench E4 — Fig. 12: opportunistic destaging under contention.

Regenerates both panels: a conventional workload at ~50% of device
bandwidth plus a fast workload swept 30-60%, under neutral (left) and
conventional-priority (right) scheduling.
"""

from repro.bench import format_table
from repro.bench.fig12_destage_priority import run_fig12

COLUMNS = (
    ("mode", "mode", ""),
    ("fast_offered_pct", "fast offered [%]", ".0f"),
    ("conv_achieved_pct", "conv achieved [%]", ".1f"),
    ("fast_achieved_pct", "fast achieved [%]", ".1f"),
)


def cell(rows, mode, fast_pct):
    for row in rows:
        if row["mode"] == mode and row["fast_offered_pct"] == fast_pct:
            return row
    raise KeyError((mode, fast_pct))


def test_fig12(run_once):
    rows = run_once(run_fig12)
    print()
    print(format_table(rows, COLUMNS, title="Fig. 12 — opportunistic destaging"))

    # Below saturation (50 + 30 = 80% < 100%) both modes serve both
    # workloads at their offered rates.
    for mode in ("neutral", "conventional-priority"):
        low = cell(rows, mode, 30)
        assert low["conv_achieved_pct"] > 42
        assert low["fast_achieved_pct"] > 25

    # Past saturation (50 + 60 = 110%):
    saturated_neutral = cell(rows, "neutral", 60)
    saturated_priority = cell(rows, "conventional-priority", 60)
    # Neutral: both workloads suffer — the conventional stream loses
    # bandwidth it was promised.
    assert saturated_neutral["conv_achieved_pct"] < 47
    # Conventional priority: the conventional stream is preserved
    # (within a few points of its 50% target) independently of the fast
    # workload; the fast stream absorbs the whole shortfall.
    assert saturated_priority["conv_achieved_pct"] > 47
    assert (saturated_priority["fast_achieved_pct"]
            < saturated_priority["conv_achieved_pct"] + 7)
    # And priority mode protects conventional better than neutral does.
    assert (saturated_priority["conv_achieved_pct"]
            > saturated_neutral["conv_achieved_pct"])
