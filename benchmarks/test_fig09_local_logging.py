"""Bench E1 — Fig. 9: latency and throughput of local logging setups.

Regenerates both panels of the paper's Fig. 9: average transaction
latency (log scale) and committed-transactions-per-second versus worker
count, for No-Log / Memory / NVMe / Villars-SRAM / Villars-DRAM.
"""

from repro.bench import format_series, format_table
from repro.bench.fig09_local_logging import run_fig09

COLUMNS = (
    ("setup", "setup", ""),
    ("workers", "workers", "d"),
    ("mean_latency_us", "latency [us]", ".1f"),
    ("throughput_ktps", "throughput [ktxn/s]", ".1f"),
)


def by(rows, setup, workers):
    for row in rows:
        if row["setup"] == setup and row["workers"] == workers:
            return row
    raise KeyError((setup, workers))


def test_fig09(run_once):
    rows = run_once(run_fig09)
    print()
    print(format_table(rows, COLUMNS, title="Fig. 9 — logging to local storage"))
    print()
    print("latency series [us]:")
    print(format_series(rows, "workers", "mean_latency_us", "setup"))
    print("throughput series [ktxn/s]:")
    print(format_series(rows, "workers", "throughput_ktps", "setup"))

    # --- the paper's shape ------------------------------------------------
    for workers in (1, 2, 4, 8):
        memory = by(rows, "memory", workers)
        sram = by(rows, "villars-sram", workers)
        dram = by(rows, "villars-dram", workers)
        nvme = by(rows, "nvme", workers)
        # Latency: memory and Villars-SRAM are comparable; NVMe is an
        # order of magnitude worse (Fig. 9 left, log scale).
        assert sram["mean_latency_us"] < 3 * memory["mean_latency_us"]
        assert nvme["mean_latency_us"] > 5 * sram["mean_latency_us"]
        # DRAM sits between SRAM and NVMe.
        assert sram["mean_latency_us"] <= dram["mean_latency_us"] * 1.05
        assert dram["mean_latency_us"] < nvme["mean_latency_us"]

    # Throughput: at 8 workers the conventional side saturates around
    # 200 ktxn/s while the fast side keeps scaling with the no-log curve.
    nvme8 = by(rows, "nvme", 8)
    sram8 = by(rows, "villars-sram", 8)
    nolog8 = by(rows, "no-log", 8)
    assert 80 < nvme8["throughput_ktps"] < 260
    assert sram8["throughput_ktps"] > 2 * nvme8["throughput_ktps"]
    assert sram8["throughput_ktps"] > 0.8 * nolog8["throughput_ktps"]
    # Latency drops (or at least does not grow) with more workers for the
    # fast setups: the 16 KB group fills faster.
    mem1 = by(rows, "memory", 1)["mean_latency_us"]
    mem8 = by(rows, "memory", 8)["mean_latency_us"]
    assert mem8 <= mem1 * 1.5
