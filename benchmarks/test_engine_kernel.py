"""Kernel microbenchmark: events/sec of the scheduling core, vs the seed.

Unlike the figure benchmarks this measures the *simulator itself*: how many
events per wall-clock second the kernel dispatches on same-instant-heavy
and timeout-heavy workloads.  The frozen seed-kernel replica inside
:mod:`repro.bench.kernel` provides the baseline ratio, so the speedup from
the two-tier queue is re-measured on every run instead of trusting a
recorded number.
"""

from repro.bench.kernel import run_kernel_bench

# Smaller than the CLI defaults: CI boxes are noisy and the ratio is what
# matters here, not the absolute rate.
BENCH_EVENTS = 100_000


def test_kernel_same_instant_speedup(run_once):
    """The headline claim: >= 2x events/sec on the same-instant workload."""
    rows = run_once(run_kernel_bench, events=BENCH_EVENTS,
                    workloads=("same-instant",))
    (row,) = rows
    assert row["events_per_sec"] > 0
    assert row["speedup_vs_seed"] >= 2.0, (
        f"two-tier kernel only {row['speedup_vs_seed']:.2f}x the seed "
        f"({row['events_per_sec_m']:.2f} vs {row['seed_events_per_sec_m']:.2f}"
        " Mev/s)"
    )


def test_kernel_event_churn_faster_than_seed(run_once):
    """Allocation-inclusive same-instant mix must still beat the seed."""
    rows = run_once(run_kernel_bench, events=BENCH_EVENTS,
                    workloads=("event-churn",))
    (row,) = rows
    assert row["speedup_vs_seed"] >= 1.2


def test_kernel_timeout_heavy_beats_seed(run_once):
    """Timer-bound workload: the timing wheel must beat the global heap.

    The wheel's measured plateau on this workload is ~1.5x (timer
    construction dominates and is identical on both kernels); assert a
    floor with headroom for shared-box noise rather than the plateau
    itself.
    """
    rows = run_once(run_kernel_bench, events=BENCH_EVENTS,
                    workloads=("timeout-heavy",))
    (row,) = rows
    assert row["speedup_vs_seed"] >= 1.2


def test_kernel_timeout_cancel_heavy_beats_seed(run_once):
    """The schedule-then-cancel idiom: wheel reclaim vs seed heap garbage."""
    rows = run_once(run_kernel_bench, events=BENCH_EVENTS,
                    workloads=("timeout-cancel-heavy",))
    (row,) = rows
    assert row["speedup_vs_seed"] >= 1.3


def test_kernel_fleet_scale_speedup(run_once):
    """Aligned heartbeat cohorts: shared-instant batching must dominate."""
    rows = run_once(run_kernel_bench, events=BENCH_EVENTS,
                    workloads=("fleet-scale",))
    (row,) = rows
    assert row["speedup_vs_seed"] >= 2.0


def test_kernel_full_sweep_reports_all_workloads(run_once):
    rows = run_once(run_kernel_bench, events=20_000, repeat=1)
    assert [row["workload"] for row in rows] == [
        "same-instant", "event-churn", "timeout-heavy",
        "timeout-cancel-heavy", "fleet-scale",
    ]
    for row in rows:
        assert row["events"] >= 20_000
        assert row["events_per_sec"] > 0
        assert row["seed_events_per_sec"] > 0
