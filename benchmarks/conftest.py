"""Benchmark-suite configuration.

Each benchmark runs one paper experiment end to end inside the simulator;
wall-clock numbers from pytest-benchmark measure the *simulator*, while
the reproduced figure data lands in ``benchmark.extra_info`` and is
printed with ``-s``.  One round per benchmark: the simulations are
deterministic, so repetition adds nothing.
"""

import pytest


def pytest_collection_modifyitems(items):
    """Everything under ``benchmarks/`` is a full-figure run: mark it slow
    so ``pytest -m 'not slow'`` (and the tier-1 default ``testpaths``) stay
    fast."""
    for item in items:
        item.add_marker(pytest.mark.slow)


@pytest.fixture
def run_once(benchmark):
    """Run ``fn`` exactly once under pytest-benchmark; return its result."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return _run
