"""Disabled-tracer overhead: the subsystem must be free when off.

Every hot path guards its instrumentation with one attribute load and a
truthiness check (``tracer = self.engine.tracer; if tracer.enabled:``),
so with no capture active the kernel's measured speedup-vs-seed must stay
within noise of the ratios frozen in ``BENCH_kernel.json`` before the
tracer existed.  The ratio is self-normalising — current and seed kernels
run in the same process — so host noise mostly cancels; the 5% band is
the acceptance bound from the tracing-subsystem issue.
"""

import json
import pathlib

import pytest

from repro.bench.kernel import run_kernel_bench
from repro.obs import capture
from repro.sim import NULL_TRACER, Engine

BASELINE_PATH = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_kernel.json"

BENCH_EVENTS = 100_000

# Fraction of the frozen speedup ratio the live measurement must retain.
ALLOWED_OVERHEAD = 0.05


def frozen_ratios():
    payload = json.loads(BASELINE_PATH.read_text())
    return {row["workload"]: row["speedup_vs_seed"]
            for row in payload["rows"]}


def test_disabled_tracer_is_the_shared_null_singleton():
    """The overhead claim rests on this: outside a capture, every engine
    shares one never-enabled tracer, so guards cost one load + branch."""
    assert Engine().tracer is NULL_TRACER
    assert not NULL_TRACER.enabled


@pytest.mark.parametrize("workload", ["same-instant", "event-churn",
                                      "timeout-heavy"])
def test_kernel_speedup_within_five_percent_of_frozen(run_once, workload):
    baseline = frozen_ratios()[workload]
    rows = run_once(run_kernel_bench, events=BENCH_EVENTS,
                    workloads=(workload,))
    (row,) = rows
    retained = row["speedup_vs_seed"] / baseline
    assert retained >= 1.0 - ALLOWED_OVERHEAD, (
        f"{workload}: speedup_vs_seed {row['speedup_vs_seed']:.2f} is "
        f"{(1 - retained) * 100:.1f}% below the frozen "
        f"{baseline:.2f} — disabled-tracer overhead exceeds "
        f"{ALLOWED_OVERHEAD:.0%}"
    )


def test_enabled_tracer_cost_is_bounded(run_once):
    """Not an acceptance bound — a canary.  With a capture active the
    kernel bench must still complete and stay within 2x of the disabled
    rate (the kernel itself emits no events; only engine construction
    touches the tracer factory)."""
    disabled = run_kernel_bench(events=BENCH_EVENTS,
                                workloads=("same-instant",),
                                baseline=False)[0]["events_per_sec"]

    def enabled_run():
        with capture():
            return run_kernel_bench(events=BENCH_EVENTS,
                                    workloads=("same-instant",),
                                    baseline=False)[0]["events_per_sec"]

    enabled = run_once(enabled_run)
    assert enabled >= disabled / 2.0
