"""Ablation A4 — data movements: host-managed vs in-device destaging.

Section 5.1 ("Destaging Efficiency") counts the memory traffic each
design spends per logged byte: the Fig. 1 (left) host-managed pipeline
moves data four times (store to PM, NIC read for replication, PM read for
destage, SSD write), while a X-SSD device does the same job in two
(host store to CMB backing, storage controller read of that backing).

This ablation logs the same volume through both pipelines and reports
measured data movements per byte plus the end-to-end completion time.
"""

from repro.bench import format_table
from repro.bench.stacks import bench_ssd_config, build_villars
from repro.host.api import XssdLogFile
from repro.host.baselines import HostPmRdmaLogFile
from repro.pcie.rdma import RdmaNic
from repro.pm.nvdimm import Nvdimm
from repro.sim import Engine
from repro.sim.units import KIB
from repro.ssd.device import ConventionalSsd

COLUMNS = (
    ("pipeline", "pipeline", ""),
    ("movements_per_byte", "movements/byte", ".2f"),
    ("elapsed_ms", "elapsed [ms]", ".2f"),
)

TOTAL_BYTES = 512 * KIB
WRITE_BYTES = 4 * KIB


def run_host_managed():
    engine = Engine()
    ssd = ConventionalSsd(engine, bench_ssd_config()).start()
    nvdimm = Nvdimm(engine, capacity=1 << 32)
    qp = RdmaNic(engine, "a").connect(RdmaNic(engine, "b"))
    log = HostPmRdmaLogFile(engine, nvdimm, qp, ssd,
                            destage_block_bytes=ssd.block_bytes)

    finished = {}

    def writer():
        for index in range(TOTAL_BYTES // WRITE_BYTES):
            yield log.x_pwrite(f"w{index}", WRITE_BYTES)
        yield log.x_fsync()
        finished["t"] = engine.now

    done = engine.process(writer())
    engine.run(until=2e9)
    assert done.triggered
    # Count the byte-weighted movements: pwrite counts 2 per write (PM
    # store + NIC), destage counts 2 per block (PM read + SSD write).
    movements_bytes = (
        2 * log.written
        + 2 * (log._next_lba - 2_000_000) * ssd.block_bytes
    )
    return {
        "pipeline": "host-managed (Fig. 1 left)",
        "movements_per_byte": movements_bytes / log.written,
        "elapsed_ms": finished["t"] / 1e6,
    }


def run_xssd():
    engine = Engine()
    device = build_villars(engine, "sram", queue_bytes=32 * KIB)
    log = XssdLogFile(device)

    finished = {}

    def writer():
        for index in range(TOTAL_BYTES // WRITE_BYTES):
            yield log.x_pwrite(f"w{index}", WRITE_BYTES)
        yield log.x_fsync()
        finished["t"] = engine.now

    done = engine.process(writer())
    engine.run(until=2e9)
    assert done.triggered
    finished_at = finished["t"]
    # Movements: host store into backing (bytes_written) + storage
    # controller read of the backing (bytes_read by destage).
    backing = device.backing
    movements_bytes = backing.bytes_written + backing.bytes_read
    return {
        "pipeline": "x-ssd (Fig. 1 right)",
        "movements_per_byte": movements_bytes / log.written,
        "elapsed_ms": finished_at / 1e6,
    }


def test_data_movement_halved(run_once):
    def sweep():
        return [run_host_managed(), run_xssd()]

    rows = run_once(sweep)
    print()
    print(format_table(rows, COLUMNS, title="A4 — data movements per byte"))
    host = rows[0]
    xssd = rows[1]
    # The paper's claim: four movements against two.
    assert host["movements_per_byte"] > 3.5
    assert xssd["movements_per_byte"] < 2.5
    assert xssd["movements_per_byte"] < host["movements_per_byte"] / 1.8
