"""Ablation A2 — replication protocols built from counter combinations.

Section 4.2 shows how different protocols fall out of which counter (or
combination) the device exposes: eager waits for every secondary, lazy
returns at local speed, chain acknowledges at the tail's pace.  This
ablation measures the durable-fsync latency each protocol yields on the
same two-node cluster, and chain latency on a three-node chain.
"""

from repro.bench import format_table
from repro.bench.stacks import bench_ssd_config
from repro.cluster.topology import replicated_chain, replicated_pair
from repro.core.config import villars_sram
from repro.sim import Engine
from repro.sim.units import KIB

COLUMNS = (
    ("protocol", "protocol", ""),
    ("fsync_latency_us", "fsync latency [us]", ".2f"),
)


def config_factory():
    return villars_sram(ssd=bench_ssd_config(), cmb_queue_bytes=32 * KIB)


def measure_pair(policy):
    engine = Engine()
    cluster = replicated_pair(engine, config_factory, policy=policy)
    primary = cluster.primary
    samples = []

    def proc():
        for index in range(20):
            yield primary.log.x_pwrite(f"record-{index}", 512)
            start = engine.now
            yield primary.log.x_fsync()
            samples.append(engine.now - start)
            yield engine.timeout(20_000.0)

    done = engine.process(proc())
    engine.run(until=engine.now + 200e6)
    assert done.triggered, policy
    return sum(samples) / len(samples) / 1e3


def measure_chain(secondaries):
    engine = Engine()
    cluster = replicated_chain(engine, config_factory,
                               secondaries=secondaries)
    primary = cluster.primary
    samples = []

    def proc():
        for index in range(20):
            yield primary.log.x_pwrite(f"record-{index}", 512)
            start = engine.now
            yield primary.log.x_fsync()
            samples.append(engine.now - start)
            yield engine.timeout(20_000.0)

    done = engine.process(proc())
    engine.run(until=engine.now + 400e6)
    assert done.triggered
    return sum(samples) / len(samples) / 1e3


def test_replication_protocols(run_once):
    def sweep():
        return [
            {"protocol": "lazy", "fsync_latency_us": measure_pair("lazy")},
            {"protocol": "eager", "fsync_latency_us": measure_pair("eager")},
            {"protocol": "chain-2", "fsync_latency_us": measure_chain(2)},
        ]

    rows = run_once(sweep)
    print()
    print(format_table(rows, COLUMNS, title="A2 — replication protocols"))
    by_name = {row["protocol"]: row["fsync_latency_us"] for row in rows}

    # Lazy acknowledges at local persistence speed — the floor.
    assert by_name["lazy"] < by_name["eager"]
    # A two-secondary chain acknowledges at the tail: the stream crosses
    # two hops and the ack relays back, so it costs more than the
    # single-secondary eager pair.
    assert by_name["chain-2"] > by_name["eager"]
