"""Bench E5 — Fig. 13: shadow-counter freshness vs update frequency.

Regenerates both axes of the paper's Fig. 13: the latency candlesticks
(time for the primary to learn a write is safely replicated) and the
interconnect bandwidth the counter updates cost, across update periods.
"""

from repro.bench import format_table
from repro.bench.fig13_replication_delay import run_fig13

COLUMNS = (
    ("update_period_us", "period [us]", ".1f"),
    ("latency_low_us", "low [us]", ".2f"),
    ("latency_q1_us", "q1 [us]", ".2f"),
    ("latency_median_us", "median [us]", ".2f"),
    ("latency_q3_us", "q3 [us]", ".2f"),
    ("latency_high_us", "high [us]", ".2f"),
    ("latency_spread_us", "spread [us]", ".2f"),
    ("bandwidth_pct", "bandwidth [%]", ".2f"),
)


def test_fig13(run_once):
    rows = run_once(run_fig13)
    print()
    print(format_table(rows, COLUMNS, title="Fig. 13 — replication delay"))

    by_period = {row["update_period_us"]: row for row in rows}
    fastest = by_period[0.4]
    slowest = by_period[1.6]

    # Frequent updates give a tight latency band; infrequent updates
    # widen it (the wait-for-next-cycle component is uniform in
    # [0, period], so the spread grows with the period).
    assert fastest["latency_spread_us"] < slowest["latency_spread_us"]
    assert slowest["latency_spread_us"] >= 1.0  # ~the period difference
    # The latency floor barely moves: it is hops + persistence, not
    # the reporting period.
    assert abs(fastest["latency_low_us"] - slowest["latency_low_us"]) < 1.0
    # Bandwidth cost falls inversely with the period.
    assert fastest["bandwidth_pct"] > 3 * slowest["bandwidth_pct"]
    # And it is a small share of the link at the paper's frequencies
    # (2.35% in the paper at 0.4 us; same order here).
    assert 1.0 < fastest["bandwidth_pct"] < 8.0
    # Candlestick sanity: quartiles are ordered.
    for row in rows:
        assert (row["latency_low_us"] <= row["latency_q1_us"]
                <= row["latency_median_us"] <= row["latency_q3_us"]
                <= row["latency_high_us"])
