"""Ablation A3 — credit-based flow control: stall share vs offered load.

The advisory back-pressure protocol (Section 4.1) shows up to the host as
time spent re-reading the credit counter instead of copying bytes.  This
ablation offers increasing load through one writer and reports the
credit-check count and achieved throughput, demonstrating the graceful
degradation the protocol is designed for: beyond the device's drain rate
the writer spends its surplus time polling, and throughput plateaus at
the drain rate instead of collapsing.
"""

from repro.bench import format_table
from repro.bench.stacks import build_villars
from repro.host.api import XssdLogFile
from repro.sim import Engine
from repro.sim.units import KIB

COLUMNS = (
    ("offered_mb_s", "offered [MB/s]", ".0f"),
    ("achieved_mb_s", "achieved [MB/s]", ".0f"),
    ("checks_per_write", "credit checks/write", ".2f"),
)


def run_cell(offered_bytes_per_ns, writes=200, write_bytes=8 * KIB):
    engine = Engine()
    device = build_villars(engine, "dram", queue_bytes=32 * KIB)
    log = XssdLogFile(device)
    interval = write_bytes / offered_bytes_per_ns
    finished = {}

    def writer():
        for index in range(writes):
            started = engine.now
            yield log.x_pwrite(f"w{index}", write_bytes)
            spent = engine.now - started
            if spent < interval:
                yield engine.timeout(interval - spent)
        yield log.x_fsync()
        finished["t"] = engine.now

    done = engine.process(writer())
    engine.run(until=400e6)
    assert done.triggered
    elapsed = finished["t"]
    return {
        "offered_mb_s": offered_bytes_per_ns * 1e3,
        "achieved_mb_s": writes * write_bytes * 1e9 / elapsed / 1e6,
        "checks_per_write": log.credit_checks / writes,
    }


def test_backpressure_graceful_degradation(run_once):
    def sweep():
        return [run_cell(rate) for rate in (0.1, 0.3, 0.6, 1.2)]

    rows = run_once(sweep)
    print()
    print(format_table(rows, COLUMNS, title="A3 — back-pressure behavior"))

    # Below the drain rate: achieved tracks offered and checks are rare.
    assert rows[0]["achieved_mb_s"] > rows[0]["offered_mb_s"] * 0.85
    # Offered load above the DRAM drain rate cannot be achieved...
    assert rows[-1]["achieved_mb_s"] < rows[-1]["offered_mb_s"]
    # ...but throughput plateaus (no collapse): the top two offered rates
    # achieve about the same.
    assert (abs(rows[-1]["achieved_mb_s"] - rows[-2]["achieved_mb_s"])
            < 0.3 * rows[-1]["achieved_mb_s"])
    # The surplus shows up as credit polling.
    assert rows[-1]["checks_per_write"] > rows[0]["checks_per_write"]
