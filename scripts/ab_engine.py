"""Same-process A/B harness for engine micro-optimizations.

Loads the current ``repro.sim.engine`` source twice — once verbatim
(variant A) and once with a candidate patch applied (variant B) — then
alternates kernel workloads between them, taking best-of-N.  Alternating
in one process is the only trustworthy comparison on a machine with
large run-to-run frequency variance.

Usage: PYTHONPATH=src python scripts/ab_engine.py [rounds] [events]
with PATCHES edited inline below.
"""

import sys
import types


# Candidate (old, new) source replacements for variant B.  Edit inline
# when trying an optimization; empty means A/B the same source (a noise
# floor measurement).
PATCHES = []


def load_engine(name, code):
    mod = types.ModuleType(name)
    mod.__file__ = name
    exec(compile(code, name, "exec"), mod.__dict__)
    return mod


def run_ab(src_a, src_b, rounds=5, events=100000, workloads=None):
    from repro.bench import kernel

    runners = {
        "timeout-heavy": kernel.run_timeout_heavy,
        "same-instant": kernel.run_same_instant,
        "event-churn": kernel.run_event_churn,
    }
    if workloads:
        runners = {k: runners[k] for k in workloads}
    mod_a = load_engine("engine_variant_a", src_a)
    mod_b = load_engine("engine_variant_b", src_b)
    best = {}
    for _ in range(rounds):
        for tag, mod in (("A", mod_a), ("B", mod_b)):
            for wl, runner in runners.items():
                rate, _ = runner(mod.Engine, events)
                key = (wl, tag)
                best[key] = max(best.get(key, 0.0), rate)
    for wl in runners:
        a, b = best[(wl, "A")], best[(wl, "B")]
        print(
            f"{wl:>14}  A {a / 1e6:.3f}  B {b / 1e6:.3f}  "
            f"B/A {b / a:.3f}"
        )
    return best


if __name__ == "__main__":
    rounds = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    events = int(sys.argv[2]) if len(sys.argv) > 2 else 100000
    src = open("src/repro/sim/engine.py").read()
    patched = src
    for old, new in PATCHES:
        assert old in patched, f"patch anchor missing: {old[:60]!r}"
        patched = patched.replace(old, new)
    run_ab(src, patched, rounds, events)
