#!/usr/bin/env python
"""CI guard: the event kernel must stay >= 1.5x the frozen seed kernel.

Runs the reduced kernel microbenchmark (current and seed repeats
interleaved in one process, best-of-N per side) and fails if any
workload's speedup lands under the floor.  ``BENCH_kernel.json`` — the
full-size numbers committed with the kernel PR — is read for reference
so the report shows drift, but the pass/fail signal is always measured
fresh against the frozen in-tree seed replica, never trusted from disk.

Anti-flake policy: the floor stays exact, the *measurement* retries.  A
workload that misses the floor is re-measured up to two more times with
a higher repeat count (best-of-N is a max statistic, so more repeats
push a noisy reading toward the true plateau).  ``timeout-heavy`` runs
closest to the bar — its honest plateau is ~1.5x because timer
construction dominates and is identical on both kernels — so a single
noisy sample straddling 1.5 must not fail the build, while a genuine
regression fails all three attempts.
"""

import argparse
import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.bench.kernel import WORKLOADS, run_kernel_bench  # noqa: E402

# Repeats per attempt: escalate when a workload misses the floor.
ATTEMPT_REPEATS = (3, 5, 7)


def load_reference(path):
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, ValueError):
        return {}
    return {
        row["workload"]: row.get("speedup_vs_seed")
        for row in payload.get("rows", [])
    }


def check_workload(workload, events, floor, reference):
    """Measure one workload, retrying with more repeats before failing."""
    speedup = 0.0
    for attempt, repeat in enumerate(ATTEMPT_REPEATS, start=1):
        (row,) = run_kernel_bench(events=events, repeat=repeat,
                                  workloads=(workload,))
        speedup = row["speedup_vs_seed"]
        recorded = reference.get(workload)
        drift = (f", recorded {recorded:.2f}x"
                 if isinstance(recorded, (int, float)) else "")
        if speedup >= floor:
            print(f"PASS {workload:<20s} {speedup:5.2f}x"
                  f" (floor {floor:.1f}x{drift}, attempt {attempt})")
            return True
        print(f"retry {workload:<20s} {speedup:5.2f}x < {floor:.1f}x"
              f" on attempt {attempt} (repeat={repeat}{drift})")
    print(f"FAIL {workload:<20s} {speedup:5.2f}x < {floor:.1f}x"
          f" after {len(ATTEMPT_REPEATS)} attempts")
    return False


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--events", type=int, default=100_000,
                        help="events per workload run (default 100000)")
    parser.add_argument("--floor", type=float, default=1.5,
                        help="minimum speedup vs the seed (default 1.5)")
    parser.add_argument("--reference", default=str(ROOT / "BENCH_kernel.json"),
                        help="committed bench results, reported for drift")
    args = parser.parse_args(argv)

    reference = load_reference(args.reference)
    failures = [
        workload for workload in WORKLOADS
        if not check_workload(workload, args.events, args.floor, reference)
    ]
    if failures:
        print(f"kernel perf floor violated: {', '.join(failures)}")
        return 1
    print(f"all {len(WORKLOADS)} workloads >= {args.floor:.1f}x the seed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
