#!/usr/bin/env sh
# Run the DES kernel microbenchmark and record the result at the repo root.
#
# Usage: scripts/bench_kernel.sh [extra args for `repro.bench kernel`]
#
# Writes BENCH_kernel.json (events/sec per workload for the current kernel
# and the frozen seed-kernel replica, plus the speedup ratio) so the perf
# trajectory is tracked across PRs.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo_root"

PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python -m repro.bench kernel --json BENCH_kernel.json "$@"
echo "wrote $repo_root/BENCH_kernel.json"
