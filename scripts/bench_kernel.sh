#!/usr/bin/env sh
# Run the DES kernel microbenchmark and record the result at the repo root.
#
# Usage: scripts/bench_kernel.sh [extra args for `repro.bench kernel`]
#
# Writes BENCH_kernel.json (events/sec per workload for the current kernel
# and the frozen seed-kernel replica, plus the speedup ratio) so the perf
# trajectory is tracked across PRs.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo_root"

status=0
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python -m repro.bench kernel --json BENCH_kernel.json "$@" || status=$?
if [ "$status" -ne 0 ]; then
    echo "error: kernel benchmark failed with exit code $status" >&2
    exit "$status"
fi
echo "wrote $repo_root/BENCH_kernel.json"
