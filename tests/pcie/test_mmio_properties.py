"""Property tests for the MMIO contribution plumbing.

The invariant that keeps the whole fast path honest: every contribution
a store supplies is delivered to the device exactly once, in store
order, and never before the wire carried its last byte.
"""

from hypothesis import given, settings, strategies as st

from repro.pcie.link import PcieLink
from repro.pcie.mmio import CachePolicy, MmioRegion
from repro.sim import Engine


def run_store_sequence(sizes, policy, fence_each=False):
    """Issue stores of ``sizes`` with contributions; return delivery log."""
    engine = Engine()
    link = PcieLink(engine, lanes=4, gen=2)
    region = MmioRegion(engine, link, size=1 << 20, policy=policy)
    delivered = []

    def on_write(tlp):
        for contribution in tlp.metadata.get("contributions", []):
            delivered.append(contribution)

    region.on_write(on_write)

    def writer():
        offset = 0
        for index, size in enumerate(sizes):
            yield region.store(
                offset, size,
                tag={"contributions": [(offset, size, f"c{index}")]},
            )
            if fence_each:
                yield region.fence()
            offset += size
        yield region.fence()

    done = engine.process(writer())
    engine.run()
    assert done.triggered
    return delivered


@given(
    sizes=st.lists(st.integers(1, 200), min_size=1, max_size=40),
    policy=st.sampled_from([CachePolicy.WRITE_COMBINING,
                            CachePolicy.UNCACHED]),
    fence_each=st.booleans(),
)
@settings(max_examples=40, deadline=None)
def test_every_contribution_delivered_exactly_once_in_order(sizes, policy,
                                                            fence_each):
    delivered = run_store_sequence(sizes, policy, fence_each)
    assert [payload for _o, _n, payload in delivered] == [
        f"c{i}" for i in range(len(sizes))
    ]
    # Byte conservation: delivered sizes match the stores.
    assert [nbytes for _o, nbytes, _p in delivered] == sizes
    # Offsets are the contiguous prefix sums.
    cursor = 0
    for offset, nbytes, _payload in delivered:
        assert offset == cursor
        cursor += nbytes


@given(sizes=st.lists(st.integers(1, 128), min_size=1, max_size=30))
@settings(max_examples=30, deadline=None)
def test_wc_wire_bytes_never_below_payload(sizes):
    """The link carries at least the payload bytes (plus TLP overhead)."""
    engine = Engine()
    link = PcieLink(engine, lanes=4, gen=2)
    region = MmioRegion(engine, link, size=1 << 20,
                        policy=CachePolicy.WRITE_COMBINING)
    total = sum(sizes)

    def writer():
        offset = 0
        for size in sizes:
            yield region.store(offset, size)
            offset += size
        yield region.fence()

    engine.process(writer())
    engine.run()
    assert link.downstream.bytes_transferred >= total
    # And overhead is bounded: at most one TLP per store plus wraps.
    max_tlps = 2 * len(sizes) + total // 64 + 1
    assert region.tlps_emitted <= max_tlps


@given(
    sizes=st.lists(st.integers(1, 64), min_size=2, max_size=20),
    fence_positions=st.sets(st.integers(0, 18), max_size=5),
)
@settings(max_examples=30, deadline=None)
def test_interleaved_fences_preserve_delivery_order(sizes, fence_positions):
    engine = Engine()
    link = PcieLink(engine)
    region = MmioRegion(engine, link, size=1 << 20,
                        policy=CachePolicy.WRITE_COMBINING)
    delivered = []
    region.on_write(
        lambda tlp: delivered.extend(
            payload for _o, _n, payload in
            tlp.metadata.get("contributions", [])
        )
    )

    def writer():
        offset = 0
        for index, size in enumerate(sizes):
            yield region.store(
                offset, size,
                tag={"contributions": [(offset, size, index)]},
            )
            if index in fence_positions:
                yield region.fence()
            offset += size
        yield region.fence()

    engine.process(writer())
    engine.run()
    assert delivered == list(range(len(sizes)))
