"""Unit tests for TLP packet modeling."""

import pytest

from repro.pcie.tlp import (
    DEFAULT_MAX_PAYLOAD,
    TLP_OVERHEAD_BYTES,
    Tlp,
    TlpType,
    split_into_tlps,
    wire_bytes_for_write,
)


def test_wire_size_includes_overhead():
    tlp = Tlp(TlpType.MEMORY_WRITE, address=0, payload=64)
    assert tlp.wire_size == 64 + TLP_OVERHEAD_BYTES


def test_read_request_carries_no_payload():
    with pytest.raises(ValueError):
        Tlp(TlpType.MEMORY_READ, address=0, payload=8)


def test_negative_payload_rejected():
    with pytest.raises(ValueError):
        Tlp(TlpType.MEMORY_WRITE, address=0, payload=-1)


def test_split_covers_range_contiguously():
    tlps = split_into_tlps(address=1000, size=600)
    assert [t.payload for t in tlps] == [256, 256, 88]
    assert [t.address for t in tlps] == [1000, 1256, 1512]


def test_split_zero_size_is_empty():
    assert split_into_tlps(0, 0) == []


def test_split_respects_custom_max_payload():
    tlps = split_into_tlps(0, 100, max_payload=64)
    assert [t.payload for t in tlps] == [64, 36]


def test_wire_bytes_small_write_dominated_by_overhead():
    # A 4-byte UC-style write pays the full header.
    assert wire_bytes_for_write(4) == 4 + TLP_OVERHEAD_BYTES


def test_wire_bytes_large_write_amortizes_overhead():
    size = 10 * DEFAULT_MAX_PAYLOAD
    assert wire_bytes_for_write(size) == size + 10 * TLP_OVERHEAD_BYTES


def test_wire_bytes_efficiency_improves_with_size():
    def efficiency(size):
        return size / wire_bytes_for_write(size)

    assert efficiency(1) < efficiency(16) < efficiency(64) < efficiency(256)


def test_mirrored_copy_redirects_address_but_keeps_tag():
    original = Tlp(TlpType.MEMORY_WRITE, address=10, payload=32, tag="t1")
    mirror = original.mirrored(new_address=900)
    assert mirror.address == 900
    assert mirror.payload == 32
    assert mirror.tag == "t1"
    assert original.address == 10
