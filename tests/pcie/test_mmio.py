"""Unit tests for MMIO regions and write-combining behavior."""

import pytest

from repro.pcie.link import PcieLink
from repro.pcie.mmio import (
    CachePolicy,
    MAX_UC_STORE_BYTES,
    MmioRegion,
    WC_BUFFER_BYTES,
    WriteCombiningBuffer,
)
from repro.sim import Engine


def make_region(policy, size=4096):
    engine = Engine()
    link = PcieLink(engine, lanes=4, gen=2)
    region = MmioRegion(engine, link, size=size, policy=policy)
    return engine, link, region


class TestWriteCombiningBuffer:
    def test_sequential_stores_coalesce_into_one_tlp(self):
        buffer = WriteCombiningBuffer()
        emitted = []
        for offset in range(0, WC_BUFFER_BYTES, 8):
            emitted.extend(buffer.add(offset, 8))
        assert len(emitted) == 1
        assert emitted[0].payload == WC_BUFFER_BYTES
        assert emitted[0].address == 0

    def test_non_contiguous_store_flushes_previous_run(self):
        buffer = WriteCombiningBuffer()
        assert buffer.add(0, 8) == []
        emitted = buffer.add(100, 8)
        assert len(emitted) == 1
        assert emitted[0].payload == 8
        assert emitted[0].address == 0

    def test_flush_on_empty_buffer_is_noop(self):
        assert WriteCombiningBuffer().flush() == []

    def test_large_store_emits_full_buffers(self):
        buffer = WriteCombiningBuffer()
        emitted = buffer.add(0, 3 * WC_BUFFER_BYTES)
        assert [t.payload for t in emitted] == [WC_BUFFER_BYTES] * 3

    def test_partial_tail_stays_buffered(self):
        buffer = WriteCombiningBuffer()
        emitted = buffer.add(0, WC_BUFFER_BYTES + 10)
        assert [t.payload for t in emitted] == [WC_BUFFER_BYTES]
        assert buffer.filled == 10


class TestMmioRegion:
    def test_uc_store_splits_into_register_sized_tlps(self):
        engine, link, region = make_region(CachePolicy.UNCACHED)
        seen = []
        region.on_write(lambda tlp: seen.append(tlp.payload))

        def proc():
            yield region.store(0, 64)

        engine.process(proc())
        engine.run()
        assert seen == [MAX_UC_STORE_BYTES] * (64 // MAX_UC_STORE_BYTES)

    def test_wc_store_of_buffer_size_is_one_tlp(self):
        engine, link, region = make_region(CachePolicy.WRITE_COMBINING)
        seen = []
        region.on_write(lambda tlp: seen.append(tlp.payload))

        def proc():
            yield region.store(0, WC_BUFFER_BYTES)

        engine.process(proc())
        engine.run()
        assert seen == [WC_BUFFER_BYTES]

    def test_wc_partial_store_needs_fence_to_emit(self):
        engine, link, region = make_region(CachePolicy.WRITE_COMBINING)
        seen = []
        region.on_write(lambda tlp: seen.append(tlp.payload))

        def proc():
            yield region.store(0, 16)
            assert seen == []
            yield region.fence()

        engine.process(proc())
        engine.run()
        assert seen == [16]

    def test_store_outside_region_rejected(self):
        engine, link, region = make_region(CachePolicy.UNCACHED, size=128)
        with pytest.raises(ValueError):
            region.store(120, 16)

    def test_wc_is_fewer_tlps_than_uc_for_same_bytes(self):
        total = 1024
        engine_uc, _, uc = make_region(CachePolicy.UNCACHED)
        engine_wc, _, wc = make_region(CachePolicy.WRITE_COMBINING)

        def write_all(engine, region):
            def proc():
                for offset in range(0, total, 8):
                    yield region.store(offset, 8)
                yield region.fence()

            engine.process(proc())
            engine.run()

        write_all(engine_uc, uc)
        write_all(engine_wc, wc)
        assert wc.tlps_emitted * 8 == uc.tlps_emitted  # 64B vs 8B per TLP

    def test_wc_throughput_beats_uc(self):
        """The Fig. 10 mechanism: same bytes, fewer packets, faster."""
        total = 64 * 1024

        def run(policy):
            engine, _, region = make_region(policy, size=total)

            def proc():
                for offset in range(0, total, 8):
                    yield region.store(offset, 8)
                yield region.fence()

            engine.process(proc())
            return engine.run()

        assert run(CachePolicy.WRITE_COMBINING) < run(CachePolicy.UNCACHED)

    def test_load_round_trip_takes_two_link_crossings(self):
        engine, link, region = make_region(CachePolicy.UNCACHED)
        finished = []

        def proc():
            yield region.load(8)
            finished.append(engine.now)

        engine.process(proc())
        engine.run()
        # Two propagation delays (down + up) at minimum.
        assert finished[0] >= 2 * link.downstream.latency
