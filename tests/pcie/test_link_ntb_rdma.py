"""Unit tests for PCIe links, NTB bridging, DMA, and the RDMA baseline NIC."""

import pytest

from repro.pcie.dma import DmaEngine
from repro.pcie.link import PcieLink, link_bandwidth
from repro.pcie.ntb import NtbBridge, NtbPort, daisy_chain
from repro.pcie.rdma import RdmaNic
from repro.pcie.tlp import Tlp, TlpType
from repro.sim import Engine


class TestLink:
    def test_bandwidth_table(self):
        assert link_bandwidth(4, 2) == pytest.approx(2.0)  # the paper's CMB link
        assert link_bandwidth(8, 2) == pytest.approx(4.0)
        assert link_bandwidth(4, 3) == pytest.approx(3.94, abs=0.01)

    def test_unsupported_gen_rejected(self):
        with pytest.raises(ValueError):
            link_bandwidth(4, 7)

    def test_invalid_lanes_rejected(self):
        with pytest.raises(ValueError):
            link_bandwidth(3, 2)

    def test_send_delivers_after_wire_time_plus_propagation(self):
        engine = Engine()
        link = PcieLink(engine, lanes=4, gen=2, propagation_ns=100.0)
        tlp = Tlp(TlpType.MEMORY_WRITE, address=0, payload=176)  # wire = 200
        done = []

        def proc():
            yield link.send(tlp)
            done.append(engine.now)

        engine.process(proc())
        engine.run()
        assert done == [pytest.approx(200 / 2.0 + 100.0)]

    def test_tap_sees_delivered_tlps(self):
        engine = Engine()
        link = PcieLink(engine)
        seen = []
        link.tap_downstream(lambda tlp: seen.append(tlp.payload))

        def proc():
            yield link.send(Tlp(TlpType.MEMORY_WRITE, address=0, payload=64))

        engine.process(proc())
        engine.run()
        assert seen == [64]

    def test_directions_do_not_contend(self):
        engine = Engine()
        link = PcieLink(engine, lanes=4, gen=2, propagation_ns=0.0)
        times = {}

        def down():
            yield link.send(Tlp(TlpType.MEMORY_WRITE, 0, 1976))  # 1 us wire
            times["down"] = engine.now

        def up():
            yield link.receive(Tlp(TlpType.MEMORY_WRITE, 0, 1976))
            times["up"] = engine.now

        engine.process(down())
        engine.process(up())
        engine.run()
        assert times["down"] == pytest.approx(times["up"])

    def test_non_tlp_rejected(self):
        engine = Engine()
        link = PcieLink(engine)
        with pytest.raises(TypeError):
            link.send("not a tlp")


class TestDma:
    def test_pull_moves_all_bytes(self):
        engine = Engine()
        link = PcieLink(engine)
        dma = DmaEngine(engine, link)
        moved = []

        def proc():
            size = yield dma.pull(4096)
            moved.append(size)

        engine.process(proc())
        engine.run()
        assert moved == [4096]
        assert dma.bytes_pulled == 4096

    def test_pull_zero_completes(self):
        engine = Engine()
        dma = DmaEngine(engine, PcieLink(engine))
        done = []

        def proc():
            yield dma.pull(0)
            done.append(True)

        engine.process(proc())
        engine.run()
        assert done == [True]

    def test_push_moves_all_bytes(self):
        engine = Engine()
        dma = DmaEngine(engine, PcieLink(engine))
        moved = []

        def proc():
            size = yield dma.push(8192)
            moved.append(size)

        engine.process(proc())
        engine.run()
        assert moved == [8192]

    def test_negative_sizes_rejected(self):
        engine = Engine()
        dma = DmaEngine(engine, PcieLink(engine))
        with pytest.raises(ValueError):
            dma.pull(-1)
        with pytest.raises(ValueError):
            dma.push(-1)


class TestNtb:
    def test_forward_delivers_to_peer_sink(self):
        engine = Engine()
        a = NtbPort(engine, "a")
        b = NtbPort(engine, "b")
        NtbBridge(engine, a, b, hop_latency=500.0)
        arrived = []
        b.attach_sink(lambda tlp: arrived.append((engine.now, tlp.payload)))

        def proc():
            yield a.send(Tlp(TlpType.MEMORY_WRITE, address=0, payload=64))

        engine.process(proc())
        engine.run()
        assert len(arrived) == 1
        assert arrived[0][0] >= 500.0
        assert arrived[0][1] == 64

    def test_bridge_is_bidirectional(self):
        engine = Engine()
        a, b = NtbPort(engine, "a"), NtbPort(engine, "b")
        NtbBridge(engine, a, b)
        got = []
        a.attach_sink(lambda tlp: got.append("at-a"))
        b.attach_sink(lambda tlp: got.append("at-b"))

        def proc():
            yield a.send(Tlp(TlpType.MEMORY_WRITE, 0, 8))
            yield b.send(Tlp(TlpType.MEMORY_WRITE, 0, 8))

        engine.process(proc())
        engine.run()
        assert got == ["at-b", "at-a"]

    def test_unconnected_port_raises(self):
        engine = Engine()
        port = NtbPort(engine, "lonely")
        with pytest.raises(RuntimeError):
            port.send(Tlp(TlpType.MEMORY_WRITE, 0, 8))

    def test_daisy_chain_wires_adjacent_pairs(self):
        engine = Engine()
        ports = [NtbPort(engine, f"s{i}") for i in range(3)]
        bridges = daisy_chain(engine, ports)
        assert len(bridges) == 2
        # middle port must be reachable from both ends... it belongs to one
        # bridge per side; sending from port 0 reaches port 1 only.
        arrived = []
        ports[1].attach_sink(lambda tlp: arrived.append(tlp.payload))

        def proc():
            yield ports[0].send(Tlp(TlpType.MEMORY_WRITE, 0, 32))

        engine.process(proc())
        engine.run()
        assert arrived == [32]

    def test_chain_needs_two_ports(self):
        engine = Engine()
        with pytest.raises(ValueError):
            daisy_chain(engine, [NtbPort(engine, "only")])

    def test_counter_update_bandwidth_measurable(self):
        engine = Engine()
        a, b = NtbPort(engine, "a"), NtbPort(engine, "b")
        bridge = NtbBridge(engine, a, b)

        def proc():
            for _ in range(10):
                yield b.send(Tlp(TlpType.MEMORY_WRITE, 0, 8))

        engine.process(proc())
        engine.run()
        pipe = bridge.pipe_from(b)
        assert pipe.bytes_transferred == 10 * (8 + 24)


class TestRdma:
    def test_post_write_completes_after_latency(self):
        engine = Engine()
        nic_a = RdmaNic(engine, "a", latency=2000.0)
        nic_b = RdmaNic(engine, "b", latency=2000.0)
        qp = nic_a.connect(nic_b)
        done = []

        def proc():
            yield qp.post_write(64)
            done.append(engine.now)

        engine.process(proc())
        engine.run()
        assert done[0] >= 2000.0

    def test_receive_callback_fires_on_remote_side(self):
        engine = Engine()
        qp = RdmaNic(engine, "a").connect(RdmaNic(engine, "b"))
        landed = []
        qp.on_receive(lambda size: landed.append(size))

        def proc():
            yield qp.post_write(128)

        engine.process(proc())
        engine.run()
        assert landed == [128]

    def test_durable_write_without_persistence_needs_flush_rtt(self):
        """The paper's DDIO caveat: visible != persistent."""
        engine = Engine()

        def run(persistent):
            eng = Engine()
            qp = RdmaNic(eng, "a").connect(
                RdmaNic(eng, "b"), persistent_on_completion=persistent
            )
            done = []

            def proc():
                yield qp.durable_write(64)
                done.append(eng.now)

            eng.process(proc())
            eng.run()
            return done[0]

        assert run(persistent=False) > run(persistent=True)

    def test_negative_write_rejected(self):
        engine = Engine()
        qp = RdmaNic(engine, "a").connect(RdmaNic(engine, "b"))
        with pytest.raises(ValueError):
            qp.post_write(-5)
