"""End-to-end recovery tests: DB -> Villars -> crash -> redo -> same state."""

from repro.core.config import villars_sram
from repro.core.crash import PowerLossInjector
from repro.core.device import XssdDevice
from repro.db.engine import Database
from repro.db.recovery import extract_records, recover_from_pages
from repro.host.api import XssdLogFile
from repro.nand.geometry import Geometry
from repro.nand.timing import NandTiming
from repro.sim import Engine
from repro.ssd.device import SsdConfig


def make_stack(group_commit_bytes=2048):
    engine = Engine()
    device = XssdDevice(
        engine,
        villars_sram(
            ssd=SsdConfig(
                geometry=Geometry(channels=2, ways_per_channel=2,
                                  blocks_per_die=64, pages_per_block=16,
                                  page_bytes=4096),
                timing=NandTiming(t_program=50_000.0, t_read=5_000.0,
                                  t_erase=200_000.0, bus_bandwidth=1.0),
            ),
            cmb_capacity=64 * 1024,
            cmb_queue_bytes=8 * 1024,
        ),
    ).start()
    log = XssdLogFile(device)
    database = Database(engine, log, group_commit_bytes=group_commit_bytes,
                        group_commit_timeout_ns=20_000.0)
    database.create_table("kv")
    return engine, device, database


def read_all_destaged_pages(engine, device):
    """Collect every durable destaged page, in sequence order."""
    pages = []

    def reader():
        for sequence in range(device.destage.head_sequence,
                              device.destage.durable_tail):
            page = yield device.destage.read_page(sequence)
            pages.append(page)

    done = engine.process(reader())
    engine.run(until=engine.now + 500_000_000.0)
    assert done.triggered
    return pages


def run_transactions(engine, database, count):
    def proc():
        for i in range(count):
            txn = database.begin()
            txn.write("kv", f"key-{i % 7}", f"value-{i}")
            yield txn.commit()

    done = engine.process(proc())
    engine.run(until=500_000_000.0)
    assert done.triggered


def test_crash_and_redo_reproduces_committed_state():
    engine, device, database = make_stack()
    run_transactions(engine, database, 30)
    expected = database.checksum()
    expected_rows = dict(database.table("kv").scan())

    # Power loss: reserve energy destages everything contiguous.
    PowerLossInjector(engine, device).power_loss()
    pages = read_all_destaged_pages(engine, device)

    # Fresh server, same schema, redo from the destaged log.
    recovered_engine = Engine()
    from repro.host.baselines import NoLogFile

    recovered = Database(recovered_engine, NoLogFile(recovered_engine))
    recovered.create_table("kv")
    redone = recover_from_pages(recovered, pages)
    assert redone > 0
    assert dict(recovered.table("kv").scan()) == expected_rows
    assert recovered.checksum() == expected


def test_recovery_never_exposes_uncommitted_tail():
    """A transaction whose commit record missed durability must vanish."""
    engine, device, database = make_stack(group_commit_bytes=1 << 20)
    # Huge group-commit threshold: records sit in the WAL buffer, flushed
    # only by the timer.  Commit a first txn fully, then crash while the
    # second's records are still buffered in the log manager.
    done_first = {}

    def proc():
        txn = database.begin()
        txn.write("kv", "committed", "yes")
        yield txn.commit()
        done_first["t"] = engine.now
        # Disarm the group-commit timer so the second transaction's
        # records are guaranteed to still be buffered at crash time.
        database.log_manager.group_commit_timeout_ns = 1e15
        txn2 = database.begin()
        txn2.write("kv", "doomed", "maybe")
        txn2.commit()  # not yielded: in flight when the crash hits
        yield engine.timeout(1_000.0)

    engine.process(proc())
    engine.run(until=300_000.0)
    PowerLossInjector(engine, device).power_loss()
    pages = read_all_destaged_pages(engine, device)
    records = extract_records(pages)
    keys_with_commit = {
        record.key for record in records if record.is_data()
    }
    from repro.host.baselines import NoLogFile

    recovered_engine = Engine()
    recovered = Database(recovered_engine, NoLogFile(recovered_engine))
    recovered.create_table("kv")
    recover_from_pages(recovered, pages)
    assert recovered.table("kv").get("committed") == "yes"
    assert recovered.table("kv").get("doomed") is None


def test_extract_records_orders_by_lsn():
    engine, device, database = make_stack(group_commit_bytes=512)
    run_transactions(engine, database, 12)
    PowerLossInjector(engine, device).power_loss()
    pages = read_all_destaged_pages(engine, device)
    records = extract_records(pages)
    lsns = [record.lsn for record in records]
    assert lsns == sorted(lsns)
    assert len(set(lsns)) == len(lsns)
