"""Direct unit tests for the table storage layer."""

from hypothesis import given, strategies as st

from repro.db.storage import Table


class TestTable:
    def test_install_and_get(self):
        table = Table("t")
        table.install("k", "v", commit_lsn=5)
        assert table.get("k") == "v"
        assert table.version_of("k") == 5

    def test_missing_key(self):
        table = Table("t")
        assert table.get("ghost") is None
        assert table.version_of("ghost") == 0

    def test_none_value_deletes_but_keeps_version(self):
        table = Table("t")
        table.install("k", "v", 1)
        table.install("k", None, 2)
        assert table.get("k") is None
        # The version survives deletion so OCC reads can detect it.
        assert table.version_of("k") == 2

    def test_scan_is_a_snapshot(self):
        table = Table("t")
        table.install("a", 1, 1)
        snapshot = table.scan()
        table.install("b", 2, 2)
        assert len(snapshot) == 1
        assert len(table) == 2

    def test_commits_applied_counter(self):
        table = Table("t")
        table.install("a", 1, 1)
        table.install("a", 2, 2)
        assert table.commits_applied == 2

    def test_checksum_differs_on_content(self):
        alpha = Table("t")
        beta = Table("t")
        alpha.install("k", "v1", 1)
        beta.install("k", "v2", 1)
        assert alpha.checksum() != beta.checksum()

    def test_checksum_is_order_independent(self):
        alpha = Table("t")
        beta = Table("t")
        alpha.install("a", 1, 1)
        alpha.install("b", 2, 2)
        beta.install("b", 2, 2)
        beta.install("a", 1, 1)
        assert alpha.checksum() == beta.checksum()

    @given(
        st.lists(
            st.tuples(st.integers(0, 9), st.integers(0, 100)),
            max_size=50,
        )
    )
    def test_last_install_wins_property(self, operations):
        table = Table("t")
        expected = {}
        for lsn, (key, value) in enumerate(operations, start=1):
            table.install(key, value, lsn)
            expected[key] = value
        for key, value in expected.items():
            assert table.get(key) == value
        assert dict(table.scan()) == expected
